//! Chrome Trace Format export.
//!
//! Converts an `events.jsonl` span stream into the JSON object format
//! understood by Perfetto and `chrome://tracing`: a `traceEvents`
//! array of duration events (`ph: "B"` / `ph: "E"`), one track per
//! telemetry thread id, timestamps in microseconds. Span attributes —
//! plus the span id and parent span id — are carried in `args`, so
//! nothing from the original stream is lost.
//!
//! Per-thread event order in `events.jsonl` is already stack-correct
//! (the recorder dispatches a parent's deferred start before any child
//! event), so events are emitted in file order and B/E matching works
//! without re-sorting.

use mlam_telemetry::{Event, EventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The process id used for all tracks (the pipeline is one process).
pub const TRACE_PID: u64 = 1;

/// A Chrome Trace Format document (the "JSON Object Format").
#[allow(non_snake_case)]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChromeTrace {
    /// The duration events, in stream order.
    pub traceEvents: Vec<ChromeEvent>,
    /// Display unit hint for the viewer (`"ms"`).
    pub displayTimeUnit: String,
}

/// One duration event. `ts` is microseconds from the recorder epoch.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Span name.
    pub name: String,
    /// Event category (the span name's first dotted segment).
    pub cat: String,
    /// Phase: `"B"` (begin) or `"E"` (end).
    pub ph: String,
    /// Microseconds from the recorder epoch.
    pub ts: f64,
    /// Process id ([`TRACE_PID`] for every track).
    pub pid: u64,
    /// Track id (the telemetry thread id).
    pub tid: u64,
    /// Span attributes plus the span and parent-span ids.
    pub args: BTreeMap<String, String>,
}

/// Converts a span event stream into a Chrome trace document.
pub fn export(events: &[Event]) -> ChromeTrace {
    let trace_events = events
        .iter()
        .map(|event| {
            let mut args: BTreeMap<String, String> = event.attrs.iter().cloned().collect();
            args.insert("span_id".into(), event.id.to_string());
            if let Some(parent) = event.parent_id {
                args.insert("parent_span_id".into(), parent.to_string());
            }
            ChromeEvent {
                name: event.name.clone(),
                cat: "span".into(),
                ph: match event.kind {
                    EventKind::SpanStart => "B",
                    EventKind::SpanEnd => "E",
                }
                .into(),
                ts: event.ts_ns as f64 / 1_000.0,
                pid: TRACE_PID,
                tid: event.tid,
                args,
            }
        })
        .collect();
    ChromeTrace {
        traceEvents: trace_events,
        displayTimeUnit: "ms".into(),
    }
}

/// Serializes the trace as pretty JSON (what `mlam-trace export`
/// writes as `trace.json`).
pub fn to_json(trace: &ChromeTrace) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(trace).map(|s| s + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: EventKind, name: &str, id: u64, parent: Option<u64>, ts_ns: u64) -> Event {
        Event {
            kind,
            name: name.into(),
            id,
            parent_id: parent,
            tid: 1,
            depth: 0,
            ts_ns,
            elapsed_ns: matches!(kind, EventKind::SpanEnd).then_some(1),
            attrs: vec![("k".into(), "v".into())],
        }
    }

    #[test]
    fn export_maps_kinds_and_timestamps() {
        let events = vec![
            event(EventKind::SpanStart, "outer", 1, None, 1_000),
            event(EventKind::SpanStart, "inner", 2, Some(1), 2_000),
            event(EventKind::SpanEnd, "inner", 2, Some(1), 3_000),
            event(EventKind::SpanEnd, "outer", 1, None, 4_000),
        ];
        let trace = export(&events);
        assert_eq!(trace.traceEvents.len(), 4);
        let first = &trace.traceEvents[0];
        assert_eq!(first.ph, "B");
        assert_eq!(first.ts, 1.0, "ns convert to µs");
        assert_eq!(first.pid, TRACE_PID);
        assert_eq!(first.args["span_id"], "1");
        assert_eq!(first.args["k"], "v");
        assert!(!first.args.contains_key("parent_span_id"));
        let inner = &trace.traceEvents[1];
        assert_eq!(inner.args["parent_span_id"], "1");
        assert_eq!(trace.traceEvents[3].ph, "E");
    }

    #[test]
    fn trace_round_trips_through_serde() {
        let events = vec![
            event(EventKind::SpanStart, "a", 1, None, 10),
            event(EventKind::SpanEnd, "a", 1, None, 20),
        ];
        let trace = export(&events);
        let json = to_json(&trace).unwrap();
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.displayTimeUnit, "ms");
    }
}
