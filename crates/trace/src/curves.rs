//! Learning-curve analysis: summaries, CSV export and cross-run
//! curve diffing for `curves.jsonl` artifacts.
//!
//! The artifact is deterministic (same seed ⇒ byte-identical), so the
//! compare here distinguishes two failure classes the way
//! [`crate::compare`] does for counters and wall-clock:
//!
//! - **structural / accuracy drift** — different series sets, point
//!   schedules or final accuracies mean the runs differ behaviorally;
//!   exit 2, never suppressed.
//! - **query-efficiency regression** — the same final accuracy now
//!   costs more than `query_threshold` extra queries; exit 1 unless
//!   `--warn-only`, mirroring the wall-clock policy (spending more of
//!   the adversary's budget is a perf problem, not a wrong answer).

use mlam_telemetry::curves::{read_curves_jsonl, CurvePoint, CURVES_FILE};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A loaded curves artifact: series name → checkpoints in emission
/// order.
pub type CurveSeries = BTreeMap<String, Vec<CurvePoint>>;

/// Loads `curves.jsonl` from a run directory (or the file itself).
pub fn load(input: &Path) -> std::io::Result<CurveSeries> {
    let path = if input.is_dir() {
        input.join(CURVES_FILE)
    } else {
        PathBuf::from(input)
    };
    read_curves_jsonl(&path)
}

/// Renders the per-series summary table: checkpoint count, final
/// queries/raw reads, and the accuracy trajectory endpoints.
pub fn summarize(series: &CurveSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>12} {:>12} {:>10} {:>10}",
        "series", "points", "queries", "raw_reads", "first_acc", "final_acc"
    );
    for (name, points) in series {
        let Some(last) = points.last() else { continue };
        let first = &points[0];
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>12} {:>12} {:>10.4} {:>10.4}",
            name,
            points.len(),
            last.queries,
            last.raw_reads,
            first.train_acc,
            last.train_acc
        );
    }
    out
}

/// Renders the artifact as CSV for plotting (one row per checkpoint;
/// `holdout_acc` empty when the loop measured none).
pub fn to_csv(series: &CurveSeries) -> String {
    let mut out = String::from("series,label,iteration,queries,raw_reads,train_acc,holdout_acc\n");
    for (name, points) in series {
        for p in points {
            let holdout = p.holdout_acc.map(|a| a.to_string()).unwrap_or_default();
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                name, p.label, p.iteration, p.queries, p.raw_reads, p.train_acc, holdout
            );
        }
    }
    out
}

/// Options for [`compare`].
pub struct CurveCompareOptions {
    /// Relative extra final queries tolerated before the efficiency
    /// verdict fires (0.10 = +10%).
    pub query_threshold: f64,
    /// Absolute final-accuracy difference tolerated before the drift
    /// verdict fires. Same-seed runs are bit-identical, so the default
    /// is an exact match.
    pub acc_epsilon: f64,
}

impl Default for CurveCompareOptions {
    fn default() -> Self {
        CurveCompareOptions {
            query_threshold: 0.10,
            acc_epsilon: 0.0,
        }
    }
}

/// One per-series row of a curve diff.
pub struct CurveDiffRow {
    /// Series name.
    pub name: String,
    /// Final queries in the baseline / current run.
    pub base_queries: u64,
    /// Final queries in the current run.
    pub cur_queries: u64,
    /// Final training accuracy in the baseline run.
    pub base_acc: f64,
    /// Final training accuracy in the current run.
    pub cur_acc: f64,
}

/// The outcome of a curve diff: structural problems, accuracy drift,
/// query regressions, and the per-series rows behind them.
#[derive(Default)]
pub struct CurveCompareReport {
    /// Series present in only one run, or with mismatched schedules.
    pub structural: Vec<String>,
    /// Series whose final accuracy moved beyond the epsilon.
    pub accuracy_drift: Vec<String>,
    /// Series whose final accuracy held but now costs more queries.
    pub query_regressions: Vec<String>,
    /// Per-series endpoint comparison for every common series.
    pub rows: Vec<CurveDiffRow>,
}

impl CurveCompareReport {
    /// The verdict string the exit code derives from.
    pub fn verdict(&self) -> &'static str {
        if !self.structural.is_empty() || !self.accuracy_drift.is_empty() {
            "curve-drift"
        } else if !self.query_regressions.is_empty() {
            "query-regression"
        } else {
            "ok"
        }
    }

    /// Maps the verdict onto the `mlam-trace` exit-code contract:
    /// drift 2 (never suppressed), query regression 1 (0 under
    /// `warn_only`), clean 0.
    pub fn exit_code(&self, warn_only: bool) -> i32 {
        match self.verdict() {
            "curve-drift" => 2,
            "query-regression" if !warn_only => 1,
            _ => 0,
        }
    }

    /// Renders the human-readable diff.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>12} {:>12} {:>9} {:>10} {:>10}",
            "series", "base_q", "cur_q", "Δq%", "base_acc", "cur_acc"
        );
        for row in &self.rows {
            let delta = if row.base_queries == 0 {
                0.0
            } else {
                (row.cur_queries as f64 - row.base_queries as f64) / row.base_queries as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "{:<24} {:>12} {:>12} {:>+8.1}% {:>10.4} {:>10.4}",
                row.name, row.base_queries, row.cur_queries, delta, row.base_acc, row.cur_acc
            );
        }
        for note in &self.structural {
            let _ = writeln!(out, "structural: {note}");
        }
        for note in &self.accuracy_drift {
            let _ = writeln!(out, "accuracy drift: {note}");
        }
        for note in &self.query_regressions {
            let _ = writeln!(out, "query regression: {note}");
        }
        let _ = writeln!(out, "verdict: {}", self.verdict());
        out
    }
}

/// Diffs two curve artifacts series-by-series (see the module docs for
/// the verdict semantics).
pub fn compare(
    baseline: &CurveSeries,
    current: &CurveSeries,
    options: &CurveCompareOptions,
) -> CurveCompareReport {
    let mut report = CurveCompareReport::default();
    for name in baseline.keys() {
        if !current.contains_key(name) {
            report
                .structural
                .push(format!("series '{name}' missing from current run"));
        }
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            report
                .structural
                .push(format!("series '{name}' missing from baseline run"));
        }
    }
    for (name, base_points) in baseline {
        let Some(cur_points) = current.get(name) else {
            continue;
        };
        let (Some(base_last), Some(cur_last)) = (base_points.last(), cur_points.last()) else {
            report
                .structural
                .push(format!("series '{name}' has no checkpoints"));
            continue;
        };
        // The checkpoint schedule (labels + iterations) is part of the
        // deterministic contract: a changed schedule means the loops
        // themselves changed.
        let base_sched: Vec<(&str, u64)> = base_points
            .iter()
            .map(|p| (p.label.as_str(), p.iteration))
            .collect();
        let cur_sched: Vec<(&str, u64)> = cur_points
            .iter()
            .map(|p| (p.label.as_str(), p.iteration))
            .collect();
        if base_sched != cur_sched {
            report.structural.push(format!(
                "series '{name}': checkpoint schedule changed ({} vs {} points)",
                base_points.len(),
                cur_points.len()
            ));
        }
        report.rows.push(CurveDiffRow {
            name: name.clone(),
            base_queries: base_last.queries,
            cur_queries: cur_last.queries,
            base_acc: base_last.train_acc,
            cur_acc: cur_last.train_acc,
        });
        if (base_last.train_acc - cur_last.train_acc).abs() > options.acc_epsilon {
            report.accuracy_drift.push(format!(
                "series '{name}': final accuracy {} -> {}",
                base_last.train_acc, cur_last.train_acc
            ));
        } else if (cur_last.queries as f64)
            > base_last.queries as f64 * (1.0 + options.query_threshold)
        {
            report.query_regressions.push(format!(
                "series '{name}': same accuracy now costs {} queries (baseline {}, +{:.1}% > +{:.0}% threshold)",
                cur_last.queries,
                base_last.queries,
                (cur_last.queries as f64 / base_last.queries as f64 - 1.0) * 100.0,
                options.query_threshold * 100.0
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(label: &str, iteration: u64, queries: u64, acc: f64) -> CurvePoint {
        CurvePoint {
            label: label.to_string(),
            iteration,
            queries,
            raw_reads: queries,
            train_acc: acc,
            holdout_acc: None,
            counters: BTreeMap::new(),
        }
    }

    fn series_of(points: Vec<CurvePoint>) -> CurveSeries {
        [("table1".to_string(), points)].into_iter().collect()
    }

    #[test]
    fn identical_curves_are_clean() {
        let base = series_of(vec![point("p", 1, 10, 0.5), point("p", 2, 20, 0.9)]);
        let report = compare(&base, &base, &CurveCompareOptions::default());
        assert_eq!(report.verdict(), "ok");
        assert_eq!(report.exit_code(false), 0);
        assert_eq!(report.rows.len(), 1);
    }

    #[test]
    fn missing_series_and_changed_schedules_are_structural() {
        let base = series_of(vec![point("p", 1, 10, 0.9)]);
        let report = compare(&base, &CurveSeries::new(), &CurveCompareOptions::default());
        assert_eq!(report.verdict(), "curve-drift");
        assert_eq!(report.exit_code(true), 2, "drift is never suppressed");

        let resched = series_of(vec![point("p", 1, 10, 0.9), point("p", 2, 20, 0.9)]);
        let report = compare(&base, &resched, &CurveCompareOptions::default());
        assert_eq!(report.verdict(), "curve-drift");
    }

    #[test]
    fn accuracy_drift_beats_query_regression() {
        let base = series_of(vec![point("p", 1, 10, 0.9)]);
        let drifted = series_of(vec![point("p", 1, 100, 0.8)]);
        let report = compare(&base, &drifted, &CurveCompareOptions::default());
        assert_eq!(report.verdict(), "curve-drift");
        assert_eq!(report.exit_code(true), 2);
    }

    #[test]
    fn query_regression_fires_past_threshold_and_warns_only_on_request() {
        let base = series_of(vec![point("p", 1, 100, 0.9)]);
        let ok = series_of(vec![point("p", 1, 105, 0.9)]);
        assert_eq!(
            compare(&base, &ok, &CurveCompareOptions::default()).verdict(),
            "ok"
        );
        let slow = series_of(vec![point("p", 1, 150, 0.9)]);
        let report = compare(&base, &slow, &CurveCompareOptions::default());
        assert_eq!(report.verdict(), "query-regression");
        assert_eq!(report.exit_code(false), 1);
        assert_eq!(report.exit_code(true), 0);
    }

    #[test]
    fn csv_and_summary_cover_every_point() {
        let mut series = series_of(vec![point("p", 1, 10, 0.5), point("p", 2, 20, 0.875)]);
        series.insert(
            "locking".to_string(),
            vec![CurvePoint {
                holdout_acc: Some(0.75),
                ..point("sat_attack", 1, 3, 1.0)
            }],
        );
        let csv = to_csv(&series);
        assert_eq!(csv.lines().count(), 4, "header + 3 rows");
        assert!(csv.starts_with("series,label,iteration,"));
        assert!(csv.contains("locking,sat_attack,1,3,3,1,0.75"));
        assert!(csv.contains("table1,p,2,20,20,0.875,\n"));
        let summary = summarize(&series);
        assert!(summary.contains("table1"));
        assert!(summary.contains("locking"));
    }
}
