//! Post-hoc analysis of `mlam-telemetry` runs — the consumer side of
//! the observability pipeline.
//!
//! A reproduction run (`repro_all --quick --json <dir>`) leaves behind
//! a run directory with `events.jsonl` (span start/end events carrying
//! span ids and parent ids), `metrics.jsonl` (counters and log₂
//! histograms) and `manifest.json` (per-experiment wall-clock and
//! counter deltas). This crate, and the `mlam-trace` binary built on
//! it, turn those streams into:
//!
//! - [`chrome`] — Chrome Trace Format (`trace.json`) loadable in
//!   Perfetto / `chrome://tracing`;
//! - [`profile`] — an inclusive/self-time span tree with call counts
//!   and p50/p95 latencies, sorted by self time;
//! - [`compare`] — a cross-run diff that flags wall-clock regressions
//!   beyond a threshold and *enforces* bit-identical correctness
//!   counters (oracle queries, SAT conflicts) for same-seed runs;
//! - [`bench_json`] — the `BENCH_*.json` perf-trajectory records CI
//!   publishes (`{name, wall_ns, queries, sat_conflicts}` per
//!   experiment);
//! - [`bench_history`] — one index-ordered table over every checked-in
//!   `BENCH_<n>.json`, whatever its schema.
//! - [`curves`] — learning-curve (`curves.jsonl`) summaries, CSV
//!   export for accuracy-vs-queries plots, and a cross-run curve diff
//!   with a query-efficiency verdict.

#![warn(missing_docs)]

pub mod bench_history;
pub mod bench_json;
pub mod chrome;
pub mod compare;
pub mod curves;
pub mod profile;
pub mod run;

pub use run::RunData;
