//! Cross-run regression diffing.
//!
//! Two runs from the same seed and parameter set must agree *exactly*
//! on the correctness counters (oracle queries, SAT conflicts, …) —
//! any drift means the attack pipeline's behavior changed, not just
//! its speed, and is always a hard failure. Wall-clock is compared
//! per experiment against a relative threshold (default +20%) with an
//! absolute noise floor, so back-to-back runs of the `--quick` set
//! don't flap on scheduler jitter.

use mlam_telemetry::{HistogramSnapshot, RunManifest};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Tunables for [`compare`].
#[derive(Clone, Debug, PartialEq)]
pub struct CompareOptions {
    /// Relative wall-clock regression threshold (0.2 = +20%).
    pub threshold: f64,
    /// Absolute wall-clock noise floor in seconds: smaller deltas are
    /// never flagged, whatever the ratio.
    pub min_wall_s: f64,
    /// Counter-name prefixes excluded from the drift check. For
    /// deliberate A/B comparisons across implementation paths (e.g. the
    /// bit-sliced vs scalar CRP evaluator), the path-attribution
    /// counters (`puf.batch.`) differ by construction while every
    /// behavior counter must still match bit for bit.
    pub ignore_counters: Vec<String>,
}

impl Default for CompareOptions {
    fn default() -> CompareOptions {
        CompareOptions {
            threshold: 0.20,
            min_wall_s: 0.1,
            ignore_counters: Vec::new(),
        }
    }
}

impl CompareOptions {
    fn is_ignored(&self, counter: &str) -> bool {
        self.ignore_counters.iter().any(|p| counter.starts_with(p))
    }
}

/// A counter whose value differs between the runs (0 = absent).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterDrift {
    /// Experiment the counter belongs to.
    pub experiment: String,
    /// The drifting counter's name.
    pub counter: String,
    /// Value in the baseline run.
    pub baseline: u64,
    /// Value in the current run.
    pub current: u64,
}

/// Wall-clock for one experiment in both runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WallDelta {
    /// Experiment name (`"(total)"` for the whole-run row).
    pub name: String,
    /// Wall-clock seconds in the baseline run.
    pub baseline_s: f64,
    /// Wall-clock seconds in the current run.
    pub current_s: f64,
    /// Beyond threshold *and* above the noise floor.
    pub regressed: bool,
    /// At least one side is a partial record from a failed experiment
    /// (`degraded: true` in its manifest). Rendered as a marker; a
    /// degraded/complete *mismatch* is additionally structure drift.
    pub degraded: bool,
}

impl WallDelta {
    /// Relative change, +0.2 = 20% slower.
    pub fn ratio(&self) -> f64 {
        if self.baseline_s <= 0.0 {
            0.0
        } else {
            self.current_s / self.baseline_s - 1.0
        }
    }
}

/// The full diff of two runs.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Per-experiment wall-clock, in baseline order, then a total row.
    pub wall: Vec<WallDelta>,
    /// Correctness-counter drift (always a hard failure).
    pub drift: Vec<CounterDrift>,
    /// Structural mismatches (seed, parameter set, experiment list) —
    /// these also count as drift: the runs are not comparable.
    pub structure: Vec<String>,
    /// Informational per-span latency movers (never affect the exit
    /// code; timing lives in `wall`).
    pub span_notes: Vec<String>,
}

impl CompareReport {
    /// True when the runs disagree on anything other than timing.
    pub fn has_counter_drift(&self) -> bool {
        !self.drift.is_empty() || !self.structure.is_empty()
    }

    /// True when any experiment (or the total) regressed beyond the
    /// threshold.
    pub fn has_wall_regression(&self) -> bool {
        self.wall.iter().any(|w| w.regressed)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>10} {:>9}",
            "experiment", "baseline", "current", "delta"
        );
        for w in &self.wall {
            let _ = writeln!(
                out,
                "{:<18} {:>9.3}s {:>9.3}s {:>+8.1}%{}",
                w.name,
                w.baseline_s,
                w.current_s,
                w.ratio() * 100.0,
                match (w.regressed, w.degraded) {
                    (true, true) => "  REGRESSED  [degraded]",
                    (true, false) => "  REGRESSED",
                    (false, true) => "  [degraded]",
                    (false, false) => "",
                },
            );
        }
        for note in &self.structure {
            let _ = writeln!(out, "structure: {note}");
        }
        if self.drift.is_empty() {
            let _ = writeln!(out, "counters: bit-identical across runs");
        } else {
            for d in &self.drift {
                let _ = writeln!(
                    out,
                    "counter drift: {}/{}: {} -> {}",
                    d.experiment, d.counter, d.baseline, d.current
                );
            }
        }
        for note in &self.span_notes {
            let _ = writeln!(out, "span: {note}");
        }
        out
    }
}

/// The `mlam-trace compare --json` payload: everything the text
/// rendering says, machine-readable. `exit_code` mirrors the process
/// exit code (including the `--warn-only` downgrade), so a harness
/// that captured stdout but lost the status can still act on the
/// verdict — and a mismatch between the two is a bug, not a judgment
/// call.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MachineReport {
    /// `"clean"`, `"wall-regression"` or `"counter-drift"` (counter
    /// drift wins when both apply — it is the harder failure).
    pub verdict: String,
    /// The process exit code: 0 clean (or `--warn-only` wall
    /// regression), 1 wall regression, 2 counter drift.
    pub exit_code: i32,
    /// Whether `--warn-only` downgraded a wall regression to exit 0.
    pub warn_only: bool,
    /// Per-experiment wall-clock deltas, baseline order, then a
    /// `"(total)"` row.
    pub wall: Vec<WallDelta>,
    /// Per-counter drift (empty on clean runs).
    pub drift: Vec<CounterDrift>,
    /// Structural mismatches (seed, parameter set, experiment list).
    pub structure: Vec<String>,
    /// Informational span-latency movers.
    pub span_notes: Vec<String>,
}

impl CompareReport {
    /// Builds the machine-readable verdict for this report. The exit
    /// codes match the `mlam-trace` binary's contract: 2 for counter
    /// drift (never suppressed), 1 for a wall regression (0 under
    /// `warn_only`), 0 otherwise.
    pub fn machine(&self, warn_only: bool) -> MachineReport {
        let (verdict, exit_code) = if self.has_counter_drift() {
            ("counter-drift", 2)
        } else if self.has_wall_regression() {
            ("wall-regression", if warn_only { 0 } else { 1 })
        } else {
            ("clean", 0)
        };
        MachineReport {
            verdict: verdict.to_string(),
            exit_code,
            warn_only,
            wall: self.wall.clone(),
            drift: self.drift.clone(),
            structure: self.structure.clone(),
            span_notes: self.span_notes.clone(),
        }
    }
}

fn flag(baseline_s: f64, current_s: f64, opts: &CompareOptions) -> bool {
    current_s > baseline_s * (1.0 + opts.threshold) && current_s - baseline_s > opts.min_wall_s
}

/// Diffs two run manifests. See the module docs for the rules.
///
/// # Example
///
/// ```
/// use mlam_telemetry::{ExperimentRecord, RunManifest};
/// use mlam_trace::compare::{compare, CompareOptions};
///
/// let mut baseline = RunManifest::new("repro_all", 7, true);
/// baseline.experiments.push(ExperimentRecord {
///     name: "table1".into(),
///     seconds: 1.0,
///     degraded: false,
///     counters: [("oracle.example_queries".to_string(), 2000u64)].into(),
/// });
/// // Same seed, same counters, slightly different wall-clock: clean.
/// let mut current = baseline.clone();
/// current.experiments[0].seconds = 1.05;
/// let report = compare(&baseline, &current, &CompareOptions::default());
/// assert!(!report.has_counter_drift());
/// assert!(!report.has_wall_regression());
///
/// // One query fewer is behavioral drift — always a hard failure.
/// *current.experiments[0].counters.get_mut("oracle.example_queries").unwrap() -= 1;
/// assert!(compare(&baseline, &current, &CompareOptions::default()).has_counter_drift());
/// ```
pub fn compare(
    baseline: &RunManifest,
    current: &RunManifest,
    opts: &CompareOptions,
) -> CompareReport {
    let mut report = CompareReport::default();
    if baseline.seed != current.seed {
        report.structure.push(format!(
            "seed mismatch: baseline {} vs current {} (runs are not comparable)",
            baseline.seed, current.seed
        ));
    }
    if baseline.quick != current.quick {
        report.structure.push(format!(
            "parameter-set mismatch: baseline quick={} vs current quick={}",
            baseline.quick, current.quick
        ));
    }
    let current_by_name: BTreeMap<&str, &mlam_telemetry::ExperimentRecord> = current
        .experiments
        .iter()
        .map(|e| (e.name.as_str(), e))
        .collect();
    let baseline_names: BTreeSet<&str> = baseline
        .experiments
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    for exp in &current.experiments {
        if !baseline_names.contains(exp.name.as_str()) {
            report
                .structure
                .push(format!("experiment {} only in current run", exp.name));
        }
    }
    for base_exp in &baseline.experiments {
        let Some(cur_exp) = current_by_name.get(base_exp.name.as_str()) else {
            report.structure.push(format!(
                "experiment {} missing from current run",
                base_exp.name
            ));
            continue;
        };
        if base_exp.degraded != cur_exp.degraded {
            report.structure.push(format!(
                "experiment {} is degraded (partial record) in the {} run only",
                base_exp.name,
                if cur_exp.degraded {
                    "current"
                } else {
                    "baseline"
                }
            ));
        }
        report.wall.push(WallDelta {
            name: base_exp.name.clone(),
            baseline_s: base_exp.seconds,
            current_s: cur_exp.seconds,
            regressed: flag(base_exp.seconds, cur_exp.seconds, opts),
            degraded: base_exp.degraded || cur_exp.degraded,
        });
        let keys: BTreeSet<&String> = base_exp
            .counters
            .keys()
            .chain(cur_exp.counters.keys())
            .collect();
        for key in keys {
            if opts.is_ignored(key) {
                continue;
            }
            let b = base_exp.counters.get(key).copied().unwrap_or(0);
            let c = cur_exp.counters.get(key).copied().unwrap_or(0);
            if b != c {
                report.drift.push(CounterDrift {
                    experiment: base_exp.name.clone(),
                    counter: key.clone(),
                    baseline: b,
                    current: c,
                });
            }
        }
    }
    report.wall.push(WallDelta {
        name: "(total)".into(),
        baseline_s: baseline.total_seconds,
        current_s: current.total_seconds,
        regressed: flag(baseline.total_seconds, current.total_seconds, opts),
        degraded: false,
    });
    report
}

/// Informational span-latency movers from the two runs'
/// `metrics.jsonl` histograms: mean duration of `span.<name>.micros`
/// shifted beyond the threshold. Never affects the exit code.
pub fn span_movers(
    baseline: &BTreeMap<String, HistogramSnapshot>,
    current: &BTreeMap<String, HistogramSnapshot>,
    opts: &CompareOptions,
) -> Vec<String> {
    let mut notes = Vec::new();
    for (name, base_hist) in baseline {
        let Some(stripped) = name
            .strip_prefix("span.")
            .and_then(|n| n.strip_suffix(".micros"))
        else {
            continue;
        };
        let Some(cur_hist) = current.get(name) else {
            continue;
        };
        let (Some(base_mean), Some(cur_mean)) = (base_hist.mean(), cur_hist.mean()) else {
            continue;
        };
        let floor_us = opts.min_wall_s * 1e6;
        if cur_mean > base_mean * (1.0 + opts.threshold) && cur_mean - base_mean > floor_us {
            notes.push(format!(
                "{stripped}: mean {base_mean:.0}µs -> {cur_mean:.0}µs ({:+.1}%)",
                (cur_mean / base_mean - 1.0) * 100.0
            ));
        }
    }
    notes
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_telemetry::ExperimentRecord;

    /// `(experiment name, wall seconds, counters)` rows for a manifest.
    type ExpSpec<'a> = (&'a str, f64, &'a [(&'a str, u64)]);

    fn manifest(seed: u64, experiments: &[ExpSpec]) -> RunManifest {
        let mut m = RunManifest::new("test", seed, true);
        for (name, seconds, counters) in experiments {
            m.experiments.push(ExperimentRecord {
                name: name.to_string(),
                seconds: *seconds,
                degraded: false,
                counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            });
            m.total_seconds += seconds;
        }
        m
    }

    #[test]
    fn identical_runs_are_clean() {
        let exps: &[ExpSpec] = &[
            ("table1", 1.0, &[("oracle.example_queries", 2000)]),
            ("locking", 2.0, &[("sat.conflicts", 333)]),
        ];
        let a = manifest(7, exps);
        let b = manifest(7, exps);
        let report = compare(&a, &b, &CompareOptions::default());
        assert!(!report.has_counter_drift());
        assert!(!report.has_wall_regression());
        assert!(report.render().contains("bit-identical"));
    }

    #[test]
    fn wall_regression_needs_threshold_and_floor() {
        let base = manifest(7, &[("table1", 1.0, &[])]);
        let opts = CompareOptions::default();
        // +50% and above the floor: regressed.
        let slow = manifest(7, &[("table1", 1.5, &[])]);
        let report = compare(&base, &slow, &opts);
        assert!(report.has_wall_regression());
        assert!(report.render().contains("REGRESSED"));
        // +15%: under the 20% threshold.
        let ok = manifest(7, &[("table1", 1.15, &[])]);
        assert!(!compare(&base, &ok, &opts).has_wall_regression());
        // +50% of a tiny experiment: under the absolute floor.
        let tiny_base = manifest(7, &[("table1", 0.010, &[])]);
        let tiny_slow = manifest(7, &[("table1", 0.015, &[])]);
        assert!(!compare(&tiny_base, &tiny_slow, &opts).has_wall_regression());
        // Getting faster is never a regression.
        let fast = manifest(7, &[("table1", 0.1, &[])]);
        assert!(!compare(&base, &fast, &opts).has_wall_regression());
    }

    #[test]
    fn counter_drift_is_detected_in_both_directions() {
        let a = manifest(7, &[("table1", 1.0, &[("oracle.example_queries", 2000)])]);
        let b = manifest(7, &[("table1", 1.0, &[("oracle.example_queries", 1999)])]);
        let report = compare(&a, &b, &CompareOptions::default());
        assert!(report.has_counter_drift());
        assert_eq!(report.drift.len(), 1);
        assert_eq!(report.drift[0].counter, "oracle.example_queries");
        // A counter present on only one side is drift too.
        let c = manifest(7, &[("table1", 1.0, &[])]);
        assert!(compare(&a, &c, &CompareOptions::default()).has_counter_drift());
        assert!(compare(&c, &a, &CompareOptions::default()).has_counter_drift());
    }

    #[test]
    fn ignored_counter_prefixes_are_excluded_from_drift() {
        let a = manifest(
            7,
            &[(
                "collect",
                1.0,
                &[
                    ("puf.batch.bitsliced_evals", 4096),
                    ("bench.crp.response_ones", 2011),
                ],
            )],
        );
        let b = manifest(
            7,
            &[(
                "collect",
                1.0,
                &[
                    ("puf.batch.scalar_evals", 4096),
                    ("bench.crp.response_ones", 2011),
                ],
            )],
        );
        // Without the ignore list, the path counters drift.
        assert!(compare(&a, &b, &CompareOptions::default()).has_counter_drift());
        // With it, only the behavior counters are compared — clean.
        let opts = CompareOptions {
            ignore_counters: vec!["puf.batch.".to_string()],
            ..Default::default()
        };
        assert!(!compare(&a, &b, &opts).has_counter_drift());
        // A behavior-counter drift still fails with the ignore list on.
        let c = manifest(7, &[("collect", 1.0, &[("bench.crp.response_ones", 2012)])]);
        let report = compare(&a, &c, &opts);
        assert!(report.has_counter_drift());
        assert_eq!(report.drift.len(), 1);
        assert_eq!(report.drift[0].counter, "bench.crp.response_ones");
    }

    #[test]
    fn structural_mismatches_count_as_drift() {
        let a = manifest(7, &[("table1", 1.0, &[])]);
        let seed_mismatch = manifest(8, &[("table1", 1.0, &[])]);
        assert!(compare(&a, &seed_mismatch, &CompareOptions::default()).has_counter_drift());
        let missing = manifest(7, &[]);
        assert!(compare(&a, &missing, &CompareOptions::default()).has_counter_drift());
        let extra = manifest(7, &[("table1", 1.0, &[]), ("table9", 1.0, &[])]);
        assert!(compare(&a, &extra, &CompareOptions::default()).has_counter_drift());
    }

    #[test]
    fn degraded_mismatch_is_structure_drift() {
        let a = manifest(7, &[("table1", 1.0, &[("oracle.example_queries", 500)])]);
        let mut b = a.clone();
        b.experiments[0].degraded = true;
        // A degraded record vs. a complete one: not comparable.
        let report = compare(&a, &b, &CompareOptions::default());
        assert!(report.has_counter_drift());
        assert!(report.render().contains("degraded"));
        assert!(report.wall[0].degraded);
        // Both degraded the same way (e.g. two runs of a checked-in
        // degraded baseline): comparable, marked in the rendering.
        let mut a2 = a.clone();
        a2.experiments[0].degraded = true;
        let report = compare(&a2, &b, &CompareOptions::default());
        assert!(!report.has_counter_drift());
        assert!(report.render().contains("[degraded]"));
    }

    #[test]
    fn machine_report_mirrors_the_exit_code_contract() {
        let base = manifest(7, &[("table1", 1.0, &[("oracle.example_queries", 2000)])]);

        let clean = compare(&base, &base, &CompareOptions::default()).machine(false);
        assert_eq!((clean.verdict.as_str(), clean.exit_code), ("clean", 0));

        let slow = manifest(7, &[("table1", 3.0, &[("oracle.example_queries", 2000)])]);
        let report = compare(&base, &slow, &CompareOptions::default());
        let wall = report.machine(false);
        assert_eq!(
            (wall.verdict.as_str(), wall.exit_code),
            ("wall-regression", 1)
        );
        // --warn-only changes the exit code but not the verdict.
        let warned = report.machine(true);
        assert_eq!(
            (warned.verdict.as_str(), warned.exit_code),
            ("wall-regression", 0)
        );
        assert!(warned.warn_only);

        // Counter drift wins over a simultaneous wall regression and
        // is never downgraded.
        let drift = manifest(7, &[("table1", 3.0, &[("oracle.example_queries", 1999)])]);
        let machine = compare(&base, &drift, &CompareOptions::default()).machine(true);
        assert_eq!(
            (machine.verdict.as_str(), machine.exit_code),
            ("counter-drift", 2)
        );
        assert_eq!(machine.drift.len(), 1);

        // The payload round-trips through JSON.
        let json = serde_json::to_string_pretty(&machine).unwrap();
        let back: MachineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.verdict, machine.verdict);
        assert_eq!(back.exit_code, machine.exit_code);
        assert_eq!(back.wall.len(), machine.wall.len());
    }

    #[test]
    fn span_movers_flag_mean_shifts() {
        let mut base = BTreeMap::new();
        let mut cur = BTreeMap::new();
        base.insert(
            "span.attack.micros".to_string(),
            HistogramSnapshot {
                count: 10,
                sum: 2_000_000,
                buckets: vec![(18, 10)],
            },
        );
        cur.insert(
            "span.attack.micros".to_string(),
            HistogramSnapshot {
                count: 10,
                sum: 6_000_000,
                buckets: vec![(20, 10)],
            },
        );
        // Not a span histogram: ignored.
        base.insert("other.micros".into(), HistogramSnapshot::default());
        let notes = span_movers(&base, &cur, &CompareOptions::default());
        assert_eq!(notes.len(), 1);
        assert!(notes[0].starts_with("attack:"), "{}", notes[0]);
        // Identical histograms: quiet.
        assert!(span_movers(&base, &base, &CompareOptions::default()).is_empty());
    }
}
