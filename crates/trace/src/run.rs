//! Loading run directories: `events.jsonl`, `metrics.jsonl`,
//! `manifest.json`, with every error carrying the offending path (and
//! line number for JSONL streams).

use mlam_telemetry::{Event, HistogramSnapshot, MetricLine, RunManifest};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Everything a run directory contains, parsed. `manifest` and the
/// metric maps are empty/`None` when the corresponding file is absent,
/// so tools can work from a bare `events.jsonl` too.
pub struct RunData {
    /// The run directory the data came from.
    pub dir: PathBuf,
    /// Parsed `events.jsonl` span stream.
    pub events: Vec<Event>,
    /// Parsed `manifest.json`, when present.
    pub manifest: Option<RunManifest>,
    /// Counter lines from `metrics.jsonl`.
    pub counters: BTreeMap<String, u64>,
    /// Histogram lines from `metrics.jsonl`.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RunData {
    /// Loads a run directory (or, for convenience, a bare
    /// `events.jsonl` file, in which case siblings are looked up next
    /// to it).
    pub fn load(path: impl Into<PathBuf>) -> io::Result<RunData> {
        let path = path.into();
        let (dir, events_path) = if path.is_file() {
            let dir = path.parent().unwrap_or(Path::new(".")).to_path_buf();
            (dir, path)
        } else {
            (path.clone(), path.join("events.jsonl"))
        };
        let events = if events_path.is_file() {
            load_events(&events_path)?
        } else {
            Vec::new()
        };
        let manifest_path = dir.join("manifest.json");
        let manifest = if manifest_path.is_file() {
            Some(load_manifest(&manifest_path)?)
        } else {
            None
        };
        let metrics_path = dir.join("metrics.jsonl");
        let (counters, histograms) = if metrics_path.is_file() {
            load_metrics(&metrics_path)?
        } else {
            (BTreeMap::new(), BTreeMap::new())
        };
        Ok(RunData {
            dir,
            events,
            manifest,
            counters,
            histograms,
        })
    }
}

/// Parses an `events.jsonl` stream (one [`Event`] per line).
pub fn load_events(path: &Path) -> io::Result<Vec<Event>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| mlam_telemetry::rundir::annotate(e, "cannot read", path))?;
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event: Event = serde_json::from_str(line).map_err(|e| bad_line(path, lineno, &e))?;
        events.push(event);
    }
    Ok(events)
}

/// Parses a `manifest.json`.
pub fn load_manifest(path: &Path) -> io::Result<RunManifest> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| mlam_telemetry::rundir::annotate(e, "cannot read", path))?;
    serde_json::from_str(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Parses a `metrics.jsonl` stream into counter and histogram maps.
pub fn load_metrics(
    path: &Path,
) -> io::Result<(BTreeMap<String, u64>, BTreeMap<String, HistogramSnapshot>)> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| mlam_telemetry::rundir::annotate(e, "cannot read", path))?;
    let mut counters = BTreeMap::new();
    let mut histograms = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed: MetricLine =
            serde_json::from_str(line).map_err(|e| bad_line(path, lineno, &e))?;
        match parsed {
            MetricLine::Counter { name, value } => {
                counters.insert(name, value);
            }
            MetricLine::Histogram {
                name,
                count,
                sum,
                buckets,
            } => {
                histograms.insert(
                    name,
                    HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    },
                );
            }
        }
    }
    Ok((counters, histograms))
}

fn bad_line(path: &Path, lineno: usize, error: &dyn std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}:{}: {error}", path.display(), lineno + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlam_trace_run_{label}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bad_jsonl_lines_report_path_and_line() {
        let dir = scratch("badline");
        let path = dir.join("events.jsonl");
        std::fs::write(&path, "{\"not\": \"an event\"}\n").unwrap();
        let err = load_events(&path).expect_err("must reject");
        let msg = err.to_string();
        assert!(msg.contains("events.jsonl:1"), "got: {msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_files_load_as_empty() {
        let dir = scratch("empty");
        let run = RunData::load(&dir).unwrap();
        assert!(run.events.is_empty());
        assert!(run.manifest.is_none());
        assert!(run.counters.is_empty());
        assert!(run.histograms.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_round_trip_through_loader() {
        let dir = scratch("metrics");
        mlam_telemetry::counter_handle("trace.run.test_counter").add(7);
        mlam_telemetry::histogram_handle("trace.run.test_histogram").observe(100);
        let snap = mlam_telemetry::snapshot();
        let mut buf = Vec::new();
        mlam_telemetry::write_metrics_jsonl(&mut buf, &snap).unwrap();
        let path = dir.join("metrics.jsonl");
        std::fs::write(&path, &buf).unwrap();
        let (counters, histograms) = load_metrics(&path).unwrap();
        assert!(counters["trace.run.test_counter"] >= 7);
        assert!(histograms["trace.run.test_histogram"].count >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
