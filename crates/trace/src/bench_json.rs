//! The `BENCH_*.json` perf-trajectory record: one entry per
//! experiment with wall-clock and the adversary-budget counters the
//! paper ranks attacks by (Table I / Sec. III) — oracle queries and
//! SAT conflicts.

use mlam_telemetry::RunManifest;
use serde::{Deserialize, Serialize};

/// One experiment's perf-trajectory entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// The experiment's name.
    pub name: String,
    /// Wall-clock inside the experiment driver, nanoseconds.
    pub wall_ns: u64,
    /// Total `oracle.*` counter increments (example, membership and
    /// equivalence queries).
    pub queries: u64,
    /// `sat.conflicts` increments.
    pub sat_conflicts: u64,
}

/// Extracts the per-experiment entries from a run manifest.
pub fn bench_entries(manifest: &RunManifest) -> Vec<BenchEntry> {
    manifest
        .experiments
        .iter()
        .map(|exp| BenchEntry {
            name: exp.name.clone(),
            wall_ns: (exp.seconds * 1e9).round() as u64,
            queries: exp
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with("oracle."))
                .map(|(_, v)| *v)
                .sum(),
            sat_conflicts: exp.counters.get("sat.conflicts").copied().unwrap_or(0),
        })
        .collect()
}

/// Serializes the entries as the pretty-JSON array CI publishes.
pub fn to_json(entries: &[BenchEntry]) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(&entries.to_vec()).map(|s| s + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_telemetry::ExperimentRecord;
    use std::collections::BTreeMap;

    #[test]
    fn entries_sum_oracle_counters() {
        let mut manifest = RunManifest::new("repro_all", 1, true);
        manifest.experiments.push(ExperimentRecord {
            name: "table1".into(),
            seconds: 1.5,
            degraded: false,
            counters: BTreeMap::from([
                ("oracle.example_queries".to_string(), 2000u64),
                ("oracle.membership_queries".to_string(), 30u64),
                ("sat.conflicts".to_string(), 7u64),
                ("learn.perceptron.epochs".to_string(), 99u64),
            ]),
        });
        let entries = bench_entries(&manifest);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "table1");
        assert_eq!(entries[0].wall_ns, 1_500_000_000);
        assert_eq!(entries[0].queries, 2030);
        assert_eq!(entries[0].sat_conflicts, 7);
        let json = to_json(&entries).unwrap();
        let back: Vec<BenchEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);
    }
}
