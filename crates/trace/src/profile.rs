//! Flamegraph-style text profile: the span tree aggregated by call
//! path, with inclusive/self time, call counts, and p50/p95 latencies
//! from the `span.<name>.micros` histograms.

use mlam_telemetry::{Event, EventKind, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One aggregated call-path node of the span tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// Span name at this path.
    pub name: String,
    /// Completed span instances at this path.
    pub count: u64,
    /// Spans that started here but never ended (crash / truncation);
    /// they contribute their last-seen extent to `inclusive_ns`.
    pub unclosed: u64,
    /// Total wall-clock inside spans at this path, children included.
    pub inclusive_ns: u64,
    /// Child call paths, in first-seen order.
    pub children: Vec<Node>,
}

impl Node {
    fn new(name: &str) -> Node {
        Node {
            name: name.to_string(),
            count: 0,
            unclosed: 0,
            inclusive_ns: 0,
            children: Vec::new(),
        }
    }

    /// Wall-clock at this path minus the children's inclusive time.
    pub fn self_ns(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.inclusive_ns).sum();
        self.inclusive_ns.saturating_sub(children)
    }

    fn sort_by_self_time(&mut self) {
        for child in &mut self.children {
            child.sort_by_self_time();
        }
        self.children
            .sort_by(|a, b| b.self_ns().cmp(&a.self_ns()).then(a.name.cmp(&b.name)));
    }
}

/// Rebuilds the aggregated span tree from an event stream. The
/// returned synthetic root has inclusive time equal to the sum of its
/// top-level children.
pub fn span_tree(events: &[Event]) -> Node {
    // Arena of aggregation nodes, keyed per-parent by span name.
    struct Agg {
        name: String,
        parent: usize,
        children: BTreeMap<String, usize>,
        count: u64,
        unclosed: u64,
        inclusive_ns: u64,
    }
    let mut arena: Vec<Agg> = vec![Agg {
        name: String::new(),
        parent: 0,
        children: BTreeMap::new(),
        count: 0,
        unclosed: 0,
        inclusive_ns: 0,
    }];
    // Live (and finished) span id -> arena node, plus start ts for
    // spans that never end.
    let mut node_of_span: BTreeMap<u64, usize> = BTreeMap::new();
    let mut start_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let max_ts = events.iter().map(|e| e.ts_ns).max().unwrap_or(0);

    let child_node = |arena: &mut Vec<Agg>, parent_idx: usize, name: &str| -> usize {
        if let Some(&idx) = arena[parent_idx].children.get(name) {
            return idx;
        }
        let idx = arena.len();
        arena.push(Agg {
            name: name.to_string(),
            parent: parent_idx,
            children: BTreeMap::new(),
            count: 0,
            unclosed: 0,
            inclusive_ns: 0,
        });
        arena[parent_idx].children.insert(name.to_string(), idx);
        idx
    };

    for event in events {
        match event.kind {
            EventKind::SpanStart => {
                let parent_idx = event
                    .parent_id
                    .and_then(|p| node_of_span.get(&p).copied())
                    .unwrap_or(0);
                let idx = child_node(&mut arena, parent_idx, &event.name);
                node_of_span.insert(event.id, idx);
                start_ts.insert(event.id, event.ts_ns);
            }
            EventKind::SpanEnd => {
                // An end without a start (truncated stream) attaches
                // where its parent does, or under the root.
                let idx = node_of_span.get(&event.id).copied().unwrap_or_else(|| {
                    let parent_idx = event
                        .parent_id
                        .and_then(|p| node_of_span.get(&p).copied())
                        .unwrap_or(0);
                    let idx = child_node(&mut arena, parent_idx, &event.name);
                    node_of_span.insert(event.id, idx);
                    idx
                });
                start_ts.remove(&event.id);
                arena[idx].count += 1;
                arena[idx].inclusive_ns += event.elapsed_ns.unwrap_or(0);
            }
        }
    }
    // Spans that never ended: charge their extent up to the last event.
    for (id, ts) in start_ts {
        if let Some(&idx) = node_of_span.get(&id) {
            arena[idx].unclosed += 1;
            arena[idx].inclusive_ns += max_ts.saturating_sub(ts);
        }
    }

    // Freeze the arena into an owned tree (children built bottom-up:
    // arena indices only ever point forward, so reverse order works).
    let mut built: Vec<Option<Node>> = arena
        .iter()
        .map(|a| {
            let mut node = Node::new(&a.name);
            node.count = a.count;
            node.unclosed = a.unclosed;
            node.inclusive_ns = a.inclusive_ns;
            Some(node)
        })
        .collect();
    for idx in (1..arena.len()).rev() {
        let node = built[idx].take().expect("each node is taken once");
        let parent = arena[idx].parent;
        built[parent]
            .as_mut()
            .expect("parent still present")
            .children
            .push(node);
    }
    let mut root = built[0].take().expect("root");
    root.inclusive_ns = root.children.iter().map(|c| c.inclusive_ns).sum();
    root.sort_by_self_time();
    root
}

fn fmt_ns(ns: u64) -> String {
    let secs = ns as f64 / 1e9;
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}µs", ns as f64 / 1e3)
    }
}

fn fmt_micros(us: Option<u64>) -> String {
    match us {
        Some(us) => fmt_ns(us.saturating_mul(1_000)),
        None => "-".to_string(),
    }
}

/// Renders the profile report: a header, then one line per call path,
/// indented by depth, siblings sorted by self time (descending).
/// `histograms` is the `metrics.jsonl` histogram map; p50/p95 come
/// from `span.<name>.micros` via [`HistogramSnapshot::percentile`].
pub fn render(root: &Node, histograms: &BTreeMap<String, HistogramSnapshot>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>12} {:>8} {:>10} {:>10}  span",
        "inclusive", "self", "calls", "p50", "p95"
    );
    fn walk(
        out: &mut String,
        node: &Node,
        depth: usize,
        histograms: &BTreeMap<String, HistogramSnapshot>,
    ) {
        let histogram = histograms.get(&format!("span.{}.micros", node.name));
        let p50 = histogram.and_then(|h| h.percentile(0.50));
        let p95 = histogram.and_then(|h| h.percentile(0.95));
        let unclosed = if node.unclosed > 0 {
            format!(" [{} unclosed]", node.unclosed)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{:>12} {:>12} {:>8} {:>10} {:>10}  {}{}{}",
            fmt_ns(node.inclusive_ns),
            fmt_ns(node.self_ns()),
            node.count,
            fmt_micros(p50),
            fmt_micros(p95),
            "  ".repeat(depth),
            node.name,
            unclosed,
        );
        for child in &node.children {
            walk(out, child, depth + 1, histograms);
        }
    }
    for child in &root.children {
        walk(&mut out, child, 0, histograms);
    }
    if root.children.is_empty() {
        let _ = writeln!(out, "(no span events)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, name: &str, id: u64, parent: Option<u64>, ts: u64, el: u64) -> Event {
        Event {
            kind,
            name: name.into(),
            id,
            parent_id: parent,
            tid: 1,
            depth: 0,
            ts_ns: ts,
            elapsed_ns: matches!(kind, EventKind::SpanEnd).then_some(el),
            attrs: Vec::new(),
        }
    }

    /// run(1000ns) containing two step spans (300ns + 200ns), one of
    /// them called twice under the same path.
    fn workload() -> Vec<Event> {
        vec![
            ev(EventKind::SpanStart, "run", 1, None, 0, 0),
            ev(EventKind::SpanStart, "step", 2, Some(1), 100, 0),
            ev(EventKind::SpanEnd, "step", 2, Some(1), 400, 300),
            ev(EventKind::SpanStart, "step", 3, Some(1), 500, 0),
            ev(EventKind::SpanEnd, "step", 3, Some(1), 700, 200),
            ev(EventKind::SpanEnd, "run", 1, None, 1000, 1000),
        ]
    }

    #[test]
    fn tree_aggregates_by_call_path() {
        let root = span_tree(&workload());
        assert_eq!(root.children.len(), 1);
        let run = &root.children[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.count, 1);
        assert_eq!(run.inclusive_ns, 1000);
        assert_eq!(run.children.len(), 1);
        let step = &run.children[0];
        assert_eq!(step.count, 2, "same-path spans aggregate");
        assert_eq!(step.inclusive_ns, 500);
        assert_eq!(step.self_ns(), 500);
        assert_eq!(run.self_ns(), 500, "inclusive minus children");
    }

    #[test]
    fn siblings_sort_by_self_time() {
        let events = vec![
            ev(EventKind::SpanStart, "parent", 1, None, 0, 0),
            ev(EventKind::SpanStart, "small", 2, Some(1), 0, 0),
            ev(EventKind::SpanEnd, "small", 2, Some(1), 10, 10),
            ev(EventKind::SpanStart, "big", 3, Some(1), 10, 0),
            ev(EventKind::SpanEnd, "big", 3, Some(1), 910, 900),
            ev(EventKind::SpanEnd, "parent", 1, None, 1000, 1000),
        ];
        let root = span_tree(&events);
        let parent = &root.children[0];
        let names: Vec<&str> = parent.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["big", "small"]);
    }

    #[test]
    fn unclosed_spans_are_charged_and_flagged() {
        let events = vec![
            ev(EventKind::SpanStart, "hang", 7, None, 100, 0),
            ev(EventKind::SpanStart, "after", 8, None, 600, 0),
            ev(EventKind::SpanEnd, "after", 8, None, 700, 100),
        ];
        let root = span_tree(&events);
        let hang = root.children.iter().find(|c| c.name == "hang").unwrap();
        assert_eq!(hang.count, 0);
        assert_eq!(hang.unclosed, 1);
        assert_eq!(hang.inclusive_ns, 600, "charged up to the last event");
        let report = render(&root, &BTreeMap::new());
        assert!(report.contains("[1 unclosed]"), "{report}");
    }

    #[test]
    fn render_includes_percentiles_from_histograms() {
        let mut histograms = BTreeMap::new();
        let handle = mlam_telemetry::histogram_handle("test.profile.render");
        handle.observe(100);
        handle.observe(100);
        handle.observe(100_000);
        histograms.insert("span.run.micros".to_string(), handle.snapshot());
        let root = span_tree(&workload());
        let report = render(&root, &histograms);
        assert!(report.contains("run"), "{report}");
        assert!(report.contains("step"), "{report}");
        // p50 of {100,100,100000} sits in the [64,128) bucket → 127µs.
        assert!(report.contains("127.0µs"), "{report}");
    }
}
