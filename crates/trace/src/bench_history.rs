//! `mlam-trace bench-history` — one table over every checked-in
//! `BENCH_<n>.json`.
//!
//! Each PR's benchmark lands as a new `BENCH_<n>.json` at the repo
//! root, and the schemas deliberately differ: the perf-trajectory
//! record is a bare array of per-experiment entries, while the sweep
//! benchmarks are objects with a `benchmark` description and their own
//! result shapes. This module reads them all generically, orders them
//! by index (the index is the PR sequence — the only time axis the
//! files carry), and summarizes each into one row, so the perf
//! trajectory of the repo is visible without opening five files with
//! five shapes.

use serde_json::Value;
use std::path::Path;

/// One `BENCH_<n>.json`, summarized.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryRow {
    /// The `<n>` in the file name — the PR-sequence time axis.
    pub index: u64,
    /// The file's name (no directory).
    pub file: String,
    /// What the file measures: the object schema's `benchmark` field,
    /// or a synthesized description for the array schema.
    pub benchmark: String,
    /// The row's headline numbers, schema-dependent.
    pub headline: String,
}

/// Looks up a key in an object `Value`.
fn field<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    match value {
        Value::Map(pairs) => pairs
            .iter()
            .find(|(k, _)| k.as_str() == key)
            .map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(value: &Value) -> Option<f64> {
    match value {
        Value::U64(v) => Some(*v as f64),
        Value::I64(v) => Some(*v as f64),
        Value::F64(v) => Some(*v),
        _ => None,
    }
}

/// Summarizes the array schema (`mlam-trace bench` output): total
/// wall-clock and adversary budget across the per-experiment entries.
fn summarize_entries(entries: &[Value]) -> (String, String) {
    let sum = |key: &str| -> f64 {
        entries
            .iter()
            .filter_map(|e| field(e, key).and_then(as_f64))
            .sum()
    };
    (
        "per-experiment perf trajectory (mlam-trace bench)".to_string(),
        format!(
            "{} experiments · {:.2}s wall · {} queries · {} sat conflicts",
            entries.len(),
            sum("wall_ns") / 1e9,
            sum("queries") as u64,
            sum("sat_conflicts") as u64,
        ),
    )
}

/// Summarizes the object schema: the `benchmark` description plus
/// whichever headline fields the shape carries (`rows`/`results`/
/// `netlists` length, `overhead_pct`, `trials`, top-level `speedup`s).
fn summarize_object(value: &Value) -> (String, String) {
    let benchmark = match field(value, "benchmark") {
        Some(Value::Str(s)) => s.clone(),
        _ => "(no benchmark field)".to_string(),
    };
    let mut parts = Vec::new();
    for key in ["rows", "results", "netlists"] {
        if let Some(Value::Seq(items)) = field(value, key) {
            parts.push(format!("{} {key}", items.len()));
        }
    }
    for key in ["trials", "overhead_pct"] {
        if let Some(v) = field(value, key).and_then(as_f64) {
            parts.push(format!("{key} {v:.4}"));
        }
    }
    // A/B sweeps (e.g. BENCH_8) carry a per-entry speedup: headline the
    // best one.
    if let Some(Value::Seq(items)) = field(value, "netlists") {
        let best = items
            .iter()
            .filter_map(|item| field(item, "speedup").and_then(as_f64))
            .fold(f64::NEG_INFINITY, f64::max);
        if best.is_finite() {
            parts.push(format!("max speedup {best:.2}x"));
        }
    }
    if let Some(Value::Str(seed)) = field(value, "seed") {
        parts.push(format!("seed {seed}"));
    }
    (benchmark, parts.join(" · "))
}

/// Reads every `BENCH_<n>.json` under `dir`, index-ordered. Files that
/// do not match the name pattern are ignored; a matching file that
/// fails to parse is an error (a corrupt checked-in benchmark should
/// fail loudly, not vanish from the table).
pub fn collect(dir: &Path) -> Result<Vec<HistoryRow>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut rows = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let file = entry.file_name().to_string_lossy().into_owned();
        let Some(index) = file
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("cannot read {file}: {e}"))?;
        let value: Value =
            serde_json::from_str(&text).map_err(|e| format!("cannot parse {file}: {e}"))?;
        let (benchmark, headline) = match &value {
            Value::Seq(entries) => summarize_entries(entries),
            _ => summarize_object(&value),
        };
        rows.push(HistoryRow {
            index,
            file,
            benchmark,
            headline,
        });
    }
    rows.sort_by_key(|row| row.index);
    Ok(rows)
}

/// Renders the rows as the time-ordered table the CLI prints.
pub fn render(rows: &[HistoryRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&format!(
            "{:<14} {}\n{:<14} {}\n",
            row.file, row.benchmark, "", row.headline
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mlam_hist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn collect_orders_by_index_and_handles_both_schemas() {
        let dir = scratch("both");
        // Object schema with rows, out of lexicographic order with the
        // array file (index 10 sorts after 2 numerically, before it
        // lexicographically).
        std::fs::write(
            dir.join("BENCH_10.json"),
            r#"{"benchmark":"fault sweep","seed":"0x7","trials":3,"rows":[{},{}],"overhead_pct":1.25}"#,
        )
        .unwrap();
        std::fs::write(
            dir.join("BENCH_2.json"),
            r#"[{"name":"table1","wall_ns":1500000000,"queries":2000,"sat_conflicts":7},
                {"name":"locking","wall_ns":500000000,"queries":30,"sat_conflicts":420}]"#,
        )
        .unwrap();
        // Not part of the history: ignored.
        std::fs::write(dir.join("BENCH_notes.json"), "{}").unwrap();
        std::fs::write(dir.join("manifest.json"), "{}").unwrap();

        let rows = collect(&dir).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].index, 2);
        assert_eq!(rows[1].index, 10);
        assert!(rows[0].headline.contains("2 experiments"), "{rows:?}");
        assert!(rows[0].headline.contains("2.00s wall"), "{rows:?}");
        assert!(rows[0].headline.contains("2030 queries"), "{rows:?}");
        assert!(rows[0].headline.contains("427 sat conflicts"), "{rows:?}");
        assert_eq!(rows[1].benchmark, "fault sweep");
        assert!(rows[1].headline.contains("2 rows"), "{rows:?}");
        assert!(rows[1].headline.contains("overhead_pct 1.2500"), "{rows:?}");
        assert!(rows[1].headline.contains("seed 0x7"), "{rows:?}");

        let table = render(&rows);
        let first = table.find("BENCH_2.json").unwrap();
        let second = table.find("BENCH_10.json").unwrap();
        assert!(first < second, "table must be index-ordered:\n{table}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ab_sweep_schema_headlines_netlists_and_speedup() {
        let dir = scratch("ab");
        std::fs::write(
            dir.join("BENCH_8.json"),
            r#"{"benchmark":"sat_incremental","seed":"0xda7e2020","netlists":[
                {"name":"a","speedup":1.5},{"name":"b","speedup":23.7}]}"#,
        )
        .unwrap();
        let rows = collect(&dir).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].headline.contains("2 netlists"), "{rows:?}");
        assert!(rows[0].headline.contains("max speedup 23.70x"), "{rows:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_benchmark_files_fail_loudly() {
        let dir = scratch("corrupt");
        std::fs::write(dir.join("BENCH_3.json"), "{not json").unwrap();
        let err = collect(&dir).unwrap_err();
        assert!(err.contains("BENCH_3.json"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
