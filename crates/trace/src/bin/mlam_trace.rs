//! `mlam-trace` — post-hoc analysis of `--json <dir>` run output.
//!
//! ```text
//! mlam-trace export  <run-dir|events.jsonl> [-o trace.json]
//! mlam-trace profile <run-dir>
//! mlam-trace compare <baseline-dir> <current-dir>
//!                    [--threshold 0.2] [--min-wall-ms 100] [--warn-only]
//!                    [--ignore-counter <prefix>]... [--json]
//! mlam-trace bench   <run-dir> [-o BENCH.json]
//! mlam-trace bench-history [<dir>]
//! mlam-trace curves  <run-dir> [--csv] [-o file.csv]
//! mlam-trace curves  <baseline-dir> <current-dir>
//!                    [--query-threshold 0.1] [--warn-only]
//! ```
//!
//! Exit codes: `0` clean, `1` wall-clock regression beyond the
//! threshold (suppressed by `--warn-only`), `2` correctness-counter
//! drift or structural mismatch (never suppressed), `64` usage or I/O
//! error.

use mlam_trace::{bench_history, bench_json, chrome, compare, curves, profile, RunData};
use std::path::{Path, PathBuf};

const EXIT_OK: i32 = 0;
const EXIT_WALL_REGRESSION: i32 = 1;
const EXIT_COUNTER_DRIFT: i32 = 2;
const EXIT_USAGE: i32 = 64;

const USAGE: &str = "mlam-trace: turn telemetry run output into profiles and diffs

USAGE:
    mlam-trace export  <run-dir|events.jsonl> [-o <trace.json>]
        Convert span events to Chrome Trace Format (open in Perfetto
        or chrome://tracing). Default output: <run-dir>/trace.json.

    mlam-trace profile <run-dir>
        Print the inclusive/self-time span tree with call counts and
        p50/p95 latencies, siblings sorted by self time.

    mlam-trace compare <baseline-dir> <current-dir>
               [--threshold <ratio>] [--min-wall-ms <ms>] [--warn-only]
               [--ignore-counter <prefix>]... [--json]
        Diff two runs. Correctness counters must be bit-identical
        (exit 2 on drift, never suppressed); wall-clock regressions
        beyond the threshold (default 0.2 = +20%, noise floor
        --min-wall-ms, default 100) exit 1 unless --warn-only.
        --ignore-counter (repeatable) excludes counters whose name
        starts with the prefix from the drift check — for deliberate
        A/B runs whose path-attribution counters differ by design
        (e.g. puf.batch. between the scalar and bit-sliced CRP paths).
        --json replaces the table with a machine-readable payload
        (verdict, per-counter deltas, wall rows) whose exit_code field
        mirrors the process exit code.

    mlam-trace bench   <run-dir> [-o <BENCH.json>]
        Emit the perf-trajectory record: per experiment
        {name, wall_ns, queries, sat_conflicts}. Default: stdout.

    mlam-trace bench-history [<dir>]
        Merge every BENCH_<n>.json under <dir> (default: .) into one
        index-ordered table — the repo's perf trajectory across PRs,
        whatever schema each benchmark used.

    mlam-trace curves <run-dir> [--csv] [-o <file>]
        Summarize the run's learning curves (curves.jsonl): checkpoint
        counts, final query budgets, accuracy endpoints. --csv emits
        series,label,iteration,queries,raw_reads,train_acc,holdout_acc
        rows instead, for accuracy-vs-queries plots (default: stdout).

    mlam-trace curves <baseline-dir> <current-dir>
               [--query-threshold <ratio>] [--warn-only]
        Diff two runs' learning curves. Series sets, checkpoint
        schedules and final accuracies must match (exit 2 on drift,
        never suppressed); reaching the same final accuracy with more
        than the threshold's extra queries (default 0.1 = +10%) exits
        1 unless --warn-only.
";

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("export") => cmd_export(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("bench-history") => cmd_bench_history(&args[1..]),
        Some("curves") => cmd_curves(&args[1..]),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            EXIT_OK
        }
        Some(other) => {
            eprintln!("mlam-trace: unknown subcommand '{other}'\n\n{USAGE}");
            EXIT_USAGE
        }
        None => {
            eprint!("{USAGE}");
            EXIT_USAGE
        }
    }
}

/// Splits `args` into positionals and `-o <path>`, rejecting anything
/// else not listed in `flags`/`valued`.
struct Parsed {
    positionals: Vec<String>,
    output: Option<PathBuf>,
    threshold: f64,
    min_wall_ms: u64,
    warn_only: bool,
    ignore_counters: Vec<String>,
    json: bool,
}

fn parse(args: &[String], allow_compare_flags: bool) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        positionals: Vec::new(),
        output: None,
        threshold: 0.20,
        min_wall_ms: 100,
        warn_only: false,
        ignore_counters: Vec::new(),
        json: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-o" | "--output" => {
                let value = iter.next().ok_or("missing value for -o/--output")?;
                parsed.output = Some(PathBuf::from(value));
            }
            "--threshold" if allow_compare_flags => {
                let value = iter.next().ok_or("missing value for --threshold")?;
                parsed.threshold = value
                    .parse()
                    .map_err(|e| format!("bad --threshold '{value}': {e}"))?;
            }
            "--min-wall-ms" if allow_compare_flags => {
                let value = iter.next().ok_or("missing value for --min-wall-ms")?;
                parsed.min_wall_ms = value
                    .parse()
                    .map_err(|e| format!("bad --min-wall-ms '{value}': {e}"))?;
            }
            "--warn-only" if allow_compare_flags => parsed.warn_only = true,
            "--json" if allow_compare_flags => parsed.json = true,
            "--ignore-counter" if allow_compare_flags => {
                let value = iter.next().ok_or("missing value for --ignore-counter")?;
                parsed.ignore_counters.push(value.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag '{other}'"));
            }
            _ => parsed.positionals.push(arg.clone()),
        }
    }
    Ok(parsed)
}

fn usage_error(message: impl std::fmt::Display) -> i32 {
    eprintln!("mlam-trace: {message}");
    eprintln!("(run 'mlam-trace --help' for usage)");
    EXIT_USAGE
}

fn cmd_export(args: &[String]) -> i32 {
    let parsed = match parse(args, false) {
        Ok(p) => p,
        Err(e) => return usage_error(e),
    };
    let [input] = parsed.positionals.as_slice() else {
        return usage_error("export takes exactly one run directory (or events.jsonl)");
    };
    let run = match RunData::load(input) {
        Ok(run) => run,
        Err(e) => return usage_error(e),
    };
    if run.events.is_empty() {
        return usage_error(format!("no span events found under {input}"));
    }
    let trace = chrome::export(&run.events);
    let json = match chrome::to_json(&trace) {
        Ok(json) => json,
        Err(e) => return usage_error(e),
    };
    let output = parsed.output.unwrap_or_else(|| run.dir.join("trace.json"));
    if let Err(e) = std::fs::write(&output, json) {
        return usage_error(format!("cannot write {}: {e}", output.display()));
    }
    println!(
        "wrote {} ({} events) — open in https://ui.perfetto.dev or chrome://tracing",
        output.display(),
        trace.traceEvents.len()
    );
    EXIT_OK
}

fn cmd_profile(args: &[String]) -> i32 {
    let parsed = match parse(args, false) {
        Ok(p) => p,
        Err(e) => return usage_error(e),
    };
    let [input] = parsed.positionals.as_slice() else {
        return usage_error("profile takes exactly one run directory");
    };
    let run = match RunData::load(input) {
        Ok(run) => run,
        Err(e) => return usage_error(e),
    };
    let root = profile::span_tree(&run.events);
    print!("{}", profile::render(&root, &run.histograms));
    EXIT_OK
}

fn cmd_compare(args: &[String]) -> i32 {
    let parsed = match parse(args, true) {
        Ok(p) => p,
        Err(e) => return usage_error(e),
    };
    let [baseline_dir, current_dir] = parsed.positionals.as_slice() else {
        return usage_error("compare takes exactly two run directories");
    };
    let baseline = match RunData::load(baseline_dir) {
        Ok(run) => run,
        Err(e) => return usage_error(e),
    };
    let current = match RunData::load(current_dir) {
        Ok(run) => run,
        Err(e) => return usage_error(e),
    };
    let (Some(base_manifest), Some(cur_manifest)) = (&baseline.manifest, &current.manifest) else {
        return usage_error("compare needs a manifest.json in both run directories");
    };
    let options = compare::CompareOptions {
        threshold: parsed.threshold,
        min_wall_s: parsed.min_wall_ms as f64 / 1000.0,
        ignore_counters: parsed.ignore_counters,
    };
    let mut report = compare::compare(base_manifest, cur_manifest, &options);
    report.span_notes = compare::span_movers(&baseline.histograms, &current.histograms, &options);
    // The machine verdict is authoritative for the exit code in both
    // output modes; the stderr notes stay on for scripts that only
    // capture stdout.
    let machine = report.machine(parsed.warn_only);
    debug_assert!(matches!(
        machine.exit_code,
        EXIT_OK | EXIT_WALL_REGRESSION | EXIT_COUNTER_DRIFT
    ));
    if parsed.json {
        match serde_json::to_string_pretty(&machine) {
            Ok(json) => println!("{json}"),
            Err(e) => return usage_error(e),
        }
    } else {
        print!("{}", report.render());
    }
    match machine.verdict.as_str() {
        "counter-drift" => {
            eprintln!(
                "mlam-trace: counter drift — the runs differ behaviorally, not just in speed"
            );
        }
        "wall-regression" if parsed.warn_only => {
            eprintln!("mlam-trace: wall-clock regression (suppressed by --warn-only)");
        }
        "wall-regression" => {
            eprintln!(
                "mlam-trace: wall-clock regression beyond +{:.0}%",
                options.threshold * 100.0
            );
        }
        _ => {}
    }
    machine.exit_code
}

fn cmd_bench_history(args: &[String]) -> i32 {
    let parsed = match parse(args, false) {
        Ok(p) => p,
        Err(e) => return usage_error(e),
    };
    let dir = match parsed.positionals.as_slice() {
        [] => PathBuf::from("."),
        [dir] => PathBuf::from(dir),
        _ => return usage_error("bench-history takes at most one directory"),
    };
    let rows = match bench_history::collect(&dir) {
        Ok(rows) => rows,
        Err(e) => return usage_error(e),
    };
    if rows.is_empty() {
        return usage_error(format!("no BENCH_<n>.json files under {}", dir.display()));
    }
    print!("{}", bench_history::render(&rows));
    EXIT_OK
}

fn cmd_curves(args: &[String]) -> i32 {
    // Own flag loop: `curves` mixes export flags (--csv/-o) with
    // compare flags (--query-threshold/--warn-only), unlike the
    // shared parser's split.
    let mut positionals: Vec<String> = Vec::new();
    let mut csv = false;
    let mut output: Option<PathBuf> = None;
    let mut warn_only = false;
    let mut options = curves::CurveCompareOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--csv" => csv = true,
            "-o" | "--output" => {
                let Some(value) = iter.next() else {
                    return usage_error("missing value for -o/--output");
                };
                output = Some(PathBuf::from(value));
            }
            "--warn-only" => warn_only = true,
            "--query-threshold" => {
                let Some(value) = iter.next() else {
                    return usage_error("missing value for --query-threshold");
                };
                options.query_threshold = match value.parse() {
                    Ok(v) => v,
                    Err(e) => return usage_error(format!("bad --query-threshold '{value}': {e}")),
                };
            }
            other if other.starts_with('-') => {
                return usage_error(format!("unknown flag '{other}'"));
            }
            _ => positionals.push(arg.clone()),
        }
    }
    match positionals.as_slice() {
        [input] => {
            let series = match curves::load(Path::new(input)) {
                Ok(series) => series,
                Err(e) => return usage_error(e),
            };
            let rendered = if csv {
                curves::to_csv(&series)
            } else {
                curves::summarize(&series)
            };
            match output {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, rendered) {
                        return usage_error(format!("cannot write {}: {e}", path.display()));
                    }
                    println!("wrote {} ({} series)", path.display(), series.len());
                }
                None => print!("{rendered}"),
            }
            EXIT_OK
        }
        [baseline_dir, current_dir] => {
            let baseline = match curves::load(Path::new(baseline_dir)) {
                Ok(series) => series,
                Err(e) => return usage_error(e),
            };
            let current = match curves::load(Path::new(current_dir)) {
                Ok(series) => series,
                Err(e) => return usage_error(e),
            };
            let report = curves::compare(&baseline, &current, &options);
            print!("{}", report.render());
            match report.verdict() {
                "curve-drift" => {
                    eprintln!("mlam-trace: learning-curve drift — the runs differ behaviorally");
                }
                "query-regression" if warn_only => {
                    eprintln!(
                        "mlam-trace: query-efficiency regression (suppressed by --warn-only)"
                    );
                }
                "query-regression" => {
                    eprintln!(
                        "mlam-trace: query-efficiency regression beyond +{:.0}%",
                        options.query_threshold * 100.0
                    );
                }
                _ => {}
            }
            let exit = report.exit_code(warn_only);
            debug_assert!(matches!(
                exit,
                EXIT_OK | EXIT_WALL_REGRESSION | EXIT_COUNTER_DRIFT
            ));
            exit
        }
        _ => usage_error("curves takes one run directory (summary/CSV) or two (compare)"),
    }
}

fn cmd_bench(args: &[String]) -> i32 {
    let parsed = match parse(args, false) {
        Ok(p) => p,
        Err(e) => return usage_error(e),
    };
    let [input] = parsed.positionals.as_slice() else {
        return usage_error("bench takes exactly one run directory");
    };
    let run = match RunData::load(input) {
        Ok(run) => run,
        Err(e) => return usage_error(e),
    };
    let Some(manifest) = &run.manifest else {
        return usage_error(format!("no manifest.json under {input}"));
    };
    let entries = bench_json::bench_entries(manifest);
    let json = match bench_json::to_json(&entries) {
        Ok(json) => json,
        Err(e) => return usage_error(e),
    };
    match parsed.output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                return usage_error(format!("cannot write {}: {e}", path.display()));
            }
            println!("wrote {} ({} experiments)", path.display(), entries.len());
        }
        None => print!("{json}"),
    }
    EXIT_OK
}
