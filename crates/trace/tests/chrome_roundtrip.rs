//! End-to-end Chrome Trace Format round trip: run a real nested-span
//! workload through a `JsonlSink`, export the resulting `events.jsonl`
//! to Chrome Trace Format, deserialize it back with serde, and assert
//! that B/E pairing, per-track timestamp monotonicity, and the
//! parent/child structure all survive.

use mlam_trace::chrome::{self, ChromeTrace};
use mlam_trace::{profile, RunData};
use std::collections::HashMap;

#[test]
fn nested_span_workload_round_trips_through_chrome_trace() {
    let dir = std::env::temp_dir().join(format!("mlam_chrome_rt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let events_path = dir.join("events.jsonl");
    mlam_telemetry::add_sink(Box::new(
        mlam_telemetry::JsonlSink::create(&events_path).unwrap(),
    ));

    // A three-deep workload with repeated siblings and attrs.
    {
        let _run = mlam_telemetry::span("rt.run").attr("quick", true);
        for round in 0..3 {
            let _outer = mlam_telemetry::span("rt.outer").attr("round", round);
            {
                let _inner = mlam_telemetry::span("rt.inner");
            }
            {
                let _inner = mlam_telemetry::span("rt.inner");
            }
        }
    }

    // Export and round-trip through serde.
    let run = RunData::load(&dir).unwrap();
    assert_eq!(
        run.events.len(),
        2 * (1 + 3 + 6),
        "start+end for run, 3 outers, 6 inners"
    );
    let trace = chrome::export(&run.events);
    let json = chrome::to_json(&trace).unwrap();
    std::fs::write(dir.join("trace.json"), &json).unwrap();
    let back: ChromeTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(back, trace, "serde round trip is lossless");

    // Structural validation, Perfetto-style: per (pid, tid) track, in
    // array order, B/E events must form a well-nested bracket sequence
    // with monotone non-decreasing timestamps.
    let mut stacks: HashMap<(u64, u64), Vec<&str>> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();
    let mut max_depth = 0usize;
    for event in &back.traceEvents {
        let track = (event.pid, event.tid);
        let prev = last_ts.insert(track, event.ts).unwrap_or(f64::MIN);
        assert!(
            event.ts >= prev,
            "timestamps regress on track {track:?}: {prev} -> {}",
            event.ts
        );
        let stack = stacks.entry(track).or_default();
        match event.ph.as_str() {
            "B" => {
                stack.push(&event.name);
                max_depth = max_depth.max(stack.len());
            }
            "E" => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("E event for '{}' with no open B on {track:?}", event.name)
                });
                assert_eq!(open, event.name, "B/E pairing is name-consistent");
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    for (track, stack) in &stacks {
        assert!(
            stack.is_empty(),
            "unclosed B events on {track:?}: {stack:?}"
        );
    }
    assert_eq!(max_depth, 3, "rt.run > rt.outer > rt.inner nesting");

    // Parent/child links survive in args: every rt.inner B names an
    // rt.outer span id as its parent, and attrs ride along.
    let id_to_name: HashMap<&str, &str> = back
        .traceEvents
        .iter()
        .filter(|e| e.ph == "B")
        .map(|e| (e.args["span_id"].as_str(), e.name.as_str()))
        .collect();
    let mut inner_b = 0;
    for event in back.traceEvents.iter().filter(|e| e.ph == "B") {
        match event.name.as_str() {
            "rt.inner" => {
                inner_b += 1;
                let parent = event.args["parent_span_id"].as_str();
                assert_eq!(id_to_name[parent], "rt.outer");
            }
            "rt.outer" => {
                let parent = event.args["parent_span_id"].as_str();
                assert_eq!(id_to_name[parent], "rt.run");
                assert!(event.args.contains_key("round"), "attrs exported to args");
            }
            "rt.run" => {
                assert_eq!(event.args.get("quick").map(String::as_str), Some("true"));
                assert!(!event.args.contains_key("parent_span_id"));
            }
            _ => {}
        }
    }
    assert_eq!(inner_b, 6);

    // The same stream feeds the profile tree: 6 rt.inner calls under
    // rt.outer under rt.run.
    let root = profile::span_tree(&run.events);
    let run_node = root.children.iter().find(|c| c.name == "rt.run").unwrap();
    let outer = &run_node.children[0];
    assert_eq!(outer.name, "rt.outer");
    assert_eq!(outer.count, 3);
    assert_eq!(outer.children[0].name, "rt.inner");
    assert_eq!(outer.children[0].count, 6);

    let _ = std::fs::remove_dir_all(&dir);
}
