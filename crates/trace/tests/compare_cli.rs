//! Exit-code contract of the `mlam-trace` binary: clean same-seed runs
//! exit 0, a slowed run exits 1 (0 under `--warn-only`), counter drift
//! exits 2 even under `--warn-only`, and usage errors exit 64.

use mlam_telemetry::{ExperimentRecord, RunManifest};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn write_run(dir: &Path, manifest: &RunManifest) {
    std::fs::create_dir_all(dir).unwrap();
    let json = serde_json::to_string_pretty(manifest).unwrap();
    std::fs::write(dir.join("manifest.json"), json + "\n").unwrap();
}

fn quick_manifest(tweak_seconds: f64, tweak_queries: u64) -> RunManifest {
    let mut manifest = RunManifest::new("repro_all", 0xDA7E_2020, true);
    for (name, seconds, queries, conflicts) in
        [("table1", 1.0, 2000u64, 0u64), ("locking", 2.0, 150, 420)]
    {
        let mut counters = BTreeMap::new();
        counters.insert(
            "oracle.example_queries".to_string(),
            queries + tweak_queries,
        );
        counters.insert("sat.conflicts".to_string(), conflicts);
        manifest.experiments.push(ExperimentRecord {
            name: name.to_string(),
            seconds: seconds * tweak_seconds,
            degraded: false,
            counters,
        });
        manifest.total_seconds += seconds * tweak_seconds;
    }
    manifest
}

fn run_compare(baseline: &Path, current: &Path, extra: &[&str]) -> (i32, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_mlam-trace"))
        .arg("compare")
        .arg(baseline)
        .arg(current)
        .args(extra)
        .output()
        .expect("spawn mlam-trace");
    (
        output.status.code().expect("exit code"),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlam_compare_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn compare_exit_codes_follow_the_contract() {
    let base_dir = scratch();
    let baseline = base_dir.join("baseline");
    write_run(&baseline, &quick_manifest(1.0, 0));

    // Same counters, wall within noise: clean.
    let same = base_dir.join("same");
    write_run(&same, &quick_manifest(1.05, 0));
    let (code, stdout, _) = run_compare(&baseline, &same, &[]);
    assert_eq!(code, 0, "same-seed runs with matching counters: {stdout}");
    assert!(stdout.contains("bit-identical"), "{stdout}");

    // A synthetic 3x slowdown: wall regression, exit 1.
    let slow = base_dir.join("slow");
    write_run(&slow, &quick_manifest(3.0, 0));
    let (code, stdout, stderr) = run_compare(&baseline, &slow, &[]);
    assert_eq!(code, 1, "slowed run must fail: {stdout}{stderr}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    // --warn-only downgrades the wall regression to exit 0.
    let (code, _, stderr) = run_compare(&baseline, &slow, &["--warn-only"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("suppressed"), "{stderr}");

    // A generous threshold also accepts the slowdown.
    let (code, _, _) = run_compare(&baseline, &slow, &["--threshold", "5.0"]);
    assert_eq!(code, 0);

    // Counter drift: exit 2, even under --warn-only.
    let drift = base_dir.join("drift");
    write_run(&drift, &quick_manifest(1.0, 1));
    let (code, stdout, _) = run_compare(&baseline, &drift, &[]);
    assert_eq!(code, 2, "{stdout}");
    assert!(stdout.contains("counter drift"), "{stdout}");
    assert!(stdout.contains("oracle.example_queries"), "{stdout}");
    let (code, _, _) = run_compare(&baseline, &drift, &["--warn-only"]);
    assert_eq!(code, 2, "--warn-only never hides counter drift");

    // Missing manifest: usage error.
    let empty = base_dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let (code, _, stderr) = run_compare(&baseline, &empty, &[]);
    assert_eq!(code, 64, "{stderr}");
    assert!(stderr.contains("manifest.json"), "{stderr}");

    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn ignore_counter_prefixes_exclude_path_counters_from_drift() {
    let base_dir = std::env::temp_dir().join(format!("mlam_compare_ignore_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base_dir);

    // Two runs identical except for path-attribution counters: the
    // scalar run charges `puf.batch.scalar_evals`, the bit-sliced one
    // `puf.batch.bitsliced_evals`.
    let make = |path_counter: &str| {
        let mut manifest = RunManifest::new("crp_throughput", 0xDA7E_2020, true);
        let mut counters = BTreeMap::new();
        counters.insert("bench.crp.response_ones".to_string(), 512u64);
        counters.insert(path_counter.to_string(), 4096u64);
        manifest.experiments.push(ExperimentRecord {
            name: "collect".to_string(),
            seconds: 1.0,
            degraded: false,
            counters,
        });
        manifest.total_seconds += 1.0;
        manifest
    };
    let scalar = base_dir.join("scalar");
    write_run(&scalar, &make("puf.batch.scalar_evals"));
    let batch = base_dir.join("batch");
    write_run(&batch, &make("puf.batch.bitsliced_evals"));

    // Without the flag the path counters count as behavioral drift.
    let (code, stdout, _) = run_compare(&scalar, &batch, &[]);
    assert_eq!(code, 2, "{stdout}");
    assert!(stdout.contains("puf.batch."), "{stdout}");

    // With the prefix excluded, the remaining counters are identical.
    let (code, stdout, _) = run_compare(&scalar, &batch, &["--ignore-counter", "puf.batch."]);
    assert_eq!(code, 0, "{stdout}");

    // The exclusion is surgical: drift in a behavior counter still
    // fails even with the prefix list active.
    let mut drifted = make("puf.batch.bitsliced_evals");
    *drifted.experiments[0]
        .counters
        .get_mut("bench.crp.response_ones")
        .unwrap() += 1;
    let drift_dir = base_dir.join("drift");
    write_run(&drift_dir, &drifted);
    let (code, stdout, _) = run_compare(&scalar, &drift_dir, &["--ignore-counter", "puf.batch."]);
    assert_eq!(code, 2, "{stdout}");
    assert!(stdout.contains("bench.crp.response_ones"), "{stdout}");

    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn bench_subcommand_emits_the_trajectory_schema() {
    let base_dir = std::env::temp_dir().join(format!("mlam_bench_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base_dir);
    let run_dir = base_dir.join("run");
    write_run(&run_dir, &quick_manifest(1.0, 0));
    let out_path = base_dir.join("BENCH.json");
    let output = Command::new(env!("CARGO_BIN_EXE_mlam-trace"))
        .args(["bench"])
        .arg(&run_dir)
        .arg("-o")
        .arg(&out_path)
        .output()
        .expect("spawn mlam-trace");
    assert_eq!(output.status.code(), Some(0));
    let text = std::fs::read_to_string(&out_path).unwrap();
    let entries: Vec<mlam_trace::bench_json::BenchEntry> = serde_json::from_str(&text).unwrap();
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].name, "table1");
    assert_eq!(entries[0].wall_ns, 1_000_000_000);
    assert_eq!(entries[0].queries, 2000);
    assert_eq!(entries[1].sat_conflicts, 420);
    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn compare_json_mirrors_the_exit_code_in_the_payload() {
    let base_dir = std::env::temp_dir().join(format!("mlam_compare_json_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base_dir);
    let baseline = base_dir.join("baseline");
    write_run(&baseline, &quick_manifest(1.0, 0));

    let parse = |stdout: &str| -> mlam_trace::compare::MachineReport {
        serde_json::from_str(stdout).expect("--json emits a parseable payload")
    };

    // Clean: verdict + exit_code 0, and no human-readable table.
    let same = base_dir.join("same");
    write_run(&same, &quick_manifest(1.05, 0));
    let (code, stdout, _) = run_compare(&baseline, &same, &["--json"]);
    assert_eq!(code, 0, "{stdout}");
    let report = parse(&stdout);
    assert_eq!(report.verdict, "clean");
    assert_eq!(report.exit_code, 0);
    assert!(report.drift.is_empty());
    // Two experiments plus the "(total)" row.
    assert_eq!(report.wall.len(), 3);
    assert!(!stdout.contains("experiment "), "no table in --json mode");

    // Counter drift: exit 2 mirrored, per-counter deltas present.
    let drift = base_dir.join("drift");
    write_run(&drift, &quick_manifest(1.0, 1));
    let (code, stdout, _) = run_compare(&baseline, &drift, &["--json"]);
    assert_eq!(code, 2, "{stdout}");
    let report = parse(&stdout);
    assert_eq!(report.verdict, "counter-drift");
    assert_eq!(report.exit_code, 2);
    assert_eq!(report.drift.len(), 2, "one drifting counter per experiment");
    assert_eq!(report.drift[0].counter, "oracle.example_queries");
    assert_eq!(report.drift[0].baseline + 1, report.drift[0].current);

    // --warn-only: the process exits 0 and the payload says so, while
    // the verdict still names the wall regression.
    let slow = base_dir.join("slow");
    write_run(&slow, &quick_manifest(3.0, 0));
    let (code, stdout, _) = run_compare(&baseline, &slow, &["--json", "--warn-only"]);
    assert_eq!(code, 0, "{stdout}");
    let report = parse(&stdout);
    assert_eq!(report.verdict, "wall-regression");
    assert_eq!(report.exit_code, 0);
    assert!(report.warn_only);

    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn bench_history_merges_checked_in_benchmarks_into_one_table() {
    let base_dir = std::env::temp_dir().join(format!("mlam_hist_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base_dir);
    std::fs::create_dir_all(&base_dir).unwrap();
    std::fs::write(
        base_dir.join("BENCH_2.json"),
        r#"[{"name":"table1","wall_ns":1000000000,"queries":2000,"sat_conflicts":7}]"#,
    )
    .unwrap();
    std::fs::write(
        base_dir.join("BENCH_6.json"),
        r#"{"benchmark":"monitor overhead","trials":3,"results":[{},{}],"overhead_pct":0.8}"#,
    )
    .unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_mlam-trace"))
        .arg("bench-history")
        .arg(&base_dir)
        .output()
        .expect("spawn mlam-trace");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let first = stdout.find("BENCH_2.json").expect("array row present");
    let second = stdout.find("BENCH_6.json").expect("object row present");
    assert!(first < second, "rows must be index-ordered:\n{stdout}");
    assert!(stdout.contains("1 experiments"), "{stdout}");
    assert!(stdout.contains("monitor overhead"), "{stdout}");

    // An empty directory is a usage error, not an empty table.
    let empty = base_dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let output = Command::new(env!("CARGO_BIN_EXE_mlam-trace"))
        .arg("bench-history")
        .arg(&empty)
        .output()
        .expect("spawn mlam-trace");
    assert_eq!(output.status.code(), Some(64));

    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let output = Command::new(env!("CARGO_BIN_EXE_mlam-trace"))
        .arg("frobnicate")
        .output()
        .expect("spawn mlam-trace");
    assert_eq!(output.status.code(), Some(64));
}
