//! Embeds the git revision into the monitor so the Prometheus
//! `mlam_build_info` gauge can attribute scrapes to an exact build.
//! Falls back to "unknown" outside a git checkout (e.g. a source
//! tarball) — the build must never fail over missing VCS metadata.

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=MLAM_GIT_HASH={hash}");
    // Re-run when HEAD moves so the hash stays honest.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
