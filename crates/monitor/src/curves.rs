//! Live learning-curve state behind the `/curves` endpoint.
//!
//! [`LiveCurves`] is a [`CurveSink`]: the bench session registers it
//! alongside the `curves.jsonl` recorder, so every checkpoint a
//! training loop emits is immediately visible to a scraper. Like the
//! rest of the monitor, the state lives in a crate-owned `Mutex` —
//! never the telemetry registry — so serving `/curves` cannot perturb
//! the deterministic run artifacts (see the crate-level determinism
//! firewall notes).

use mlam_telemetry::{CurvePoint, CurveSink};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Cap on buffered points per series: enough for any log-spaced
/// schedule (2^1024 iterations will not happen), a bound in case a
/// caller checkpoints every iteration of a very long loop.
const MAX_POINTS_PER_SERIES: usize = 1024;

/// One point in the `/curves` JSON payload.
#[derive(Clone, Debug, Serialize)]
pub struct LiveCurvePoint {
    /// Emitting loop (`perceptron`, `sat_attack`, …).
    pub label: String,
    /// 1-based iteration within the loop.
    pub iteration: u64,
    /// Exact logical queries spent at this checkpoint.
    pub queries: u64,
    /// Exact raw oracle reads at this checkpoint.
    pub raw_reads: u64,
    /// Training accuracy in `[0, 1]`.
    pub train_acc: f64,
    /// Holdout accuracy, when the loop measured one.
    pub holdout_acc: Option<f64>,
}

/// One series in the `/curves` JSON payload.
#[derive(Clone, Debug, Serialize)]
pub struct LiveCurveSeries {
    /// Series (experiment) name.
    pub name: String,
    /// Total points received, including any dropped by the buffer cap.
    pub points_total: u64,
    /// The buffered points, oldest first.
    pub points: Vec<LiveCurvePoint>,
}

/// The full `/curves` payload.
#[derive(Clone, Debug, Serialize)]
pub struct LiveCurvesSnapshot {
    /// Every series seen so far, in name order.
    pub series: Vec<LiveCurveSeries>,
}

struct SeriesState {
    points_total: u64,
    points: Vec<LiveCurvePoint>,
}

/// Crate-owned live mirror of curve checkpoints, fed through the
/// [`CurveSink`] the bench session installs.
#[derive(Default)]
pub struct LiveCurves {
    series: Mutex<BTreeMap<String, SeriesState>>,
}

impl LiveCurves {
    /// An empty store.
    pub fn new() -> LiveCurves {
        LiveCurves::default()
    }

    /// A point-in-time copy of everything received, series in name
    /// order, points in emission order.
    pub fn snapshot(&self) -> LiveCurvesSnapshot {
        let series = self.series.lock().expect("live curves poisoned");
        LiveCurvesSnapshot {
            series: series
                .iter()
                .map(|(name, state)| LiveCurveSeries {
                    name: name.clone(),
                    points_total: state.points_total,
                    points: state.points.clone(),
                })
                .collect(),
        }
    }
}

impl CurveSink for LiveCurves {
    fn on_point(&self, series: &str, point: &CurvePoint) {
        let mut map = self.series.lock().expect("live curves poisoned");
        let state = map.entry(series.to_owned()).or_insert_with(|| SeriesState {
            points_total: 0,
            points: Vec::new(),
        });
        state.points_total += 1;
        if state.points.len() < MAX_POINTS_PER_SERIES {
            state.points.push(LiveCurvePoint {
                label: point.label.clone(),
                iteration: point.iteration,
                queries: point.queries,
                raw_reads: point.raw_reads,
                train_acc: point.train_acc,
                holdout_acc: point.holdout_acc,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    fn point(iteration: u64, queries: u64) -> CurvePoint {
        CurvePoint {
            label: "perceptron".to_string(),
            iteration,
            queries,
            raw_reads: queries,
            train_acc: 0.5,
            holdout_acc: None,
            counters: Map::new(),
        }
    }

    #[test]
    fn snapshots_reflect_points_in_order() {
        let live = LiveCurves::new();
        live.on_point("exp_b", &point(1, 10));
        live.on_point("exp_a", &point(1, 5));
        live.on_point("exp_b", &point(2, 20));
        let snap = live.snapshot();
        assert_eq!(snap.series.len(), 2);
        assert_eq!(snap.series[0].name, "exp_a");
        assert_eq!(snap.series[1].name, "exp_b");
        assert_eq!(snap.series[1].points_total, 2);
        let iters: Vec<u64> = snap.series[1].points.iter().map(|p| p.iteration).collect();
        assert_eq!(iters, vec![1, 2]);
    }

    #[test]
    fn buffer_caps_but_counts_everything() {
        let live = LiveCurves::new();
        for i in 0..(MAX_POINTS_PER_SERIES as u64 + 10) {
            live.on_point("big", &point(i + 1, i));
        }
        let snap = live.snapshot();
        assert_eq!(snap.series[0].points.len(), MAX_POINTS_PER_SERIES);
        assert_eq!(
            snap.series[0].points_total,
            MAX_POINTS_PER_SERIES as u64 + 10
        );
    }
}
