//! Live observability for long-running mlam workloads.
//!
//! Everything the workspace records today is post-hoc: counters and
//! spans land in `metrics.jsonl`/`events.jsonl` when a run finishes
//! and `mlam-trace` analyzes them offline. This crate makes the same
//! telemetry observable *while the run executes*:
//!
//! - [`sampler`] — a background thread that takes periodic
//!   [`mlam_telemetry::MetricsSnapshot`]s and computes per-counter
//!   rates. The hot path is untouched: sampling only *reads* the
//!   already-lock-free atomics, on its own thread.
//! - [`http`] — a zero-dependency HTTP server (std `TcpListener`, the
//!   same no-deps discipline as the rest of the workspace) exposing
//!   `/metrics` in Prometheus text exposition format, `/progress` as
//!   JSON, and `/healthz`.
//! - [`progress`] — experiments completed/total, throughput and ETA,
//!   fed by the bench session as checkpoints land, plus the stderr
//!   reporter behind `--progress`.
//! - [`alloc`] — an opt-in tracking global allocator feeding
//!   current/peak heap gauges.
//! - [`spans`] — an event sink tracking in-flight spans so `/metrics`
//!   can show what the run is doing *right now*.
//! - [`curves`] — a live mirror of learning-curve checkpoints
//!   (accuracy vs. exact queries) behind the `/curves` JSON endpoint,
//!   fed by the same [`mlam_telemetry::CurveSink`] fan-out that writes
//!   `curves.jsonl`.
//!
//! # The determinism firewall
//!
//! The workspace's core contract is that same-seed runs are
//! bit-identical — `metrics.jsonl` included — and CI diffs runs with
//! `mlam-trace compare`. Monitoring must therefore never write into
//! the telemetry registry: every monitor-internal statistic (scrape
//! counts, sampler ticks, progress, allocator bytes, in-flight spans)
//! lives in plain atomics owned by this crate and is exposed *only*
//! through the HTTP endpoint. A run with `--monitor` enabled produces
//! byte-identical stdout and bit-identical `metrics.jsonl` versus a
//! run without it. See `OBSERVABILITY.md`.

#![warn(missing_docs)]

pub mod alloc;
pub mod curves;
pub mod http;
pub mod progress;
pub mod prometheus;
pub mod sampler;
pub mod spans;

pub use curves::{LiveCurves, LiveCurvesSnapshot};
pub use http::{Monitor, MonitorHandle};
pub use progress::{Progress, ProgressReporter, ProgressSnapshot};
pub use sampler::{Sampler, SamplerState};
pub use spans::LiveSpanTracker;
