//! Experiment progress: completed/total, throughput and ETA.
//!
//! A [`Progress`] is shared between the run loop (which reports
//! completions as checkpoints land) and the observers: the `/progress`
//! endpoint and the stderr [`ProgressReporter`] behind `--progress`.
//! Counts are plain atomics — progress never touches the telemetry
//! registry, so enabling it cannot perturb `metrics.jsonl` (see the
//! crate-level determinism firewall).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Shared progress state for one run: experiments completed out of a
/// known total, with wall-clock kept since construction.
///
/// The completed count is monotone by construction ([`complete_one`]
/// only increments), which is what lets a scraper assert monotonicity
/// across `/progress` samples.
///
/// [`complete_one`]: Progress::complete_one
pub struct Progress {
    total: AtomicU64,
    completed: AtomicU64,
    started: Instant,
}

impl Progress {
    /// Fresh progress over `total` expected experiments (the total can
    /// grow later via [`Progress::add_total`]).
    pub fn new(total: u64) -> Progress {
        Progress {
            total: AtomicU64::new(total),
            completed: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Raises the expected total by `more` (a session that runs several
    /// batches announces each one as it is scheduled).
    pub fn add_total(&self, more: u64) {
        self.total.fetch_add(more, Ordering::Relaxed);
    }

    /// Records one finished experiment.
    pub fn complete_one(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Experiments finished so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Experiments expected in total.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Wall-clock since this progress was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// A consistent point-in-time view with derived rate and ETA.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let completed = self.completed();
        let total = self.total();
        let elapsed_s = self.elapsed().as_secs_f64();
        let rate = if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        };
        let eta_s = if completed > 0 && total > completed {
            Some((total - completed) as f64 * elapsed_s / completed as f64)
        } else if total == completed && total > 0 {
            Some(0.0)
        } else {
            None
        };
        ProgressSnapshot {
            completed,
            total,
            elapsed_s,
            rate_per_s: rate,
            eta_s,
        }
    }
}

/// A serializable point-in-time view of a [`Progress`] — the payload
/// of the `/progress` endpoint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Experiments finished.
    pub completed: u64,
    /// Experiments expected.
    pub total: u64,
    /// Wall-clock seconds since the run started.
    pub elapsed_s: f64,
    /// Completions per second over the whole run so far.
    pub rate_per_s: f64,
    /// Estimated seconds to completion (`None` until the first
    /// completion makes the rate meaningful).
    pub eta_s: Option<f64>,
}

impl ProgressSnapshot {
    /// One-line human rendering, used for the `--progress` stderr
    /// lines.
    pub fn render(&self) -> String {
        let pct = if self.total > 0 {
            self.completed as f64 / self.total as f64 * 100.0
        } else {
            0.0
        };
        let eta = match self.eta_s {
            Some(eta) => format!("ETA {eta:.1}s"),
            None => "ETA --".to_string(),
        };
        format!(
            "progress {}/{} experiments ({pct:.0}%) · {:.2}/s · {eta}",
            self.completed, self.total, self.rate_per_s
        )
    }
}

/// Background thread printing `mlam: progress …` lines to **stderr**
/// whenever the completed count changes (and once at shutdown), so
/// stdout stays byte-identical with the reporter on or off.
pub struct ProgressReporter {
    // Condvar-paired stop flag: shutdown wakes the thread instead of
    // waiting out a polling period (see the sampler, which does the
    // same).
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ProgressReporter {
    /// Starts the reporter over `progress`, polling every `period`.
    pub fn start(progress: Arc<Progress>, period: Duration) -> ProgressReporter {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop_pair = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("mlam-progress".into())
            .spawn(move || {
                let (flag, wake) = &*stop_pair;
                let mut last_reported = u64::MAX;
                loop {
                    let snap = progress.snapshot();
                    if snap.completed != last_reported {
                        last_reported = snap.completed;
                        eprintln!("mlam: {}", snap.render());
                    }
                    let stopped = flag.lock().expect("stop flag poisoned");
                    if *stopped {
                        // One final line so the terminal ends on the
                        // true completion state.
                        let snap = progress.snapshot();
                        if snap.completed != last_reported {
                            eprintln!("mlam: {}", snap.render());
                        }
                        return;
                    }
                    let _unused = wake
                        .wait_timeout(stopped, period)
                        .expect("stop flag poisoned");
                }
            })
            .expect("spawn progress reporter");
        ProgressReporter {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the reporter and waits for its final line.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let (flag, wake) = &*self.stop;
        *flag.lock().expect("stop flag poisoned") = true;
        wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_monotone_and_snapshot_consistent() {
        let p = Progress::new(4);
        assert_eq!(p.completed(), 0);
        assert_eq!(p.total(), 4);
        assert_eq!(p.snapshot().eta_s, None, "no rate before a completion");
        p.complete_one();
        p.complete_one();
        let snap = p.snapshot();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.total, 4);
        assert!(snap.rate_per_s > 0.0);
        assert!(snap.eta_s.is_some());
        p.add_total(2);
        assert_eq!(p.total(), 6);
    }

    #[test]
    fn finished_run_reports_zero_eta() {
        let p = Progress::new(2);
        p.complete_one();
        p.complete_one();
        assert_eq!(p.snapshot().eta_s, Some(0.0));
    }

    #[test]
    fn snapshot_serializes_and_renders() {
        let snap = ProgressSnapshot {
            completed: 3,
            total: 13,
            elapsed_s: 6.0,
            rate_per_s: 0.5,
            eta_s: Some(20.0),
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: ProgressSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let line = snap.render();
        assert!(line.contains("3/13"), "{line}");
        assert!(line.contains("ETA 20.0s"), "{line}");
    }

    #[test]
    fn reporter_writes_stderr_only_and_shuts_down() {
        let p = Arc::new(Progress::new(1));
        let reporter = ProgressReporter::start(Arc::clone(&p), Duration::from_millis(5));
        p.complete_one();
        std::thread::sleep(Duration::from_millis(20));
        reporter.shutdown();
    }

    #[test]
    fn concurrent_completions_all_land() {
        let p = Arc::new(Progress::new(100));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..25 {
                        p.complete_one();
                    }
                });
            }
        });
        assert_eq!(p.completed(), 100);
    }
}
