//! Opt-in heap accounting: a tracking global allocator.
//!
//! [`TrackingAlloc`] wraps the system allocator and, **only while
//! enabled**, keeps current/peak heap byte counts and alloc/dealloc
//! totals in plain static atomics. Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mlam_monitor::alloc::TrackingAlloc = mlam_monitor::alloc::TrackingAlloc;
//! ```
//!
//! and the accounting itself stays off until [`enable`] runs (the
//! bench session calls it when `--monitor` is given, or set
//! `MLAM_TRACK_ALLOC=1`). Disabled, the only cost per allocation is
//! one relaxed atomic load; enabled, it is two relaxed `fetch_add`s
//! plus a CAS loop that runs only while a new peak is being set.
//!
//! The numbers surface as `mlam_mem_alloc_*` gauges on the `/metrics`
//! endpoint — never in the telemetry registry, so `metrics.jsonl`
//! stays bit-identical whether tracking is on or off (heap traffic is
//! scheduler-dependent and must not enter the determinism contract).
//!
//! Accounting is approximate by design: allocations made before
//! [`enable`] are not known to the tracker, so a free observed while
//! enabled can outweigh tracked allocations — the current counter
//! saturates at zero instead of underflowing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

/// Turns heap accounting on for the rest of the process lifetime.
/// Counting only happens if the binary also installed [`TrackingAlloc`]
/// as its `#[global_allocator]`.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether heap accounting is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Point-in-time heap statistics (zeros until [`enable`] has run under
/// an installed [`TrackingAlloc`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated (tracked allocations only).
    pub current_bytes: u64,
    /// High-water mark of `current_bytes`.
    pub peak_bytes: u64,
    /// Allocations observed.
    pub allocs: u64,
    /// Deallocations observed.
    pub deallocs: u64,
}

/// Reads the current statistics.
pub fn stats() -> AllocStats {
    AllocStats {
        current_bytes: CURRENT.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
    }
}

fn on_alloc(size: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // Raise the peak if we beat it; racing raisers both converge to
    // the max because the CAS re-reads the latest value.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => peak = actual,
        }
    }
}

fn on_dealloc(size: u64) {
    DEALLOCS.fetch_add(1, Ordering::Relaxed);
    // Saturate: frees of allocations made before enable() would
    // otherwise underflow the counter.
    let mut now = CURRENT.load(Ordering::Relaxed);
    loop {
        let next = now.saturating_sub(size);
        match CURRENT.compare_exchange_weak(now, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(actual) => now = actual,
        }
    }
}

/// The tracking allocator: system allocation plus (when enabled)
/// byte/call accounting.
pub struct TrackingAlloc;

// SAFETY: all four methods delegate the actual allocation to `System`
// unchanged; the bookkeeping around it is lock-free atomics and never
// allocates itself.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() && enabled() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if enabled() {
            on_dealloc(layout.size() as u64);
        }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() && enabled() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() && enabled() {
            // Count a realloc as free-then-alloc of the two sizes.
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install TrackingAlloc as its global
    // allocator (that would perturb every other test), so these tests
    // drive the bookkeeping directly.

    #[test]
    fn alloc_dealloc_bookkeeping_balances() {
        on_alloc(1024);
        on_alloc(512);
        let s = stats();
        assert!(s.peak_bytes >= 1536 || s.current_bytes >= 1536 || s.allocs >= 2);
        on_dealloc(512);
        on_dealloc(1024);
        assert!(stats().deallocs >= 2);
    }

    #[test]
    fn dealloc_saturates_at_zero() {
        // Free more than was ever tracked: must not underflow.
        on_dealloc(u64::MAX);
        assert!(stats().current_bytes < u64::MAX / 2);
    }

    #[test]
    fn enable_flag_flips() {
        assert!(!enabled() || enabled()); // readable either way
        enable();
        assert!(enabled());
    }
}
