//! Prometheus text exposition (format version 0.0.4) rendering.
//!
//! Telemetry counters become `counter` series and the log₂-bucketed
//! histograms become native Prometheus `histogram` series with
//! cumulative `le` buckets. Monitor-internal state — progress, heap
//! accounting, in-flight spans, scrape counts — is rendered alongside
//! as gauges under `mlam_monitor_*` / `mlam_mem_*` / `mlam_progress_*`
//! names that exist only in the exposition, never in the registry.
//!
//! Metric names: the registry's dotted names (`oracle.example_queries`)
//! are mapped to `mlam_oracle_example_queries` — `mlam_` prefix, every
//! character outside `[a-zA-Z0-9_:]` replaced by `_`. Registration-time
//! validation (`mlam_telemetry::metrics`) already rejects whitespace,
//! newlines and non-ASCII, so the mapping cannot produce a malformed
//! exposition line.

use crate::alloc::AllocStats;
use crate::progress::ProgressSnapshot;
use mlam_telemetry::metrics::{bucket_upper_bound, HISTOGRAM_BUCKETS};
use mlam_telemetry::{HistogramSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maps a registry name onto a valid Prometheus metric name.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("mlam_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn write_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let prom = metric_name(name);
    let _ = writeln!(out, "# TYPE {prom} histogram");
    let by_index: BTreeMap<u32, u64> = h.buckets.iter().copied().collect();
    let mut cumulative = 0u64;
    for index in 0..HISTOGRAM_BUCKETS as u32 {
        let count = by_index.get(&index).copied().unwrap_or(0);
        if count == 0 {
            continue;
        }
        cumulative += count;
        // The registry bucket `i` holds values < 2^i, i.e. ≤ 2^i − 1,
        // which is exactly Prometheus's inclusive `le` bound.
        match bucket_upper_bound(index as usize) {
            Some(bound) => {
                let _ = writeln!(out, "{prom}_bucket{{le=\"{}\"}} {cumulative}", bound - 1);
            }
            None => {
                // The top bucket has no finite bound; +Inf covers it.
                let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
    }
    if by_index
        .keys()
        .all(|&i| i != (HISTOGRAM_BUCKETS as u32 - 1))
    {
        let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {cumulative}");
    }
    let _ = writeln!(out, "{prom}_sum {}", h.sum);
    let _ = writeln!(out, "{prom}_count {}", h.count);
}

/// Everything one `/metrics` response needs, gathered by the server.
#[derive(Default)]
pub struct Exposition {
    /// The latest sampled registry snapshot.
    pub metrics: MetricsSnapshot,
    /// Per-counter rates over the last sampler interval, increments/s.
    pub rates: BTreeMap<String, f64>,
    /// Heap accounting (zeros when the tracking allocator is off).
    pub alloc: AllocStats,
    /// Run progress, when a session is feeding one.
    pub progress: Option<ProgressSnapshot>,
    /// In-flight span counts by name.
    pub inflight_spans: BTreeMap<String, u64>,
    /// Sampler ticks completed so far.
    pub sampler_ticks: u64,
    /// `/metrics` scrapes served so far (including this one).
    pub scrapes: u64,
}

/// Renders the full Prometheus text exposition.
pub fn render(e: &Exposition) -> String {
    let mut out = String::new();
    // Build attribution first, so every scrape is traceable to an
    // exact binary even when the registry is still empty. The git hash
    // is baked in by build.rs ("unknown" outside a checkout).
    let _ = writeln!(out, "# TYPE mlam_build_info gauge");
    let _ = writeln!(
        out,
        "mlam_build_info{{version=\"{}\",git=\"{}\",features=\"default\"}} 1",
        escape_label(env!("CARGO_PKG_VERSION")),
        escape_label(option_env!("MLAM_GIT_HASH").unwrap_or("unknown")),
    );
    for (name, &value) in &e.metrics.counters {
        let prom = metric_name(name);
        let _ = writeln!(out, "# TYPE {prom} counter");
        let _ = writeln!(out, "{prom} {value}");
    }
    for (name, h) in &e.metrics.histograms {
        write_histogram(&mut out, name, h);
    }
    if !e.rates.is_empty() {
        let _ = writeln!(out, "# TYPE mlam_counter_rate_per_s gauge");
        for (name, rate) in &e.rates {
            let _ = writeln!(
                out,
                "mlam_counter_rate_per_s{{counter=\"{}\"}} {rate}",
                escape_label(name)
            );
        }
    }
    if !e.inflight_spans.is_empty() {
        let _ = writeln!(out, "# TYPE mlam_spans_inflight gauge");
        for (name, count) in &e.inflight_spans {
            let _ = writeln!(
                out,
                "mlam_spans_inflight{{span=\"{}\"}} {count}",
                escape_label(name)
            );
        }
    }
    for (name, value) in [
        ("mlam_mem_alloc_current_bytes", e.alloc.current_bytes),
        ("mlam_mem_alloc_peak_bytes", e.alloc.peak_bytes),
        ("mlam_mem_allocs_total", e.alloc.allocs),
        ("mlam_mem_deallocs_total", e.alloc.deallocs),
    ] {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    if let Some(p) = &e.progress {
        let _ = writeln!(out, "# TYPE mlam_progress_completed gauge");
        let _ = writeln!(out, "mlam_progress_completed {}", p.completed);
        let _ = writeln!(out, "# TYPE mlam_progress_total gauge");
        let _ = writeln!(out, "mlam_progress_total {}", p.total);
        let _ = writeln!(out, "# TYPE mlam_progress_rate_per_s gauge");
        let _ = writeln!(out, "mlam_progress_rate_per_s {}", p.rate_per_s);
        if let Some(eta) = p.eta_s {
            let _ = writeln!(out, "# TYPE mlam_progress_eta_seconds gauge");
            let _ = writeln!(out, "mlam_progress_eta_seconds {eta}");
        }
    }
    let _ = writeln!(out, "# TYPE mlam_monitor_sampler_ticks_total counter");
    let _ = writeln!(out, "mlam_monitor_sampler_ticks_total {}", e.sampler_ticks);
    let _ = writeln!(out, "# TYPE mlam_monitor_scrapes_total counter");
    let _ = writeln!(out, "mlam_monitor_scrapes_total {}", e.scrapes);
    out
}

/// Structurally validates exposition text: every line is a comment or
/// `name{labels} value` with a valid metric name and a numeric value.
/// Used by the endpoint tests and the CI monitor-smoke leg.
pub fn validate(text: &str) -> Result<(), String> {
    fn valid_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
        let name = series.split('{').next().unwrap_or(series);
        if !valid_name(name) {
            return Err(format!("line {}: bad metric name: {name:?}", lineno + 1));
        }
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value: {value:?}", lineno + 1));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!(
                "line {}: unterminated labels: {series:?}",
                lineno + 1
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(
            metric_name("oracle.example_queries"),
            "mlam_oracle_example_queries"
        );
        assert_eq!(
            metric_name("span.bench.run_all.micros"),
            "mlam_span_bench_run_all_micros"
        );
        assert_eq!(metric_name("a-b"), "mlam_a_b");
    }

    #[test]
    fn counters_and_histograms_render_and_validate() {
        let mut e = Exposition::default();
        e.metrics
            .counters
            .insert("oracle.example_queries".into(), 2000);
        e.metrics.histograms.insert(
            "span.attack.micros".into(),
            HistogramSnapshot {
                count: 3,
                sum: 70,
                buckets: vec![(3, 2), (5, 1)],
            },
        );
        e.rates.insert("oracle.example_queries".into(), 12.5);
        e.inflight_spans.insert("bench.run_all".into(), 1);
        e.progress = Some(ProgressSnapshot {
            completed: 2,
            total: 13,
            elapsed_s: 1.0,
            rate_per_s: 2.0,
            eta_s: Some(5.5),
        });
        let text = render(&e);
        validate(&text).expect("exposition must validate");
        assert!(text.contains("# TYPE mlam_build_info gauge"));
        assert!(text.contains(&format!(
            "mlam_build_info{{version=\"{}\",git=",
            env!("CARGO_PKG_VERSION")
        )));
        assert!(text.contains("# TYPE mlam_oracle_example_queries counter"));
        assert!(text.contains("mlam_oracle_example_queries 2000"));
        // Bucket 3 holds values ≤ 7; bucket 5 values ≤ 31; cumulative.
        assert!(text.contains("mlam_span_attack_micros_bucket{le=\"7\"} 2"));
        assert!(text.contains("mlam_span_attack_micros_bucket{le=\"31\"} 3"));
        assert!(text.contains("mlam_span_attack_micros_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("mlam_span_attack_micros_sum 70"));
        assert!(text.contains("mlam_span_attack_micros_count 3"));
        assert!(text.contains("mlam_counter_rate_per_s{counter=\"oracle.example_queries\"} 12.5"));
        assert!(text.contains("mlam_spans_inflight{span=\"bench.run_all\"} 1"));
        assert!(text.contains("mlam_progress_completed 2"));
        assert!(text.contains("mlam_progress_eta_seconds 5.5"));
    }

    #[test]
    fn top_bucket_renders_as_inf() {
        let mut e = Exposition::default();
        e.metrics.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 1,
                sum: u64::MAX,
                buckets: vec![(64, 1)],
            },
        );
        let text = render(&e);
        validate(&text).unwrap();
        assert!(text.contains("mlam_h_bucket{le=\"+Inf\"} 1"));
        // No duplicated +Inf line.
        assert_eq!(text.matches("mlam_h_bucket{le=\"+Inf\"}").count(), 1);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate("ok_metric 1\n").is_ok());
        assert!(validate("bad metric name 1 2 3\n").is_err());
        assert!(validate("no_value\n").is_err());
        assert!(validate("1leading_digit 5\n").is_err());
        assert!(validate("name{le=\"7\" 3\n").is_err());
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c"), "a\\\"b\\\\c");
    }
}
