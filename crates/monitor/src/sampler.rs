//! Background metrics sampler.
//!
//! A [`Sampler`] thread takes a [`mlam_telemetry::snapshot`] every
//! `period` (default 250 ms), diffs it against the previous tick with
//! [`MetricsSnapshot::counter_deltas_since`], and publishes the latest
//! snapshot plus per-counter rates into a shared [`SamplerState`].
//! `/metrics` scrapes read that shared state instead of locking the
//! telemetry registry, so a scraper hammering the endpoint cannot add
//! registry lock pressure to the hot path — the registry is only
//! locked once per tick, off the worker threads.
//!
//! The sampler reads the registry and writes monitor-private state; it
//! never increments anything, so running it cannot change a single
//! counter in `metrics.jsonl` (the crate-level determinism firewall).

use mlam_telemetry::MetricsSnapshot;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The default sampling period.
pub const DEFAULT_PERIOD: Duration = Duration::from_millis(250);

/// The sampler's latest published view.
#[derive(Clone, Default)]
pub struct SamplerState {
    /// The most recent registry snapshot.
    pub snapshot: MetricsSnapshot,
    /// Per-counter increment rates over the last tick interval, in
    /// increments per second (zero-delta counters omitted).
    pub rates: BTreeMap<String, f64>,
}

struct Shared {
    state: Mutex<SamplerState>,
    ticks: AtomicU64,
    // Condvar-paired stop flag: shutdown must not wait out a full
    // sampling period (a 250 ms join tax on every monitored run), so
    // the thread sleeps in `wait_timeout` and shutdown wakes it.
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Handle to the background sampler thread.
pub struct Sampler {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling every `period`. The first tick runs immediately
    /// so a scrape right after startup already sees real data.
    pub fn start(period: Duration) -> Sampler {
        let shared = Arc::new(Shared {
            state: Mutex::new(SamplerState::default()),
            ticks: AtomicU64::new(0),
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("mlam-sampler".into())
            .spawn(move || {
                let mut prev = MetricsSnapshot::default();
                let mut prev_at = Instant::now();
                loop {
                    let now = mlam_telemetry::snapshot();
                    let at = Instant::now();
                    let interval_s = at.duration_since(prev_at).as_secs_f64();
                    let rates = if interval_s > 0.0 {
                        now.counter_deltas_since(&prev)
                            .into_iter()
                            .map(|(name, delta)| (name, delta as f64 / interval_s))
                            .collect()
                    } else {
                        BTreeMap::new()
                    };
                    prev = now.clone();
                    prev_at = at;
                    {
                        let mut state = thread_shared.state.lock().expect("sampler state poisoned");
                        state.snapshot = now;
                        state.rates = rates;
                    }
                    thread_shared.ticks.fetch_add(1, Ordering::Relaxed);
                    let stopped = thread_shared.stop.lock().expect("stop flag poisoned");
                    if *stopped {
                        return;
                    }
                    // Interruptible sleep: a shutdown notification cuts
                    // it short, and the loop then runs one final tick
                    // before the check above returns.
                    let _unused = thread_shared
                        .wake
                        .wait_timeout(stopped, period)
                        .expect("stop flag poisoned");
                }
            })
            .expect("spawn metrics sampler");
        Sampler {
            shared,
            thread: Some(thread),
        }
    }

    /// The latest published state (cloned out from under the lock).
    pub fn state(&self) -> SamplerState {
        self.shared
            .state
            .lock()
            .expect("sampler state poisoned")
            .clone()
    }

    /// Ticks completed so far.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// Stops the sampler thread. One final tick runs on the way out so
    /// the last published snapshot reflects end-of-run counter values.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        *self.shared.stop.lock().expect("stop flag poisoned") = true;
        self.shared.wake.notify_all();
        if let Some(thread) = self.thread.take() {
            // The wake cuts any in-progress sleep short; the thread
            // takes its final snapshot and exits, so the join costs
            // one tick, not a sampling period.
            let _ = thread.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_telemetry::counter;

    #[test]
    fn sampler_publishes_snapshots_and_ticks() {
        let sampler = Sampler::start(Duration::from_millis(5));
        counter!("test.sampler.seen", 7);
        // Wait for at least one tick past the increment.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let state = sampler.state();
            if state
                .snapshot
                .counters
                .get("test.sampler.seen")
                .is_some_and(|&v| v >= 7)
            {
                break;
            }
            assert!(Instant::now() < deadline, "sampler never saw the counter");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(sampler.ticks() >= 1);
        sampler.shutdown();
    }

    #[test]
    fn rates_appear_for_active_counters() {
        let sampler = Sampler::start(Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            counter!("test.sampler.rate", 50);
            let state = sampler.state();
            if state
                .rates
                .get("test.sampler.rate")
                .is_some_and(|&r| r > 0.0)
            {
                break;
            }
            assert!(Instant::now() < deadline, "rate never surfaced");
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.shutdown();
    }
}
