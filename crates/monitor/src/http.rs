//! The zero-dependency HTTP endpoint: `/metrics`, `/progress`,
//! `/healthz`.
//!
//! Built directly on `std::net::TcpListener` — no HTTP crate, no async
//! runtime. The listener runs non-blocking on its own thread, polling
//! for connections between short sleeps so shutdown is prompt; each
//! request is tiny (one line plus headers) and answered inline with
//! `Connection: close`. Scrapes read the [`Sampler`]'s last published
//! snapshot, so even an aggressive scraper never locks the telemetry
//! registry from this thread.
//!
//! Routes:
//!
//! - `GET /metrics` — Prometheus text exposition (format 0.0.4) of all
//!   registry counters/histograms plus monitor gauges (progress, heap,
//!   in-flight spans). `Content-Type: text/plain; version=0.0.4`.
//! - `GET /progress` — the current [`ProgressSnapshot`] as JSON.
//! - `GET /curves` — the live [`LiveCurvesSnapshot`] as JSON
//!   (accuracy-vs-queries checkpoints per experiment, when the session
//!   attached one via [`Monitor::curves`]).
//! - `GET /healthz` — `200 ok`, for readiness loops in CI.
//! - anything else — `404`.
//!
//! [`ProgressSnapshot`]: crate::progress::ProgressSnapshot
//! [`LiveCurvesSnapshot`]: crate::curves::LiveCurvesSnapshot

use crate::curves::LiveCurves;
use crate::progress::Progress;
use crate::prometheus::{self, Exposition};
use crate::sampler::{Sampler, DEFAULT_PERIOD};
use crate::spans::{LiveSpanTracker, LiveSpans};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Monitor configuration: where to listen and what to expose.
pub struct Monitor {
    addr: String,
    sample_period: Duration,
    progress: Option<Arc<Progress>>,
    curves: Option<Arc<LiveCurves>>,
}

impl Monitor {
    /// A monitor that will bind `addr` (e.g. `127.0.0.1:9100`; port 0
    /// picks an ephemeral port, reported by [`MonitorHandle::addr`]).
    pub fn new(addr: &str) -> Monitor {
        Monitor {
            addr: addr.to_string(),
            sample_period: DEFAULT_PERIOD,
            progress: None,
            curves: None,
        }
    }

    /// Overrides the sampling period (default 250 ms).
    pub fn sample_period(mut self, period: Duration) -> Monitor {
        self.sample_period = period;
        self
    }

    /// Attaches run progress, enabling `/progress` payloads and the
    /// `mlam_progress_*` gauges.
    pub fn progress(mut self, progress: Arc<Progress>) -> Monitor {
        self.progress = Some(progress);
        self
    }

    /// Attaches a live curve store, enabling `/curves` payloads. The
    /// session registers the same store as a checkpoint sink, so the
    /// endpoint reflects training progress as it happens.
    pub fn curves(mut self, curves: Arc<LiveCurves>) -> Monitor {
        self.curves = Some(curves);
        self
    }

    /// Binds the listener, starts the sampler and the serving thread,
    /// and installs the live-span sink.
    pub fn start(self) -> std::io::Result<MonitorHandle> {
        let listener = TcpListener::bind(&self.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let (tracker, spans) = LiveSpanTracker::new();
        mlam_telemetry::add_sink(Box::new(tracker));

        let sampler = Arc::new(Sampler::start(self.sample_period));
        let stop = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(AtomicU64::new(0));

        let server = ServerState {
            sampler: Arc::clone(&sampler),
            spans,
            progress: self.progress,
            curves: self.curves,
            scrapes: Arc::clone(&scrapes),
            stop: Arc::clone(&stop),
        };
        let thread = std::thread::Builder::new()
            .name("mlam-monitor".into())
            .spawn(move || server.serve(listener))?;

        Ok(MonitorHandle {
            local_addr,
            stop,
            thread: Some(thread),
            sampler: Some(sampler),
        })
    }
}

/// A running monitor: keep it alive for the duration of the run, then
/// call [`MonitorHandle::shutdown`].
pub struct MonitorHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    sampler: Option<Arc<Sampler>>,
}

impl MonitorHandle {
    /// The address actually bound (resolves port 0 requests).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the serving thread and the sampler.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        if let Some(sampler) = self.sampler.take() {
            // We hold the only non-thread reference by now; unwrap the
            // Arc if possible so shutdown joins the sampler thread.
            if let Ok(sampler) = Arc::try_unwrap(sampler) {
                sampler.shutdown();
            }
        }
    }
}

impl Drop for MonitorHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

struct ServerState {
    sampler: Arc<Sampler>,
    spans: Arc<LiveSpans>,
    progress: Option<Arc<Progress>>,
    curves: Option<Arc<LiveCurves>>,
    scrapes: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
}

impl ServerState {
    fn serve(&self, listener: TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Serve inline: requests are one read + one write,
                    // and scrape concurrency needs are trivial.
                    let _ = self.handle(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => {
                    if self.stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
            }
        }
    }

    fn handle(&self, mut stream: TcpStream) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        stream.set_write_timeout(Some(Duration::from_secs(2)))?;
        // The listener is non-blocking and accepted sockets inherit
        // that on some platforms; force blocking so the timeouts rule.
        stream.set_nonblocking(false)?;
        let path = match read_request_path(&mut stream) {
            Some(path) => path,
            None => return Ok(()), // unparseable request: drop it
        };
        let (status, content_type, body) = match path.as_str() {
            "/metrics" => {
                let n = self.scrapes.fetch_add(1, Ordering::Relaxed) + 1;
                let state = self.sampler.state();
                let exposition = Exposition {
                    metrics: state.snapshot,
                    rates: state.rates,
                    alloc: crate::alloc::stats(),
                    progress: self.progress.as_ref().map(|p| p.snapshot()),
                    inflight_spans: self.spans.counts(),
                    sampler_ticks: self.sampler.ticks(),
                    scrapes: n,
                };
                (
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    prometheus::render(&exposition),
                )
            }
            "/progress" => {
                let snap = match &self.progress {
                    Some(p) => p.snapshot(),
                    None => Progress::new(0).snapshot(),
                };
                let body = serde_json::to_string(&snap).unwrap_or_else(|_| "{}".to_string());
                ("200 OK", "application/json", body + "\n")
            }
            "/curves" => {
                let snap = match &self.curves {
                    Some(c) => c.snapshot(),
                    None => crate::curves::LiveCurvesSnapshot { series: Vec::new() },
                };
                let body = serde_json::to_string(&snap).unwrap_or_else(|_| "{}".to_string());
                ("200 OK", "application/json", body + "\n")
            }
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        };
        let response = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(response.as_bytes())?;
        stream.flush()
    }
}

/// Reads the request head and returns the path from the request line
/// (`GET /metrics HTTP/1.1` → `/metrics`), or `None` if the bytes do
/// not look like an HTTP GET.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the blank line ending the header block, or a cap —
    // scrapers send no body, so anything longer is garbage.
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Strip any query string; routes here take no parameters.
    Some(path.split('?').next().unwrap_or(path).to_string())
}
