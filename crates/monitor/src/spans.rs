//! In-flight span tracking: what the run is doing *right now*.
//!
//! [`LiveSpanTracker`] is a [`mlam_telemetry::Sink`]: it receives the
//! same start/end events `events.jsonl` does and keeps a per-name
//! count of spans that have started but not yet ended. The `/metrics`
//! endpoint renders those counts as gauges, so a scrape of a stuck run
//! shows *which* span it is stuck inside.
//!
//! The tracker holds plain state behind its own mutex and never
//! touches the telemetry registry (see the crate-level determinism
//! firewall). Span events are low-frequency (per experiment / attack
//! iteration, not per CRP), so the extra sink costs nothing
//! measurable; it is only installed when monitoring is enabled.

use mlam_telemetry::{Event, EventKind, Sink};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Shared live-span state: `name -> in-flight count`.
#[derive(Default)]
pub struct LiveSpans {
    inflight: Mutex<BTreeMap<String, u64>>,
}

impl LiveSpans {
    /// Current in-flight counts by span name (zero entries omitted).
    pub fn counts(&self) -> BTreeMap<String, u64> {
        let inflight = self.inflight.lock().expect("live spans poisoned");
        inflight
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    fn apply(&self, event: &Event) {
        let mut inflight = self.inflight.lock().expect("live spans poisoned");
        match event.kind {
            EventKind::SpanStart => {
                *inflight.entry(event.name.clone()).or_insert(0) += 1;
            }
            EventKind::SpanEnd => {
                let remove = match inflight.get_mut(&event.name) {
                    Some(n) => {
                        *n = n.saturating_sub(1);
                        *n == 0
                    }
                    // An end without a tracked start: the span began
                    // before the tracker was installed. Ignore.
                    None => false,
                };
                if remove {
                    inflight.remove(&event.name);
                }
            }
        }
    }
}

/// The [`Sink`] half: install with [`mlam_telemetry::add_sink`] and
/// keep the shared [`LiveSpans`] for reading.
pub struct LiveSpanTracker {
    spans: Arc<LiveSpans>,
}

impl LiveSpanTracker {
    /// A tracker plus the shared state it feeds.
    pub fn new() -> (LiveSpanTracker, Arc<LiveSpans>) {
        let spans = Arc::new(LiveSpans::default());
        (
            LiveSpanTracker {
                spans: Arc::clone(&spans),
            },
            spans,
        )
    }
}

impl Sink for LiveSpanTracker {
    fn record(&mut self, event: &Event) {
        self.spans.apply(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: EventKind, name: &str, id: u64) -> Event {
        Event {
            kind,
            name: name.to_string(),
            id,
            parent_id: None,
            tid: 1,
            depth: 0,
            ts_ns: 0,
            elapsed_ns: None,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn start_end_pairs_balance() {
        let (mut tracker, spans) = LiveSpanTracker::new();
        tracker.record(&event(EventKind::SpanStart, "attack", 1));
        tracker.record(&event(EventKind::SpanStart, "attack", 2));
        tracker.record(&event(EventKind::SpanStart, "collect", 3));
        assert_eq!(spans.counts()["attack"], 2);
        assert_eq!(spans.counts()["collect"], 1);
        tracker.record(&event(EventKind::SpanEnd, "attack", 1));
        assert_eq!(spans.counts()["attack"], 1);
        tracker.record(&event(EventKind::SpanEnd, "attack", 2));
        tracker.record(&event(EventKind::SpanEnd, "collect", 3));
        assert!(spans.counts().is_empty());
    }

    #[test]
    fn unmatched_end_is_ignored() {
        let (mut tracker, spans) = LiveSpanTracker::new();
        tracker.record(&event(EventKind::SpanEnd, "orphan", 9));
        assert!(spans.counts().is_empty());
    }
}
