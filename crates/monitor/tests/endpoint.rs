//! End-to-end endpoint test: bind an ephemeral port, scrape the three
//! routes over a raw `TcpStream`, and validate what comes back. This
//! is the timing-independent counterpart of the CI monitor-smoke leg.

use mlam_monitor::prometheus;
use mlam_monitor::{Monitor, Progress, ProgressSnapshot};
use mlam_telemetry::counter;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One HTTP GET against the monitor; returns (status line, body).
fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to monitor");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

#[test]
fn endpoints_serve_metrics_progress_and_health() {
    let progress = Arc::new(Progress::new(13));
    let handle = Monitor::new("127.0.0.1:0")
        .sample_period(Duration::from_millis(10))
        .progress(Arc::clone(&progress))
        .start()
        .expect("monitor binds an ephemeral port");
    let addr = handle.addr();

    // Health comes up immediately.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    // Exercise some telemetry, then wait for the sampler to see it.
    counter!("test.endpoint.queries", 42);
    let deadline = Instant::now() + Duration::from_secs(10);
    let text = loop {
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        if body.contains("mlam_test_endpoint_queries") {
            break body;
        }
        assert!(Instant::now() < deadline, "sampler never saw the counter");
        std::thread::sleep(Duration::from_millis(5));
    };
    prometheus::validate(&text).expect("exposition must parse");
    assert!(text.contains("# TYPE mlam_test_endpoint_queries counter"));
    assert!(text.contains("mlam_monitor_scrapes_total"));
    assert!(text.contains("mlam_progress_total 13"));
    assert!(text.contains("mlam_mem_alloc_peak_bytes"));

    // Progress JSON tracks completions and stays monotone.
    let (_, body) = get(addr, "/progress");
    let before: ProgressSnapshot = serde_json::from_str(body.trim()).expect("progress JSON");
    assert_eq!(before.total, 13);
    progress.complete_one();
    progress.complete_one();
    let (_, body) = get(addr, "/progress");
    let after: ProgressSnapshot = serde_json::from_str(body.trim()).expect("progress JSON");
    assert!(after.completed >= before.completed + 2);
    assert!(after.eta_s.is_some(), "ETA exists once something completed");

    // Unknown routes 404; non-GET requests are dropped without a hang.
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    handle.shutdown();
    // The port is released: connecting now fails (give the OS a beat).
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
        "listener should be closed after shutdown"
    );
}

#[test]
fn curves_endpoint_serves_live_series() {
    use mlam_monitor::LiveCurves;
    use mlam_telemetry::{CurvePoint, CurveSink};

    // Without an attached store the endpoint answers an empty payload.
    let bare = Monitor::new("127.0.0.1:0")
        .sample_period(Duration::from_millis(10))
        .start()
        .expect("monitor binds");
    let (status, body) = get(bare.addr(), "/curves");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body.trim(), r#"{"series":[]}"#);
    bare.shutdown();

    // With a store, checkpoints become visible as soon as they land.
    let live = Arc::new(LiveCurves::new());
    let handle = Monitor::new("127.0.0.1:0")
        .sample_period(Duration::from_millis(10))
        .curves(Arc::clone(&live))
        .start()
        .expect("monitor binds");
    for (iteration, queries, acc) in [(1u64, 8u64, 0.55), (2, 16, 0.7), (4, 32, 0.9)] {
        live.on_point(
            "table1_quick",
            &CurvePoint {
                label: "perceptron".to_string(),
                iteration,
                queries,
                raw_reads: queries,
                train_acc: acc,
                holdout_acc: None,
                counters: std::collections::BTreeMap::new(),
            },
        );
    }
    let (status, body) = get(handle.addr(), "/curves");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains(r#""name":"table1_quick""#), "body: {body}");
    assert!(body.contains(r#""points_total":3"#), "body: {body}");
    assert!(body.contains(r#""label":"perceptron""#), "body: {body}");

    // Iterations and query counts must be strictly increasing in the
    // served order — the live view mirrors emission order exactly.
    let extract = |key: &str| -> Vec<u64> {
        body.match_indices(&format!("\"{key}\":"))
            .map(|(at, found)| {
                body[at + found.len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .expect("numeric field")
            })
            .collect()
    };
    assert_eq!(extract("iteration"), vec![1, 2, 4]);
    assert_eq!(extract("queries"), vec![8, 16, 32]);
    handle.shutdown();
}

#[test]
fn scrapes_are_counted_and_concurrent_scrapes_survive() {
    let handle = Monitor::new("127.0.0.1:0")
        .sample_period(Duration::from_millis(10))
        .start()
        .expect("monitor binds");
    let addr = handle.addr();
    // Hammer the endpoint from several threads; every response must be
    // a complete, valid exposition.
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                for _ in 0..5 {
                    let (status, body) = get(addr, "/metrics");
                    assert_eq!(status, "HTTP/1.1 200 OK");
                    prometheus::validate(&body).expect("valid under load");
                }
            });
        }
    });
    let (_, body) = get(addr, "/metrics");
    let scrapes: u64 = body
        .lines()
        .find_map(|l| l.strip_prefix("mlam_monitor_scrapes_total "))
        .expect("scrape counter present")
        .parse()
        .expect("scrape counter numeric");
    assert!(scrapes >= 21, "20 hammered + this one, got {scrapes}");
    handle.shutdown();
}
