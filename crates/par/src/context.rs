//! Ambient-context propagation into worker threads.
//!
//! Observability layers keep per-thread state — the counter-attribution
//! scope of the current experiment, the innermost live span — in
//! thread-locals that worker threads would not inherit. A registered
//! context hook closes that gap without making this crate depend on any
//! telemetry implementation: at the start of every parallel call the
//! pool captures the submitting thread's context once, and each worker
//! re-installs it (RAII guard) for the duration of its task batch.
//!
//! With no hook registered, propagation is a no-op. The calling thread
//! itself never re-installs anything: its ambient context is already
//! live.

use std::any::Any;
use std::sync::OnceLock;

/// Context captured on the submitting thread of a parallel call,
/// shared by reference with every worker the call spawns.
pub trait CapturedContext: Send + Sync {
    /// Installs the context on the current (worker) thread. Dropping
    /// the returned guard un-installs it; the pool drops it after the
    /// worker's task batch completes.
    fn resume(&self) -> Box<dyn Any>;
}

/// The hook signature: snapshot the current thread's ambient context,
/// or `None` when there is nothing to propagate.
pub type ContextHook = fn() -> Option<Box<dyn CapturedContext>>;

static HOOK: OnceLock<ContextHook> = OnceLock::new();

/// Registers the process-wide context hook. The first registration
/// wins; later calls are ignored (the hook is expected to come from
/// one observability layer, installed once at startup).
pub fn set_context_hook(hook: ContextHook) {
    let _ = HOOK.set(hook);
}

/// Captures the submitting thread's context via the registered hook.
pub(crate) fn capture() -> Option<Box<dyn CapturedContext>> {
    HOOK.get().and_then(|hook| hook())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Token;

    impl CapturedContext for Token {
        fn resume(&self) -> Box<dyn Any> {
            Box::new(())
        }
    }

    #[test]
    fn capture_without_hook_is_none_then_first_hook_wins() {
        // Note: hook state is process-global, so this test covers both
        // the unregistered and the registered path in one sequence.
        fn hook() -> Option<Box<dyn CapturedContext>> {
            Some(Box::new(Token))
        }
        set_context_hook(hook);
        assert!(capture().is_some());
        // A second registration does not replace the first.
        fn other() -> Option<Box<dyn CapturedContext>> {
            None
        }
        set_context_hook(other);
        assert!(capture().is_some(), "first hook must keep winning");
    }
}
