//! The scoped worker pool and its data-parallel entry points.
//!
//! Every function here is a fork-join over [`std::thread::scope`]: the
//! calling thread always participates as worker 0, spawned workers
//! live only for the duration of one call, and results are assembled
//! in input order. Work assignment (contiguous ranges for maps,
//! strided chunk lists for mutable sweeps) affects only *where* an
//! element is computed, never *what* is computed — see the crate docs
//! for the determinism contract.

use crate::context;

/// Default chunk size for order-sensitive chunked reductions.
///
/// Callers of [`par_chunk_map`] that fold floating-point partials must
/// use a chunk size that does not depend on the thread count; this
/// constant is the conventional choice.
pub const DEFAULT_CHUNK: usize = 1024;

/// Below this many items, parallel maps run inline: spawning threads
/// costs more than the work saves, and the result is identical.
const INLINE_THRESHOLD: usize = 64;

/// The effective worker count: the `MLAM_THREADS` environment variable
/// when set to a positive integer, otherwise the machine's available
/// parallelism. `MLAM_THREADS=1` makes every parallel entry point run
/// inline on the calling thread.
pub fn threads() -> usize {
    match std::env::var("MLAM_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The contiguous index range worker `w` of `t` owns over `len` items.
fn range(len: usize, t: usize, w: usize) -> (usize, usize) {
    (w * len / t, (w + 1) * len / t)
}

/// Maps `f` over `items` in parallel, returning results in input
/// order. `f` must be pure per element for the determinism contract to
/// hold (and there is then nothing scheduling can change).
///
/// # Example
///
/// ```
/// use mlam_par::par_map;
///
/// let squares = par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// // Input order survives the fan-out, whatever MLAM_THREADS is.
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with_threads(threads(), items, f)
}

/// [`par_map`] with an explicit worker count (mainly for tests and
/// benchmarks; production paths use the `MLAM_THREADS`-driven wrapper).
pub fn par_map_with_threads<T, U, F>(t: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_index_with_threads(t, items.len(), |i| f(&items[i]))
}

/// Maps `f` over the index range `0..len` in parallel, returning
/// results in index order.
pub fn par_map_index<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_index_with_threads(threads(), len, f)
}

/// [`par_map_index`] with an explicit worker count.
pub fn par_map_index_with_threads<U, F>(t: usize, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let t = t.max(1).min(len.max(1));
    if t == 1 || len < INLINE_THRESHOLD {
        return (0..len).map(f).collect();
    }
    let mut slots: Vec<Option<Vec<U>>> = Vec::new();
    slots.resize_with(t, || None);
    let ctx = context::capture();
    std::thread::scope(|s| {
        let f = &f;
        let ctx = &ctx;
        let (mine, rest) = slots.split_at_mut(1);
        for (w, slot) in rest.iter_mut().enumerate() {
            let (lo, hi) = range(len, t, w + 1);
            s.spawn(move || {
                let _guard = ctx.as_ref().map(|c| c.resume());
                *slot = Some((lo..hi).map(f).collect());
            });
        }
        let (lo, hi) = range(len, t, 0);
        mine[0] = Some((lo..hi).map(f).collect());
    });
    slots
        .into_iter()
        .flat_map(|part| part.expect("worker completed"))
        .collect()
}

/// Applies `f` to fixed-size chunks of `items` in parallel, returning
/// one result per chunk in chunk order.
///
/// This is the primitive behind order-sensitive parallel reductions:
/// pick a chunk size **independent of the thread count** (see
/// [`DEFAULT_CHUNK`]), compute a partial per chunk, and fold the
/// returned partials sequentially — the fold order, and therefore any
/// floating-point rounding, is then identical at every thread count.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_chunk_map<T, U, F>(items: &[T], chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    par_chunk_map_with_threads(threads(), items, chunk, f)
}

/// [`par_chunk_map`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_chunk_map_with_threads<T, U, F>(t: usize, items: &[T], chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    // One task per chunk; a task is big by construction, so hand the
    // index map a zero threshold by calling the worker split directly.
    let n = chunks.len();
    let t = t.max(1).min(n.max(1));
    if t == 1 {
        return chunks.iter().enumerate().map(|(i, c)| f(i, c)).collect();
    }
    let mut slots: Vec<Option<Vec<U>>> = Vec::new();
    slots.resize_with(t, || None);
    let ctx = context::capture();
    std::thread::scope(|s| {
        let f = &f;
        let ctx = &ctx;
        let chunks = &chunks;
        let (mine, rest) = slots.split_at_mut(1);
        for (w, slot) in rest.iter_mut().enumerate() {
            let (lo, hi) = range(n, t, w + 1);
            s.spawn(move || {
                let _guard = ctx.as_ref().map(|c| c.resume());
                *slot = Some((lo..hi).map(|i| f(i, chunks[i])).collect());
            });
        }
        let (lo, hi) = range(n, t, 0);
        mine[0] = Some((lo..hi).map(|i| f(i, chunks[i])).collect());
    });
    slots
        .into_iter()
        .flat_map(|part| part.expect("worker completed"))
        .collect()
}

/// Applies `f` to disjoint fixed-size mutable chunks of `data` in
/// parallel. Chunk boundaries depend only on `chunk`, so results are
/// identical at any thread count when `f` writes only through its own
/// chunk (the borrow checker enforces exactly that).
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_for_each_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_for_each_mut_with_threads(threads(), data, chunk, f)
}

/// [`par_for_each_mut`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_for_each_mut_with_threads<T, F>(t: usize, data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let n = data.len().div_ceil(chunk);
    let t = t.max(1).min(n.max(1));
    if t == 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
        return;
    }
    // Strided assignment: worker w owns chunks w, w+t, w+2t, … — a
    // static schedule that balances the tail without any shared queue.
    let mut batches: Vec<Vec<(usize, &mut [T])>> = Vec::new();
    batches.resize_with(t, Vec::new);
    for (i, slice) in data.chunks_mut(chunk).enumerate() {
        batches[i % t].push((i, slice));
    }
    let ctx = context::capture();
    std::thread::scope(|s| {
        let f = &f;
        let ctx = &ctx;
        let mut batches = batches.into_iter();
        let mine = batches.next().expect("at least one worker");
        for batch in batches {
            s.spawn(move || {
                let _guard = ctx.as_ref().map(|c| c.resume());
                for (i, slice) in batch {
                    f(i, slice);
                }
            });
        }
        for (i, slice) in mine {
            f(i, slice);
        }
    });
}

/// A boxed one-shot task for [`par_run`]: the unit of the experiment
/// fan-out.
pub type Task<'env, U> = Box<dyn FnOnce() -> U + Send + 'env>;

/// Runs heterogeneous one-shot tasks in parallel, returning their
/// results in task order — the primitive behind `repro_all`'s
/// experiment fan-out. Tasks are assigned to workers in a strided
/// static schedule; each task must be internally deterministic (seed
/// itself via [`crate::split_seed`], not a shared RNG).
pub fn par_run<'env, U: Send>(tasks: Vec<Task<'env, U>>) -> Vec<U> {
    par_run_with_threads(threads(), tasks)
}

/// [`par_run`] with an explicit worker count.
pub fn par_run_with_threads<'env, U: Send>(t: usize, tasks: Vec<Task<'env, U>>) -> Vec<U> {
    let n = tasks.len();
    let t = t.max(1).min(n.max(1));
    if t == 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let mut batches: Vec<Vec<(usize, Task<'env, U>)>> = Vec::new();
    batches.resize_with(t, Vec::new);
    for (i, task) in tasks.into_iter().enumerate() {
        batches[i % t].push((i, task));
    }
    let mut slots: Vec<Option<U>> = Vec::new();
    slots.resize_with(n, || None);
    let ctx = context::capture();
    std::thread::scope(|s| {
        let ctx = &ctx;
        let mut batches = batches.into_iter();
        let mine = batches.next().expect("at least one worker");
        let handles: Vec<_> = batches
            .map(|batch| {
                s.spawn(move || {
                    let _guard = ctx.as_ref().map(|c| c.resume());
                    batch
                        .into_iter()
                        .map(|(i, task)| (i, task()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (i, task) in mine {
            slots[i] = Some(task());
        }
        for handle in handles {
            match handle.join() {
                Ok(results) => {
                    for (i, value) in results {
                        slots[i] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("task completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for t in [1, 2, 3, 4, 7, 16] {
            let got = par_map_with_threads(t, &items, |x| x * x + 1);
            assert_eq!(got, expected, "t={t}");
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        let items: Vec<u64> = (0..8).collect();
        let got = par_map_with_threads(8, &items, |x| x + 1);
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn chunked_float_reduction_is_thread_count_invariant() {
        // Sum of adversarially scaled floats: naive reassociation
        // changes the result, fixed-chunk folding must not.
        let items: Vec<f64> = (0..10_000)
            .map(|i| {
                ((i * 2_654_435_761u64 % 1000) as f64 - 500.0) * (1.0 + (i % 13) as f64 * 1e-7)
            })
            .collect();
        let fold = |partials: Vec<f64>| partials.into_iter().fold(0.0f64, |a, b| a + b);
        let reference = fold(par_chunk_map_with_threads(1, &items, 256, |_, c| {
            c.iter().sum::<f64>()
        }));
        for t in [2, 3, 4, 8] {
            let sum = fold(par_chunk_map_with_threads(t, &items, 256, |_, c| {
                c.iter().sum::<f64>()
            }));
            assert_eq!(sum.to_bits(), reference.to_bits(), "t={t}");
        }
    }

    #[test]
    fn chunk_map_preserves_chunk_order_and_sizes() {
        let items: Vec<usize> = (0..2500).collect();
        let got = par_chunk_map_with_threads(4, &items, 1000, |i, c| (i, c.len(), c[0]));
        assert_eq!(got, vec![(0, 1000, 0), (1, 1000, 1000), (2, 500, 2000)]);
    }

    #[test]
    fn for_each_mut_applies_to_every_chunk() {
        let expected: Vec<u64> = (0..997).map(|i| i + i / 10).collect();
        for t in [1, 2, 5] {
            let mut data: Vec<u64> = (0..997).collect();
            par_for_each_mut_with_threads(t, &mut data, 10, |idx, chunk| {
                for v in chunk.iter_mut() {
                    *v += idx as u64;
                }
            });
            assert_eq!(data, expected, "t={t}");
        }
    }

    #[test]
    fn par_run_returns_results_in_task_order() {
        for t in [1, 2, 4] {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..9usize)
                .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let got = par_run_with_threads(t, tasks);
            assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60, 70, 80], "t={t}");
        }
    }

    #[test]
    fn par_run_tasks_may_borrow_locals() {
        let data = [1u64, 2, 3];
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = data
            .iter()
            .map(|v| Box::new(move || v + 1) as Box<dyn FnOnce() -> u64 + Send + '_>)
            .collect();
        assert_eq!(par_run_with_threads(2, tasks), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        par_chunk_map_with_threads(2, &[1, 2, 3], 0, |_, c: &[i32]| c.len());
    }

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
    }

    #[test]
    fn range_partitions_exactly() {
        for len in [0usize, 1, 7, 100, 101] {
            for t in 1..8 {
                let mut covered = 0;
                for w in 0..t {
                    let (lo, hi) = range(len, t, w);
                    assert_eq!(lo, covered);
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
