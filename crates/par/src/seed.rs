//! Per-task seed splitting.
//!
//! Parallel tasks must not share a sequential RNG stream: the order in
//! which workers would consume it is scheduling-dependent. Instead,
//! every task derives its own seed from the root seed and its task
//! index, so the (seed, index) → stream mapping is a pure function and
//! the work decomposition is identical at any thread count. This is
//! the same discipline the bench harness has always used for its fixed
//! root seed — extended downward to individual tasks.

/// One round of the SplitMix64 output function (Steele, Lea & Flood,
/// "Fast splittable pseudorandom number generators", OOPSLA 2014).
///
/// A bijective finalizer with good avalanche behavior: every input bit
/// flips each output bit with probability ≈ 1/2. Used here to turn
/// structured `(root, index)` pairs into well-mixed seeds.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for task `index` under the root seed `root`.
///
/// Deterministic, order-free, and collision-resistant in practice: two
/// rounds of [`splitmix64`] mixing keep nearby indices (0, 1, 2, …)
/// from producing correlated seeds. The same `(root, index)` pair
/// always yields the same seed, regardless of how tasks are scheduled.
///
/// # Example
///
/// ```
/// use mlam_par::split_seed;
/// let a = split_seed(42, 0);
/// let b = split_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, split_seed(42, 0));
/// ```
pub fn split_seed(root: u64, index: u64) -> u64 {
    splitmix64(root ^ splitmix64(index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_seed_is_deterministic() {
        for root in [0u64, 1, 0xDA7E_2020, u64::MAX] {
            for index in 0..16 {
                assert_eq!(split_seed(root, index), split_seed(root, index));
            }
        }
    }

    #[test]
    fn nearby_indices_get_distinct_seeds() {
        let mut seen = HashSet::new();
        for root in [0u64, 7, 0xDA7E_2020] {
            for index in 0..4096 {
                assert!(
                    seen.insert(split_seed(root, index)),
                    "collision at root={root} index={index}"
                );
            }
        }
    }

    #[test]
    fn splitmix_avalanches_single_bit_flips() {
        // Flipping one input bit must flip a substantial fraction of
        // output bits (a weak but effective sanity check on mixing).
        for bit in 0..64 {
            let a = splitmix64(0x1234_5678_9ABC_DEF0);
            let b = splitmix64(0x1234_5678_9ABC_DEF0 ^ (1u64 << bit));
            let flipped = (a ^ b).count_ones();
            assert!(
                flipped >= 16,
                "bit {bit} flipped only {flipped} output bits"
            );
        }
    }
}
