//! Deterministic parallel runtime for the mlam attack pipeline.
//!
//! Every hot path in the reproduction — batch CRP generation, Fourier
//! coefficient estimation, evaluation sweeps, and the `repro_all`
//! experiment fan-out — funnels through this crate. The design goal is
//! a **hard determinism contract**: for a fixed seed, results are
//! bit-identical at *any* thread count, so `MLAM_THREADS=4` must pass
//! `mlam-trace compare` against an `MLAM_THREADS=1` run of the same
//! seed. Three rules make that hold:
//!
//! 1. **Pure element maps** ([`par_map`], [`par_for_each_mut`]): each
//!    element's result depends only on that element, so scheduling
//!    cannot change values, and results are assembled in input order.
//! 2. **Fixed chunk boundaries** ([`par_chunk_map`]): reductions that
//!    are order-sensitive (floating-point sums) are chunked with a
//!    *caller-fixed* chunk size — never derived from the thread count —
//!    and the per-chunk partials are folded sequentially in chunk
//!    order.
//! 3. **Per-task seed splitting** ([`seed::split_seed`]): tasks that
//!    need randomness derive an independent seed from `(root, index)`
//!    instead of sharing a sequential RNG stream.
//!
//! The pool itself is a scoped fork-join over [`std::thread::scope`]:
//! no global state, no queues that outlive a call, and the calling
//! thread always participates as worker 0. Thread count comes from the
//! `MLAM_THREADS` environment variable (default: available
//! parallelism); `MLAM_THREADS=1` executes inline on the calling
//! thread, which is exactly the pre-parallelism behavior.
//!
//! Observability layers (mlam-telemetry) can register a
//! [`context::set_context_hook`] so ambient thread-local context —
//! counter-attribution scopes, span parents — flows into worker
//! threads; the runtime itself stays dependency-free.

#![warn(missing_docs)]

pub mod context;
pub mod pool;
pub mod seed;

pub use context::{set_context_hook, CapturedContext};
pub use pool::{
    par_chunk_map, par_for_each_mut, par_map, par_map_index, par_run, threads, DEFAULT_CHUNK,
};
pub use seed::{split_seed, splitmix64};
