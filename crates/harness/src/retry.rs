//! Recovery policies: bounded retry, deterministic backoff, majority
//! voting.
//!
//! Recovery is pure bookkeeping over readings — no wall-clock sleeps.
//! Backoff is expressed in abstract *units* and only **counted**
//! (`harness.retry.backoff_units`), because in simulation the cost of
//! waiting is an accounting question, not a latency one; a hardware
//! front-end would translate units into real delays. Keeping recovery
//! clock-free is also what keeps it deterministic: the same fault
//! pattern always produces the same retry/vote trace and the same
//! `harness.retry.*` counters, at any thread count.

use mlam_telemetry::counter;
use serde::{Deserialize, Serialize};

/// A deterministic backoff schedule, in abstract units per retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backoff {
    /// Retry immediately.
    None,
    /// Wait a fixed number of units before every retry.
    Fixed(u64),
    /// Wait `base << retry` units, saturating at `cap`.
    Exponential {
        /// Units before the first retry.
        base: u64,
        /// Upper bound on the per-retry wait.
        cap: u64,
    },
}

impl Backoff {
    /// Units to wait before retry number `retry` (0-based).
    pub fn units(&self, retry: u32) -> u64 {
        match *self {
            Backoff::None => 0,
            Backoff::Fixed(units) => units,
            Backoff::Exponential { base, cap } => base
                .checked_shl(retry)
                .map_or(cap, |shifted| shifted.min(cap)),
        }
    }
}

/// How a logical query recovers from unreliable readings.
///
/// A *logical* query is what the attack asks for; a *raw* reading is
/// one attempt against the device. The policy bounds how many raw
/// readings a logical query may spend ([`max_attempts`]) and how many
/// successful readings it aggregates by majority vote ([`votes`]).
///
/// [`max_attempts`]: RetryPolicy::max_attempts
/// [`votes`]: RetryPolicy::votes
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum raw readings per logical query.
    pub max_attempts: u32,
    /// Successful readings aggregated per logical query (odd). `1`
    /// returns the first successful reading unvoted.
    pub votes: u32,
    /// Wait schedule between attempts after a lost reading.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    /// One attempt, no vote, no backoff — the historical perfect-oracle
    /// behavior.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            votes: 1,
            backoff: Backoff::None,
        }
    }
}

impl RetryPolicy {
    /// Bounded retry: up to `max_attempts` raw readings, no voting.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn retries(max_attempts: u32) -> RetryPolicy {
        assert!(max_attempts > 0, "at least one attempt is required");
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Majority-votes over `votes` successful readings (k-of-n with
    /// `k = votes/2 + 1`). Raises `max_attempts` to at least `votes`.
    ///
    /// # Panics
    ///
    /// Panics if `votes` is even or zero.
    pub fn with_votes(mut self, votes: u32) -> RetryPolicy {
        assert!(votes % 2 == 1, "vote count must be odd");
        self.votes = votes;
        self.max_attempts = self.max_attempts.max(votes);
        self
    }

    /// Sets the backoff schedule.
    pub fn with_backoff(mut self, backoff: Backoff) -> RetryPolicy {
        self.backoff = backoff;
        self
    }

    /// The stable-CRP re-query discipline of the paper's lab procedure:
    /// majority-vote over `repeats` readings (made odd by rounding up)
    /// with an attempt budget of four readings per vote and unit
    /// backoff.
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    pub fn stable_requery(repeats: u32) -> RetryPolicy {
        assert!(repeats > 0, "at least one repeat is required");
        let votes = if repeats.is_multiple_of(2) {
            repeats + 1
        } else {
            repeats
        };
        RetryPolicy {
            max_attempts: votes.saturating_mul(4),
            votes,
            backoff: Backoff::Fixed(1),
        }
    }
}

/// A logical query that could not produce a single successful reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryError {
    /// Raw readings spent before giving up.
    pub attempts: u32,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oracle query exhausted after {} failed attempts",
            self.attempts
        )
    }
}

impl std::error::Error for QueryError {}

/// Runs one logical query under `policy`.
///
/// `read(attempt)` performs raw reading number `attempt` (0-based) and
/// returns `Some(bit)` for a successful (possibly wrong) reading or
/// `None` for a lost one. Readings are collected until [`votes`]
/// successes or [`max_attempts`] total attempts, then majority-voted.
/// Fewer-than-requested successes still produce an answer (a *short
/// vote*, counted as `harness.retry.short_votes`; ties break toward
/// the first reading); zero successes return [`QueryError`].
///
/// Counters: `harness.retry.attempts` (every raw reading),
/// `harness.retry.backoff_units`, `harness.retry.vote_disagreements`
/// (non-unanimous votes), `harness.retry.short_votes`,
/// `harness.retry.exhausted`.
///
/// [`votes`]: RetryPolicy::votes
/// [`max_attempts`]: RetryPolicy::max_attempts
///
/// # Example
///
/// ```
/// use mlam_harness::{recover, RetryPolicy};
///
/// // A flaky device: readings 0 and 1 are lost, reading 2 lands.
/// let policy = RetryPolicy::retries(5);
/// let got = recover(&policy, |attempt| (attempt >= 2).then_some(true));
/// assert_eq!(got, Ok(true));
///
/// // All readings lost: the query is exhausted.
/// let none = recover(&policy, |_| None);
/// assert!(none.is_err());
/// ```
pub fn recover(
    policy: &RetryPolicy,
    mut read: impl FnMut(u32) -> Option<bool>,
) -> Result<bool, QueryError> {
    let mut ones = 0u32;
    let mut readings = 0u32;
    let mut first = None;
    let mut losses = 0u32;
    let mut attempt = 0u32;
    while attempt < policy.max_attempts && readings < policy.votes {
        counter!("harness.retry.attempts", 1);
        match read(attempt) {
            Some(bit) => {
                readings += 1;
                ones += u32::from(bit);
                first.get_or_insert(bit);
            }
            None => {
                counter!("harness.retry.backoff_units", policy.backoff.units(losses));
                losses += 1;
            }
        }
        attempt += 1;
    }
    if readings == 0 {
        counter!("harness.retry.exhausted", 1);
        return Err(QueryError { attempts: attempt });
    }
    if readings < policy.votes {
        counter!("harness.retry.short_votes", 1);
    }
    if ones != 0 && ones != readings {
        counter!("harness.retry.vote_disagreements", 1);
    }
    let majority = match (2 * ones).cmp(&readings) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        // Even split (only possible on a short vote): the first
        // reading breaks the tie deterministically.
        std::cmp::Ordering::Equal => first.unwrap_or(false),
    };
    Ok(majority)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedules() {
        assert_eq!(Backoff::None.units(5), 0);
        assert_eq!(Backoff::Fixed(3).units(0), 3);
        assert_eq!(Backoff::Fixed(3).units(9), 3);
        let exp = Backoff::Exponential { base: 2, cap: 16 };
        assert_eq!(exp.units(0), 2);
        assert_eq!(exp.units(1), 4);
        assert_eq!(exp.units(2), 8);
        assert_eq!(exp.units(3), 16);
        assert_eq!(exp.units(10), 16);
        assert_eq!(exp.units(100), 16, "shift overflow saturates at cap");
    }

    #[test]
    fn default_policy_is_single_shot() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.max_attempts, 1);
        assert_eq!(policy.votes, 1);
        assert_eq!(recover(&policy, |_| Some(true)), Ok(true));
        assert_eq!(recover(&policy, |_| None), Err(QueryError { attempts: 1 }));
    }

    #[test]
    fn retry_rides_out_losses() {
        let policy = RetryPolicy::retries(4);
        let got = recover(&policy, |attempt| (attempt == 3).then_some(false));
        assert_eq!(got, Ok(false));
    }

    #[test]
    fn majority_vote_masks_minority_flips() {
        let policy = RetryPolicy::retries(8).with_votes(5);
        // Readings: true, false, true, true, false -> majority true.
        let pattern = [true, false, true, true, false];
        let got = recover(&policy, |attempt| Some(pattern[attempt as usize]));
        assert_eq!(got, Ok(true));
    }

    #[test]
    fn short_vote_still_answers() {
        // Only two of five requested readings land before the budget
        // runs out; both say true.
        let policy = RetryPolicy::retries(6).with_votes(5);
        let got = recover(&policy, |attempt| (attempt >= 4).then_some(true));
        assert_eq!(got, Ok(true));
    }

    #[test]
    fn short_vote_tie_breaks_to_first_reading() {
        let policy = RetryPolicy::retries(5).with_votes(5);
        // One reading is lost, leaving an even split: false, true,
        // (lost), false, true -> tie, first reading wins.
        let pattern = [Some(false), Some(true), None, Some(false), Some(true)];
        let got = recover(&policy, |attempt| pattern[attempt as usize]);
        assert_eq!(got, Ok(false));
    }

    #[test]
    fn with_votes_raises_attempt_budget() {
        let policy = RetryPolicy::retries(1).with_votes(7);
        assert_eq!(policy.max_attempts, 7);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_votes_are_rejected() {
        let _ = RetryPolicy::default().with_votes(4);
    }

    #[test]
    fn stable_requery_preset() {
        let policy = RetryPolicy::stable_requery(10);
        assert_eq!(policy.votes, 11);
        assert_eq!(policy.max_attempts, 44);
        assert_eq!(policy.backoff, Backoff::Fixed(1));
    }
}
