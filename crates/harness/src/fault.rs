//! The seeded fault process applied to oracle readings.
//!
//! Faults are a pure function of `(fault seed, challenge bits, attempt
//! index)`: the decision for a given reading never depends on wall
//! clock, scheduling, or a shared RNG stream, so the same seed yields
//! bit-identical fault behavior at any thread count — the same
//! discipline `mlam-par` imposes on task seeds. A second entry point,
//! [`FaultModel::roll_with_rng`], draws the decision from a
//! caller-provided RNG instead; it is exactly as deterministic as that
//! RNG stream, which in the split-seeded CRP collectors is again a pure
//! function of `(root seed, task index)`.
//!
//! Three fault kinds model the failure modes of real CRP acquisition:
//!
//! - [`Fault::Flip`] — the response bit is inverted (metastability,
//!   read noise); retrying or majority voting can mask it because the
//!   flip decision is independent per attempt;
//! - [`Fault::Drop`] — the reading is lost (timeout, bus error);
//!   independent per attempt, so bounded retry recovers;
//! - [`Fault::Outage`] — the device is transiently unavailable *for
//!   this challenge*: the first [`FaultModel::outage_attempts`]
//!   attempts fail deterministically, then service resumes — retry
//!   with backoff rides it out.
//!
//! Every injected fault increments the matching `oracle.fault.*`
//! counter, so run manifests record the exact fault history and
//! `mlam-trace compare` can hold it bit-identical across runs.

use mlam_boolean::BitVec;
use mlam_par::splitmix64;
use mlam_telemetry::counter;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One injected fault on a single oracle reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The response bit is inverted.
    Flip,
    /// The reading is lost; the attacker observes a timeout.
    Drop,
    /// The device is transiently unavailable for this challenge.
    Outage,
}

/// The fault decision for one reading — either clean or a [`Fault`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultOutcome(pub Option<Fault>);

impl FaultOutcome {
    /// Applies the outcome to the raw response bit: `None` when the
    /// reading was lost ([`Fault::Drop`] / [`Fault::Outage`]),
    /// otherwise the (possibly flipped) bit.
    pub fn apply(self, raw: bool) -> Option<bool> {
        match self.0 {
            None => Some(raw),
            Some(Fault::Flip) => Some(!raw),
            Some(Fault::Drop) | Some(Fault::Outage) => None,
        }
    }

    /// Whether the reading survives (possibly flipped).
    pub fn is_reading(self) -> bool {
        !matches!(self.0, Some(Fault::Drop) | Some(Fault::Outage))
    }
}

/// A seeded, deterministic model of unreliable oracle access.
///
/// All rates are probabilities in `[0, 1]`. The model is inert (and
/// skipped entirely) when every rate is zero — wrapping an oracle with
/// [`FaultModel::reliable`] changes neither results nor counters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Root seed of the fault process. Two models with the same seed
    /// and rates inject bit-identical faults.
    pub seed: u64,
    /// Per-reading probability that the response bit is inverted.
    pub flip_rate: f64,
    /// Per-reading probability that the reading is lost.
    pub drop_rate: f64,
    /// Per-challenge probability that the oracle starts in a transient
    /// outage for that challenge.
    pub outage_rate: f64,
    /// How many attempts an outage lasts before service resumes.
    pub outage_attempts: u32,
}

impl FaultModel {
    /// A fault-free model: every reading is clean.
    pub fn reliable() -> FaultModel {
        FaultModel {
            seed: 0,
            flip_rate: 0.0,
            drop_rate: 0.0,
            outage_rate: 0.0,
            outage_attempts: 0,
        }
    }

    /// A model with response flips and dropped readings.
    ///
    /// # Panics
    ///
    /// Panics if a rate is outside `[0, 1]`.
    pub fn new(seed: u64, flip_rate: f64, drop_rate: f64) -> FaultModel {
        assert!((0.0..=1.0).contains(&flip_rate), "flip rate in [0,1]");
        assert!((0.0..=1.0).contains(&drop_rate), "drop rate in [0,1]");
        FaultModel {
            seed,
            flip_rate,
            drop_rate,
            outage_rate: 0.0,
            outage_attempts: 0,
        }
    }

    /// Adds transient per-challenge outages lasting `attempts` reads.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_outages(mut self, rate: f64, attempts: u32) -> FaultModel {
        assert!((0.0..=1.0).contains(&rate), "outage rate in [0,1]");
        self.outage_rate = rate;
        self.outage_attempts = attempts;
        self
    }

    /// Whether the model can never inject a fault.
    pub fn is_reliable(&self) -> bool {
        self.flip_rate == 0.0 && self.drop_rate == 0.0 && self.outage_rate == 0.0
    }

    /// Draws the fault decision for reading `attempt` of `challenge`.
    ///
    /// Pure in `(seed, challenge, attempt)`; increments the matching
    /// `oracle.fault.*` counter when a fault is injected.
    pub fn roll(&self, challenge: &BitVec, attempt: u32) -> FaultOutcome {
        if self.is_reliable() {
            return FaultOutcome(None);
        }
        let cell = splitmix64(self.seed ^ splitmix64(challenge_fingerprint(challenge)));
        // The outage decision is per challenge — attempts below the
        // outage length fail, later ones see a recovered device.
        if unit(splitmix64(cell ^ OUTAGE_DOMAIN)) < self.outage_rate
            && attempt < self.outage_attempts
        {
            return record(Fault::Outage);
        }
        let per_attempt = splitmix64(cell ^ splitmix64(ATTEMPT_DOMAIN ^ u64::from(attempt)));
        if unit(splitmix64(per_attempt ^ DROP_DOMAIN)) < self.drop_rate {
            return record(Fault::Drop);
        }
        if unit(splitmix64(per_attempt ^ FLIP_DOMAIN)) < self.flip_rate {
            return record(Fault::Flip);
        }
        FaultOutcome(None)
    }

    /// Draws a fault decision from `rng` instead of the challenge —
    /// the device-level variant used inside noisy PUF evaluation,
    /// where repeated reads of the same challenge must see independent
    /// faults. Consumes exactly one `u64` from the stream (zero when
    /// the model [`is_reliable`](FaultModel::is_reliable)).
    pub fn roll_with_rng<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultOutcome {
        if self.is_reliable() {
            return FaultOutcome(None);
        }
        let h: u64 = rng.gen();
        if unit(splitmix64(h ^ OUTAGE_DOMAIN)) < self.outage_rate {
            return record(Fault::Outage);
        }
        if unit(splitmix64(h ^ DROP_DOMAIN)) < self.drop_rate {
            return record(Fault::Drop);
        }
        if unit(splitmix64(h ^ FLIP_DOMAIN)) < self.flip_rate {
            return record(Fault::Flip);
        }
        FaultOutcome(None)
    }

    /// The flip-only decision for reading `attempt` of `challenge` —
    /// the "last gasp" reading an attacker records after exhausting
    /// retries: it cannot be dropped, but it can still be wrong.
    pub fn flip_last_gasp(&self, challenge: &BitVec, attempt: u32) -> bool {
        if self.flip_rate == 0.0 {
            return false;
        }
        let cell = splitmix64(self.seed ^ splitmix64(challenge_fingerprint(challenge)));
        let per_attempt = splitmix64(cell ^ splitmix64(ATTEMPT_DOMAIN ^ u64::from(attempt)));
        if unit(splitmix64(per_attempt ^ FLIP_DOMAIN)) < self.flip_rate {
            record(Fault::Flip);
            return true;
        }
        false
    }
}

const OUTAGE_DOMAIN: u64 = 0x0u64.wrapping_sub(0x61);
const ATTEMPT_DOMAIN: u64 = 0xA77E_3997_0000_0000;
const DROP_DOMAIN: u64 = 0x0u64.wrapping_sub(0x62);
const FLIP_DOMAIN: u64 = 0x0u64.wrapping_sub(0x63);

fn record(fault: Fault) -> FaultOutcome {
    match fault {
        Fault::Flip => counter!("oracle.fault.flipped", 1),
        Fault::Drop => counter!("oracle.fault.dropped", 1),
        Fault::Outage => counter!("oracle.fault.unavailable", 1),
    }
    FaultOutcome(Some(fault))
}

/// Mixes the bits of a challenge into a 64-bit fingerprint via
/// [`splitmix64`] over its backing words and length. Equal challenges
/// always collide (by design — faults are keyed on challenge content);
/// distinct challenges collide with probability ≈ 2⁻⁶⁴.
pub fn challenge_fingerprint(challenge: &BitVec) -> u64 {
    let mut h = splitmix64(challenge.len() as u64);
    for &word in challenge.words() {
        h = splitmix64(h ^ word);
    }
    h
}

/// Maps a `u64` to a float in `[0, 1)` using the top 53 bits.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn challenges(count: usize, n: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| BitVec::random(n, &mut rng)).collect()
    }

    #[test]
    fn reliable_model_never_faults() {
        let model = FaultModel::reliable();
        for c in challenges(64, 32, 1) {
            for attempt in 0..4 {
                assert_eq!(model.roll(&c, attempt), FaultOutcome(None));
            }
        }
        assert!(model.is_reliable());
    }

    #[test]
    fn rolls_are_pure_in_seed_challenge_attempt() {
        let model = FaultModel::new(9, 0.3, 0.2).with_outages(0.1, 3);
        for c in challenges(128, 48, 2) {
            for attempt in 0..6 {
                assert_eq!(model.roll(&c, attempt), model.roll(&c, attempt));
            }
        }
    }

    #[test]
    fn empirical_rates_track_configured_rates() {
        let model = FaultModel::new(77, 0.25, 0.10);
        let mut flips = 0usize;
        let mut drops = 0usize;
        let total = 4000;
        for c in challenges(total, 64, 3) {
            match model.roll(&c, 0).0 {
                Some(Fault::Flip) => flips += 1,
                Some(Fault::Drop) => drops += 1,
                _ => {}
            }
        }
        let flip_rate = flips as f64 / total as f64;
        let drop_rate = drops as f64 / total as f64;
        // Drops shadow flips, so the observed flip rate is ~0.25 * 0.9.
        assert!((flip_rate - 0.225).abs() < 0.03, "flip rate {flip_rate}");
        assert!((drop_rate - 0.10).abs() < 0.03, "drop rate {drop_rate}");
    }

    #[test]
    fn outages_end_after_configured_attempts() {
        let model = FaultModel::new(5, 0.0, 0.0).with_outages(1.0, 2);
        let c = BitVec::ones(16);
        assert_eq!(model.roll(&c, 0), FaultOutcome(Some(Fault::Outage)));
        assert_eq!(model.roll(&c, 1), FaultOutcome(Some(Fault::Outage)));
        assert_eq!(model.roll(&c, 2), FaultOutcome(None));
    }

    #[test]
    fn flips_are_independent_per_attempt() {
        // With a 50% flip rate, a challenge whose attempt-0 reading
        // flips must not flip on *every* attempt.
        let model = FaultModel::new(13, 0.5, 0.0);
        let mut saw_differing_attempts = false;
        for c in challenges(64, 32, 4) {
            let pattern: Vec<bool> = (0..8)
                .map(|a| model.roll(&c, a) == FaultOutcome(Some(Fault::Flip)))
                .collect();
            if pattern.iter().any(|&f| f) && pattern.iter().any(|&f| !f) {
                saw_differing_attempts = true;
                break;
            }
        }
        assert!(saw_differing_attempts, "flips must vary across attempts");
    }

    #[test]
    fn rng_rolls_follow_the_stream() {
        let model = FaultModel::new(0, 0.4, 0.2);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for _ in 0..256 {
            assert_eq!(model.roll_with_rng(&mut a), model.roll_with_rng(&mut b));
        }
    }

    #[test]
    fn reliable_rng_rolls_consume_nothing() {
        let reliable = FaultModel::reliable();
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            assert_eq!(reliable.roll_with_rng(&mut a), FaultOutcome(None));
        }
        let mut untouched = StdRng::seed_from_u64(11);
        assert_eq!(a.gen::<u64>(), untouched.gen::<u64>());
    }

    #[test]
    fn fingerprint_separates_challenges() {
        let mut seen = std::collections::HashSet::new();
        for c in challenges(2048, 96, 6) {
            seen.insert(challenge_fingerprint(&c));
        }
        assert_eq!(seen.len(), 2048, "fingerprint collisions");
        // Length participates: a zero vector of 8 bits differs from 16.
        assert_ne!(
            challenge_fingerprint(&BitVec::zeros(8)),
            challenge_fingerprint(&BitVec::zeros(16))
        );
    }

    #[test]
    fn apply_maps_outcomes() {
        assert_eq!(FaultOutcome(None).apply(true), Some(true));
        assert_eq!(FaultOutcome(Some(Fault::Flip)).apply(true), Some(false));
        assert_eq!(FaultOutcome(Some(Fault::Drop)).apply(true), None);
        assert_eq!(FaultOutcome(Some(Fault::Outage)).apply(false), None);
    }
}
