//! Fault injection and recovery for unreliable oracles — the
//! `mlam-harness` layer.
//!
//! The paper defines adversary models by the *access type* granted to
//! the attacker (random examples vs. membership/equivalence queries,
//! Section IV), but real CRP acquisition is neither perfect nor
//! uninterruptible: silicon responses flip near the metastable point,
//! measurement channels drop queries, and devices go transiently
//! unavailable. The paper's own experiments work on "noiseless and
//! stable CRPs" precisely because the raw access is unreliable.
//!
//! This crate makes that unreliability a first-class, *seeded* part of
//! the adversary model:
//!
//! - [`FaultModel`] — a deterministic fault process (response flips,
//!   dropped queries, transient outages) keyed on the challenge bits
//!   and a fault seed via [`mlam_par::splitmix64`], so the same seed
//!   produces bit-identical faults at any thread count;
//! - [`RetryPolicy`] and [`Backoff`] — bounded retry with
//!   deterministic backoff schedules, and k-of-n majority voting over
//!   repeated readings (the repetition/majority querying used by
//!   active-learning PUF attacks);
//! - [`recover`] — the generic retry/vote executor shared by the
//!   oracle adapters in `mlam-learn` ([`UnreliableOracle`]) and the
//!   device wrapper in `mlam-puf` (`UnreliablePuf`).
//!
//! Everything is observable: injected faults count under
//! `oracle.fault.*` and recovery work under `harness.retry.*`, so
//! `mlam-trace compare` can verify that two same-seed runs saw
//! *exactly* the same faults.
//!
//! [`UnreliableOracle`]: https://docs.rs/mlam-learn
//!
//! # Example
//!
//! ```
//! use mlam_harness::{recover, Backoff, FaultModel, RetryPolicy};
//! use mlam_boolean::BitVec;
//!
//! // 20% response flips, 10% dropped queries, seeded.
//! let faults = FaultModel::new(5, 0.2, 0.1);
//! let policy = RetryPolicy::retries(8)
//!     .with_votes(3)
//!     .with_backoff(Backoff::Exponential { base: 1, cap: 8 });
//! let challenge = BitVec::ones(16);
//! // The true response is `true`; readings pass through the fault model.
//! let result = recover(&policy, |attempt| {
//!     faults.roll(&challenge, attempt).apply(true)
//! });
//! // Majority voting over three readings recovers the true bit here.
//! assert_eq!(result, Ok(true));
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod retry;

pub use fault::{challenge_fingerprint, Fault, FaultModel, FaultOutcome};
pub use retry::{recover, Backoff, QueryError, RetryPolicy};
