//! The RocknRoll scenario (paper, Sections III-A and V-B, after \[17\]):
//! XOR Arbiter PUFs with many — but *correlated* — chains are modeled
//! at ≈75 % accuracy by uniform-distribution improper learners, without
//! contradicting the distribution-free hardness bound of \[9\].
//!
//! The sweep manufactures `k`-XOR devices at increasing chain
//! correlation and attacks each with (a) the single-LTF Perceptron
//! over Φ (improperly representing the k-chain device by one chain) and
//! (b) the low-degree LMN algorithm. Both attacks operate in the
//! uniform-distribution, improper setting, so
//! [`AdversaryModel::comparability`] certifies their results as
//! *incomparable* with the \[9\] claim — which the experiment's last
//! column prints.

use crate::adversary::AdversaryModel;
use crate::report::{pct, Table};
use mlam_learn::dataset::LabeledSet;
use mlam_learn::features::ArbiterPhiFeatures;
use mlam_learn::lmn::{lmn_learn, LmnConfig};
use mlam_learn::perceptron::Perceptron;
use mlam_puf::CorrelatedXorArbiterPuf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the RocknRoll sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RocknRollParams {
    /// Stage count.
    pub n: usize,
    /// Chain count — deliberately `≫ √(ln n)`.
    pub k: usize,
    /// Deviation values from correlated (small) to independent (large).
    pub deviations: Vec<f64>,
    /// Training CRPs.
    pub train_size: usize,
    /// Test CRPs.
    pub test_size: usize,
    /// LMN degree.
    pub lmn_degree: usize,
}

impl RocknRollParams {
    /// Full scale: the paper's `k ≫ ln n` regime.
    pub fn paper() -> Self {
        RocknRollParams {
            n: 32,
            k: 8,
            deviations: vec![0.05, 0.1, 0.2, 0.4, 0.8, 2.0],
            train_size: 12_000,
            test_size: 5_000,
            lmn_degree: 2,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        RocknRollParams {
            n: 20,
            k: 5,
            deviations: vec![0.1, 2.0],
            train_size: 5_000,
            test_size: 2_500,
            lmn_degree: 2,
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RocknRollRow {
    /// Per-chain deviation.
    pub deviation: f64,
    /// Measured mean pairwise chain correlation.
    pub chain_correlation: f64,
    /// Perceptron-over-Φ test accuracy.
    pub perceptron_accuracy: f64,
    /// LMN test accuracy.
    pub lmn_accuracy: f64,
}

/// Result of the RocknRoll sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RocknRollResult {
    /// The parameters.
    pub params: RocknRollParams,
    /// One row per deviation value.
    pub rows: Vec<RocknRollRow>,
    /// Whether the attacks' setting is comparable with the \[9\] claim
    /// (always `false` — that is the point).
    pub comparable_with_hardness_claim: bool,
}

impl RocknRollResult {
    /// Renders the sweep.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "RocknRoll scenario: {}-chain XOR APUF (n={}), correlated -> independent",
                self.params.k, self.params.n
            ),
            &[
                "deviation",
                "chain correlation",
                "Perceptron/Phi [%]",
                "LMN [%]",
            ],
        );
        for r in &self.rows {
            t.row(&[
                format!("{:.2}", r.deviation),
                format!("{:.2}", r.chain_correlation),
                pct(r.perceptron_accuracy),
                pct(r.lmn_accuracy),
            ]);
        }
        t
    }
}

/// Runs the sweep.
pub fn run_rocknroll<R: Rng + ?Sized>(params: &RocknRollParams, rng: &mut R) -> RocknRollResult {
    let _span = mlam_telemetry::span("experiment.rocknroll");
    let rows = params
        .deviations
        .iter()
        .map(|&deviation| {
            let puf = CorrelatedXorArbiterPuf::sample(params.n, params.k, deviation, 0.0, rng);
            let chain_correlation = puf.chain_correlation(2000, rng);
            let train = LabeledSet::sample_par(&puf, params.train_size, rng);
            let test = LabeledSet::sample_par(&puf, params.test_size, rng);
            let perc = Perceptron::new(60).train_with(ArbiterPhiFeatures::new(params.n), &train);
            let lmn = lmn_learn(&train, LmnConfig::new(params.lmn_degree));
            RocknRollRow {
                deviation,
                chain_correlation,
                perceptron_accuracy: test.accuracy_of_par(&perc.model),
                lmn_accuracy: test.accuracy_of_par(&lmn.hypothesis),
            }
        })
        .collect();

    // The attack setting vs the [9] claim setting.
    let claim = AdversaryModel::distribution_free_claim();
    let attack = AdversaryModel::uniform_example_attack();
    RocknRollResult {
        params: params.clone(),
        rows,
        comparable_with_hardness_claim: claim.comparability(&attack).is_comparable(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correlated_chains_are_learnable_independent_are_not() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_rocknroll(&RocknRollParams::quick(), &mut rng);
        let correlated = &result.rows[0];
        let independent = result.rows.last().expect("rows");
        // Correlated: well above chance (the paper's ≈75 % regime).
        let best_corr = correlated.perceptron_accuracy.max(correlated.lmn_accuracy);
        assert!(
            best_corr > 0.68,
            "correlated device must be learnable: {best_corr}"
        );
        // Independent at k=5: both uniform learners stuck near chance.
        let best_indep = independent
            .perceptron_accuracy
            .max(independent.lmn_accuracy);
        assert!(
            best_indep < best_corr - 0.1,
            "independent {best_indep} vs correlated {best_corr}"
        );
    }

    #[test]
    fn result_is_flagged_incomparable_with_the_hardness_claim() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_rocknroll(&RocknRollParams::quick(), &mut rng);
        assert!(!result.comparable_with_hardness_claim);
    }

    #[test]
    fn correlation_column_tracks_deviation() {
        let mut rng = StdRng::seed_from_u64(3);
        let result = run_rocknroll(&RocknRollParams::quick(), &mut rng);
        assert!(result.rows[0].chain_correlation > result.rows[1].chain_correlation);
    }

    #[test]
    fn table_renders() {
        let mut rng = StdRng::seed_from_u64(4);
        let result = run_rocknroll(&RocknRollParams::quick(), &mut rng);
        assert!(result.to_table().to_string().contains("RocknRoll"));
    }
}
