//! Experiment drivers reproducing every table of the paper, plus the
//! extension experiments and ablations inventoried in `DESIGN.md`.
//!
//! Each driver exposes a `Params` struct with two constructors —
//! `paper()` (full scale, used by the benchmark binaries) and `quick()`
//! (reduced scale, used by tests) — a typed result, and a rendering
//! into [`crate::report::Table`] that mirrors the paper's layout.

pub mod ablations;
pub mod ac0;
pub mod checkpoint;
pub mod corollary2;
pub mod exact_vs_approx;
pub mod fault_sweep;
pub mod interpose;
pub mod lockdown;
pub mod locking;
pub mod rocknroll;
pub mod sequential;
pub mod spectral;
pub mod table1;
pub mod table2;
pub mod table3;

pub use checkpoint::{CheckpointState, CheckpointStore, ExperimentJson, TableJson};
pub use fault_sweep::{run_fault_sweep, FaultSweepParams, FaultSweepResult, FaultSweepRow};
pub use table1::{run_table1, Table1Params, Table1Result};
pub use table2::{run_table2, Table2Params, Table2Result};
pub use table3::{run_table3, Table3Params, Table3Result};
