//! Table I: CRP upper bounds for PAC learning XOR Arbiter PUFs, in four
//! adversary models — plus an *empirical* cross-check that actually
//! runs the learners on simulated devices.

use crate::bounds::TableOne;
use crate::report::{eng, Table};
use mlam_boolean::{Anf, BooleanFunction};
use mlam_learn::dataset::LabeledSet;
use mlam_learn::eval::crps_to_accuracy;
use mlam_learn::f2poly::learn_low_degree_anf;
use mlam_learn::features::ArbiterPhiFeatures;
use mlam_learn::lmn::{lmn_learn, LmnConfig};
use mlam_learn::oracle::FunctionOracle;
use mlam_learn::perceptron::Perceptron;
use mlam_puf::XorArbiterPuf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the Table I reproduction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table1Params {
    /// Stage counts to tabulate.
    pub ns: Vec<usize>,
    /// Chain counts to tabulate.
    pub ks: Vec<usize>,
    /// Accuracy parameter ε.
    pub eps: f64,
    /// Confidence parameter δ.
    pub delta: f64,
    /// Whether to run the empirical cross-check (Perceptron/LMN on
    /// simulated devices).
    pub empirical: bool,
    /// CRP cap for the empirical search.
    pub empirical_max_crps: usize,
}

impl Table1Params {
    /// Full scale: the paper's working point `n = 64` plus context.
    pub fn paper() -> Self {
        Table1Params {
            ns: vec![16, 32, 64, 128],
            ks: vec![1, 2, 3, 4, 5, 6, 7],
            eps: 0.05,
            delta: 0.01,
            empirical: true,
            empirical_max_crps: 60_000,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        Table1Params {
            ns: vec![16, 32],
            ks: vec![1, 2],
            eps: 0.1,
            delta: 0.05,
            empirical: true,
            empirical_max_crps: 8_000,
        }
    }
}

/// One empirical cross-check measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalPoint {
    /// Stage count.
    pub n: usize,
    /// Chain count.
    pub k: usize,
    /// Learner name.
    pub learner: String,
    /// CRPs needed to reach accuracy `1 − ε` (None = budget exhausted).
    pub crps_needed: Option<usize>,
    /// The analytic bound it must respect.
    pub analytic_bound: f64,
}

/// Result of the Table I reproduction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// The analytic rows.
    pub bounds: Vec<TableOne>,
    /// Empirical cross-check points (empty when disabled).
    pub empirical: Vec<EmpiricalPoint>,
}

impl Table1Result {
    /// Renders the analytic part in the paper's layout.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Table I: CRP upper bounds for PAC learning n-bit k-XOR Arbiter PUFs",
            &[
                "n",
                "k",
                "[9] Perceptron (arbitrary D)",
                "General VC (uniform D)",
                "Cor.1 LMN log10(CRPs)",
                "Cor.2 LearnPoly (membership)",
            ],
        );
        for b in &self.bounds {
            t.row(&[
                b.n.to_string(),
                b.k.to_string(),
                eng(b.perceptron_bound),
                eng(b.general_bound),
                format!("{:.1}", b.lmn_bound_log10),
                eng(b.learnpoly_bound),
            ]);
        }
        t
    }

    /// Renders the empirical cross-check.
    pub fn empirical_table(&self) -> Table {
        let mut t = Table::new(
            "Table I (empirical cross-check): measured CRPs-to-(1-eps) vs. analytic bound",
            &["n", "k", "learner", "measured CRPs", "analytic bound"],
        );
        for e in &self.empirical {
            t.row(&[
                e.n.to_string(),
                e.k.to_string(),
                e.learner.clone(),
                e.crps_needed
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "> budget".into()),
                eng(e.analytic_bound),
            ]);
        }
        t
    }
}

/// Runs the Table I reproduction.
pub fn run_table1<R: Rng + ?Sized>(params: &Table1Params, rng: &mut R) -> Table1Result {
    let _span = mlam_telemetry::span("experiment.table1");
    let mut bounds = Vec::new();
    for &n in &params.ns {
        for &k in &params.ks {
            bounds.push(TableOne::compute(n, k, params.eps, params.delta));
        }
    }

    let mut empirical = Vec::new();
    if params.empirical {
        let target_acc = 1.0 - params.eps;
        for &n in params.ns.iter().take(2) {
            for &k in params.ks.iter().filter(|&&k| k <= 2) {
                let puf = XorArbiterPuf::sample(n, k, 0.0, rng);

                // Perceptron over Φ features (row 1's algorithm).
                let crps = crps_to_accuracy(
                    &puf,
                    target_acc,
                    64,
                    params.empirical_max_crps,
                    2000,
                    |train: &LabeledSet| {
                        Perceptron::new(80)
                            .train_with(ArbiterPhiFeatures::new(n), train)
                            .model
                    },
                    rng,
                );
                empirical.push(EmpiricalPoint {
                    n,
                    k,
                    learner: "Perceptron/Phi".into(),
                    crps_needed: crps,
                    analytic_bound: crate::bounds::perceptron_bound(n, k, params.eps, params.delta),
                });

                // LMN at low degree (row 3's algorithm) — only viable
                // for k = 1 at test scale, which is the point.
                if k == 1 && n <= 32 {
                    let crps = crps_to_accuracy(
                        &puf,
                        target_acc,
                        512,
                        params.empirical_max_crps,
                        2000,
                        |train: &LabeledSet| lmn_learn(train, LmnConfig::new(3)).hypothesis,
                        rng,
                    );
                    empirical.push(EmpiricalPoint {
                        n,
                        k,
                        learner: "LMN(d=3)".into(),
                        crps_needed: crps,
                        analytic_bound: 10f64.powf(
                            crate::bounds::lmn_bound_log10(n, k, params.eps, params.delta)
                                .min(300.0),
                        ),
                    });
                }
            }
        }

        // Row 4's algorithm on its natural concept class: XOR of small
        // juntas learned exactly with membership queries.
        let n = *params.ns.first().expect("non-empty ns");
        let target = Anf::from_monomials(n.min(63), [0b11u64, 0b100, (1u64 << (n.min(63) - 1))]);
        let t2 = target.clone();
        let f = mlam_boolean::FnFunction::new(n.min(63), move |x| t2.eval(x));
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_low_degree_anf(&oracle, 2);
        empirical.push(EmpiricalPoint {
            n: n.min(63),
            k: 3,
            learner: "LearnPoly/Mobius(d=2)".into(),
            crps_needed: Some(out.membership_queries),
            analytic_bound: crate::bounds::learnpoly_bound(n.min(63), 3, params.eps, params.delta),
        });
    }

    Table1Result { bounds, empirical }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quick_run_produces_all_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_table1(&Table1Params::quick(), &mut rng);
        assert_eq!(result.bounds.len(), 4); // 2 ns × 2 ks
        assert!(!result.empirical.is_empty());
        let t = result.to_table();
        assert_eq!(t.num_rows(), 4);
    }

    #[test]
    fn empirical_perceptron_respects_its_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_table1(&Table1Params::quick(), &mut rng);
        for e in result
            .empirical
            .iter()
            .filter(|e| e.learner.starts_with("Perceptron"))
        {
            if let Some(crps) = e.crps_needed {
                assert!(
                    (crps as f64) < e.analytic_bound,
                    "n={} k={}: measured {} >= bound {}",
                    e.n,
                    e.k,
                    crps,
                    e.analytic_bound
                );
            }
        }
    }

    #[test]
    fn bound_ordering_holds_for_paper_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = Table1Params {
            empirical: false,
            ..Table1Params::paper()
        };
        let result = run_table1(&params, &mut rng);
        for b in &result.bounds {
            if b.k >= 2 {
                assert!(
                    b.general_bound < b.perceptron_bound,
                    "VC must undercut Perceptron at n={} k={}",
                    b.n,
                    b.k
                );
            }
        }
    }

    #[test]
    fn tables_render() {
        let mut rng = StdRng::seed_from_u64(4);
        let result = run_table1(&Table1Params::quick(), &mut rng);
        let text = result.to_table().to_string();
        assert!(text.contains("Perceptron"));
        let emp = result.empirical_table().to_string();
        assert!(emp.contains("measured"));
    }
}
