//! Uniform-distribution PAC learning of AC⁰ circuits — the learnability
//! fact behind the paper's Section III discussion of logic locking.
//!
//! The paper: distribution-free learning of `AC⁰` cannot beat
//! `2^{n−n^{Ω(1/d)}}` \[15\], but under the **uniform** distribution the
//! LMN algorithm learns it in quasi-polynomial time \[16\] — so every
//! "random input/output pairs" security analysis of locked circuits
//! implicitly lives in the uniform-PAC world.
//!
//! The experiment generates depth-bounded circuits with the netlist
//! generator, learns their output functions with LMN at modest degree
//! from uniform examples, and contrasts with parity (the classic
//! function *outside* AC⁰), which LMN provably cannot see at low
//! degree.

use crate::report::{pct, Table};
use mlam_boolean::{BitVec, BooleanFunction};
use mlam_learn::dataset::LabeledSet;
use mlam_learn::lmn::{lmn_learn, LmnConfig};
use mlam_netlist::generate::{ac0_circuit, parity_tree};
use mlam_netlist::Netlist;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the AC⁰ learnability experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ac0Params {
    /// Input count of the generated circuits.
    pub inputs: usize,
    /// Circuit depths to sweep.
    pub depths: Vec<usize>,
    /// Width of the first AC⁰ layer.
    pub width: usize,
    /// LMN degree.
    pub degree: usize,
    /// Training examples.
    pub train_size: usize,
    /// Test examples.
    pub test_size: usize,
    /// Circuits per depth (averaged).
    pub trials: usize,
}

impl Ac0Params {
    /// Full scale.
    pub fn paper() -> Self {
        Ac0Params {
            inputs: 16,
            depths: vec![2, 3, 4],
            width: 12,
            degree: 3,
            train_size: 20_000,
            test_size: 5_000,
            trials: 3,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        Ac0Params {
            inputs: 12,
            depths: vec![2, 3],
            width: 8,
            degree: 3,
            train_size: 8_000,
            test_size: 3_000,
            trials: 2,
        }
    }
}

/// One sweep row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ac0Row {
    /// Label ("AC0 depth d" or "parity").
    pub target: String,
    /// Mean LMN test accuracy.
    pub lmn_accuracy: f64,
    /// Mean low-degree spectral weight captured (≈1 ⇒ the LMN theorem's
    /// concentration hypothesis holds).
    pub captured_weight: f64,
}

/// Result of the AC⁰ experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ac0Result {
    /// One row per depth, plus the parity control.
    pub rows: Vec<Ac0Row>,
}

impl Ac0Result {
    /// Renders the sweep.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Uniform PAC learning of AC0 circuits via LMN (Section III)",
            &["target", "LMN accuracy [%]", "low-degree weight"],
        );
        for r in &self.rows {
            t.row(&[
                r.target.clone(),
                pct(r.lmn_accuracy),
                format!("{:.3}", r.captured_weight),
            ]);
        }
        t
    }
}

/// Adapter: one output of a netlist as a [`BooleanFunction`].
struct NetlistOutput<'a> {
    netlist: &'a Netlist,
}

impl BooleanFunction for NetlistOutput<'_> {
    fn num_inputs(&self) -> usize {
        self.netlist.num_inputs()
    }
    fn eval(&self, x: &BitVec) -> bool {
        self.netlist.simulate(&x.to_bools())[0]
    }
}

/// Runs the AC⁰ experiment.
pub fn run_ac0<R: Rng + ?Sized>(params: &Ac0Params, rng: &mut R) -> Ac0Result {
    let _span = mlam_telemetry::span("experiment.ac0");
    let mut rows = Vec::new();
    for &depth in &params.depths {
        let mut acc = 0.0;
        let mut weight = 0.0;
        for _ in 0..params.trials {
            let circuit = ac0_circuit(params.inputs, depth, params.width, rng);
            let f = NetlistOutput { netlist: &circuit };
            let train = LabeledSet::sample_par(&f, params.train_size, rng);
            let test = LabeledSet::sample_par(&f, params.test_size, rng);
            let out = lmn_learn(&train, LmnConfig::new(params.degree));
            acc += test.accuracy_of_par(&out.hypothesis);
            weight += out.captured_weight.min(1.0);
        }
        rows.push(Ac0Row {
            target: format!("AC0 depth {depth}"),
            lmn_accuracy: acc / params.trials as f64,
            captured_weight: weight / params.trials as f64,
        });
    }

    // Control: parity is outside AC0; LMN at any fixed degree fails.
    let parity = parity_tree(params.inputs);
    let f = NetlistOutput { netlist: &parity };
    let train = LabeledSet::sample_par(&f, params.train_size, rng);
    let test = LabeledSet::sample_par(&f, params.test_size, rng);
    let out = lmn_learn(&train, LmnConfig::new(params.degree));
    rows.push(Ac0Row {
        target: format!("parity ({} bits, not AC0)", params.inputs),
        lmn_accuracy: test.accuracy_of_par(&out.hypothesis),
        captured_weight: out.captured_weight.min(1.0),
    });

    Ac0Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ac0_is_learnable_parity_is_not() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_ac0(&Ac0Params::quick(), &mut rng);
        let parity_row = result.rows.last().expect("rows");
        assert!(
            parity_row.lmn_accuracy < 0.6,
            "parity must defeat low-degree LMN: {}",
            parity_row.lmn_accuracy
        );
        assert!(parity_row.captured_weight < 0.2);
        for r in &result.rows[..result.rows.len() - 1] {
            assert!(
                r.lmn_accuracy > 0.85,
                "{}: LMN accuracy {}",
                r.target,
                r.lmn_accuracy
            );
            assert!(
                r.lmn_accuracy > parity_row.lmn_accuracy + 0.2,
                "AC0 must be far more learnable than parity"
            );
        }
    }

    #[test]
    fn spectral_concentration_explains_the_accuracy() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_ac0(&Ac0Params::quick(), &mut rng);
        for r in &result.rows[..result.rows.len() - 1] {
            assert!(
                r.captured_weight > 0.6,
                "{}: captured weight {}",
                r.target,
                r.captured_weight
            );
        }
    }

    #[test]
    fn table_renders() {
        let mut rng = StdRng::seed_from_u64(3);
        let result = run_ac0(&Ac0Params::quick(), &mut rng);
        assert!(result.to_table().to_string().contains("AC0"));
    }
}
