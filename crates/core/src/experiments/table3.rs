//! Table III: how far are BR PUFs from every halfspace? The
//! Matulef–O'Donnell–Rubinfeld–Servedio tester on simulated BR PUF
//! CRPs.

use crate::report::{pct, Table};
use mlam_boolean::testing::{HalfspaceTester, Verdict, HALFSPACE_LEVEL_ONE_FLOOR};
use mlam_puf::crp::collect_uniform;
use mlam_puf::{BistableRingPuf, BrPufConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the Table III reproduction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table3Params {
    /// `(n, #CRPs)` pairs — the paper uses (16, 100), (32, 1339),
    /// (64, 63434).
    pub points: Vec<(usize, usize)>,
    /// Tester accuracy parameter ε.
    pub eps: f64,
    /// Tester confidence δ (paper: 0.99).
    pub delta: f64,
}

impl Table3Params {
    /// The paper's working points.
    pub fn paper() -> Self {
        Table3Params {
            points: vec![(16, 100), (32, 1339), (64, 63_434)],
            eps: 0.1,
            delta: 0.99,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        Table3Params {
            points: vec![(16, 100), (32, 1339), (64, 8000)],
            eps: 0.1,
            delta: 0.95,
        }
    }
}

/// One Table III row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// BR PUF size.
    pub n: usize,
    /// CRPs given to the tester.
    pub crps: usize,
    /// Constructive distance estimate: held-out disagreement of the
    /// best halfspace the tester could build — the "how far from any
    /// halfspace (min)" column.
    pub distance: f64,
    /// Spectral certificate: a lower bound on the distance from the
    /// level-≤1 Fourier weight.
    pub spectral_lower_bound: f64,
    /// The tester's verdict.
    pub far_from_halfspace: bool,
}

/// Result of the Table III reproduction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table3Result {
    /// One row per `(n, #CRPs)` point.
    pub rows: Vec<Table3Row>,
}

impl Table3Result {
    /// Renders in the paper's layout.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Table III: how far BR PUFs are from LTFs (halfspace tester, delta = 0.99)",
            &[
                "n",
                "# CRPs",
                "distance from any halfspace (min.) [%]",
                "spectral lower bound [%]",
                "verdict",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.n.to_string(),
                r.crps.to_string(),
                pct(r.distance),
                pct(r.spectral_lower_bound),
                if r.far_from_halfspace {
                    "far from halfspace".into()
                } else {
                    "halfspace".into()
                },
            ]);
        }
        t
    }
}

/// The spectral distance certificate: if a function is ε-close to some
/// halfspace then its level-≤1 weight satisfies
/// `W₁ ≥ (1−2ε)²·(2/π)` (project onto the halfspace's degree-≤1
/// spectrum); inverting gives `ε ≥ (1 − √(W₁/(2/π)))/2`.
pub fn spectral_distance_lower_bound(level_one_weight: f64) -> f64 {
    let ratio = (level_one_weight.max(0.0) / HALFSPACE_LEVEL_ONE_FLOOR).min(1.0);
    ((1.0 - ratio.sqrt()) / 2.0).max(0.0)
}

/// Runs the Table III reproduction.
pub fn run_table3<R: Rng + ?Sized>(params: &Table3Params, rng: &mut R) -> Table3Result {
    let _span = mlam_telemetry::span("experiment.table3");
    let tester = HalfspaceTester::new(params.eps, params.delta);
    let rows = params
        .points
        .iter()
        .map(|&(n, crps)| {
            let puf = BistableRingPuf::sample(n, BrPufConfig::calibrated(n), rng);
            let set = collect_uniform(&puf, crps, rng);
            let data = set.to_labeled();
            let report = tester.run(n, &data, rng);
            Table3Row {
                n,
                crps,
                distance: report.distance_estimate,
                spectral_lower_bound: spectral_distance_lower_bound(report.level_one_weight),
                far_from_halfspace: report.verdict == Verdict::FarFromHalfspace,
            }
        })
        .collect();
    Table3Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distances_are_substantial_and_grow_with_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_table3(&Table3Params::quick(), &mut rng);
        assert_eq!(result.rows.len(), 3);
        // Every BR PUF is measurably far from halfspaces...
        for r in &result.rows {
            assert!(
                r.distance > 0.05,
                "n={}: distance {} too small",
                r.n,
                r.distance
            );
        }
        // ...and the large instance is farther than the small one
        // (the paper's 20 % -> 50 % trend).
        let first = result.rows.first().expect("rows").distance;
        let last = result.rows.last().expect("rows").distance;
        assert!(
            last > first,
            "trend violated: n=16 -> {first}, n=64 -> {last}"
        );
    }

    #[test]
    fn large_sample_rows_are_flagged_far() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_table3(&Table3Params::quick(), &mut rng);
        // With thousands of CRPs the tester must reject the halfspace
        // hypothesis for the heavily nonlinear 64-bit device.
        let last = result.rows.last().expect("rows");
        assert!(last.far_from_halfspace, "{last:?}");
    }

    #[test]
    fn spectral_bound_inverts_correctly() {
        assert_eq!(
            spectral_distance_lower_bound(HALFSPACE_LEVEL_ONE_FLOOR),
            0.0
        );
        assert!((spectral_distance_lower_bound(0.0) - 0.5).abs() < 1e-12);
        let mid = spectral_distance_lower_bound(HALFSPACE_LEVEL_ONE_FLOOR / 4.0);
        assert!((mid - 0.25).abs() < 1e-12);
    }

    #[test]
    fn table_renders() {
        let mut rng = StdRng::seed_from_u64(3);
        let result = run_table3(&Table3Params::quick(), &mut rng);
        let text = result.to_table().to_string();
        assert!(text.contains("halfspace"));
    }
}
