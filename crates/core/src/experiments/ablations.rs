//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. **Nonlinearity sweep** — how the BR PUF interaction strength λ
//!    creates the Table II plateau;
//! 2. **Distribution shift** — the same learner trained on biased vs.
//!    uniform examples, evaluated uniformly (Section III's axis);
//! 3. **Proper vs. improper** — LTF surrogate vs. low-degree (LMN)
//!    hypothesis on the same BR PUF (Section V-B's axis);
//! 4. **Noise** — Perceptron vs. logistic regression vs. LMN under
//!    response noise (footnote 1's attribute-noise discussion).

use crate::report::{pct, Table};
use mlam_boolean::BooleanFunction;
use mlam_learn::chow::{table_ii_procedure, ChowConfig};
use mlam_learn::dataset::LabeledSet;
use mlam_learn::distribution::ChallengeDistribution;
use mlam_learn::lmn::{lmn_learn, LmnConfig};
use mlam_learn::logistic::{LogisticConfig, LogisticRegression};
use mlam_learn::perceptron::Perceptron;
use mlam_puf::crp::collect_noisy;
use mlam_puf::noise::ResponseNoise;
use mlam_puf::{ArbiterPuf, BistableRingPuf, BrPufConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters shared by the ablations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AblationParams {
    /// BR PUF size for ablations 1 and 3.
    pub br_n: usize,
    /// Pair-strength values for the nonlinearity sweep.
    pub lambdas: Vec<f64>,
    /// Training-set size.
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
    /// Bias values for the distribution-shift ablation.
    pub biases: Vec<f64>,
    /// Response-noise rates for the noise ablation.
    pub noise_rates: Vec<f64>,
}

impl AblationParams {
    /// Full scale.
    pub fn paper() -> Self {
        AblationParams {
            br_n: 32,
            lambdas: vec![0.0, 0.25, 0.5, 1.0, 2.0, 4.0],
            train_size: 8000,
            test_size: 4000,
            biases: vec![0.5, 0.7, 0.9],
            noise_rates: vec![0.0, 0.05, 0.1, 0.2],
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        AblationParams {
            br_n: 16,
            lambdas: vec![0.0, 1.0, 3.0],
            train_size: 2500,
            test_size: 1500,
            biases: vec![0.5, 0.9],
            noise_rates: vec![0.0, 0.2],
        }
    }
}

/// Results of all four ablations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// (λ, LTF-surrogate test accuracy).
    pub nonlinearity: Vec<(f64, f64)>,
    /// (training bias p, uniform-test accuracy).
    pub distribution_shift: Vec<(f64, f64)>,
    /// (hypothesis name, test accuracy) on the same calibrated BR PUF.
    pub representation: Vec<(String, f64)>,
    /// (noise rate, perceptron acc, logistic acc, lmn acc).
    pub noise: Vec<(f64, f64, f64, f64)>,
}

impl AblationResult {
    /// Renders all four ablations as tables.
    pub fn to_tables(&self) -> Vec<Table> {
        let mut t1 = Table::new(
            "Ablation 1: BR PUF nonlinearity λ vs. LTF-surrogate accuracy",
            &["lambda", "accuracy [%]"],
        );
        for (l, a) in &self.nonlinearity {
            t1.row(&[format!("{l:.2}"), pct(*a)]);
        }
        let mut t2 = Table::new(
            "Ablation 2: training distribution bias vs. uniform-test accuracy (Arbiter PUF)",
            &["train bias p", "accuracy [%]"],
        );
        for (p, a) in &self.distribution_shift {
            t2.row(&[format!("{p:.2}"), pct(*a)]);
        }
        let mut t3 = Table::new(
            "Ablation 3: proper (LTF) vs. improper (low-degree) hypothesis on one BR PUF",
            &["hypothesis", "accuracy [%]"],
        );
        for (name, a) in &self.representation {
            t3.row(&[name.clone(), pct(*a)]);
        }
        let mut t4 = Table::new(
            "Ablation 4: response noise vs. learner accuracy (Arbiter PUF)",
            &[
                "noise rate",
                "Perceptron [%]",
                "Logistic [%]",
                "LMN(d=1) [%]",
            ],
        );
        for (r, p, l, m) in &self.noise {
            t4.row(&[format!("{r:.2}"), pct(*p), pct(*l), pct(*m)]);
        }
        vec![t1, t2, t3, t4]
    }
}

/// Runs all four ablations.
pub fn run_ablations<R: Rng + ?Sized>(params: &AblationParams, rng: &mut R) -> AblationResult {
    let _span = mlam_telemetry::span("experiment.ablations");
    // 1. Nonlinearity sweep.
    let mut nonlinearity = Vec::new();
    for &lambda in &params.lambdas {
        let cfg = BrPufConfig {
            pair_strength: lambda,
            triple_strength: 0.0,
            noise_sigma: 0.0,
        };
        let puf = BistableRingPuf::sample(params.br_n, cfg, rng);
        let train = LabeledSet::sample_par(&puf, params.train_size, rng);
        let test = LabeledSet::sample_par(&puf, params.test_size, rng);
        let cell = table_ii_procedure(&train, &test, ChowConfig::default(), 40);
        nonlinearity.push((lambda, cell.test_accuracy));
    }

    // 2. Distribution shift: train on biased product examples, test
    // uniformly, same Arbiter PUF and learner.
    let mut distribution_shift = Vec::new();
    let apuf = ArbiterPuf::sample(32, 0.0, rng);
    let uniform_test = LabeledSet::sample_par(&apuf, params.test_size, rng);
    for &p in &params.biases {
        let dist = if (p - 0.5).abs() < 1e-9 {
            ChallengeDistribution::Uniform
        } else {
            ChallengeDistribution::ProductBiased(p)
        };
        let mut train = LabeledSet::new(32);
        for _ in 0..params.train_size {
            let x = dist.sample(32, rng);
            let y = apuf.eval(&x);
            train.push(x, y);
        }
        let out = Perceptron::new(60)
            .train_with(mlam_learn::features::ArbiterPhiFeatures::new(32), &train);
        distribution_shift.push((p, uniform_test.accuracy_of_par(&out.model)));
    }

    // 3. Proper vs. improper on the calibrated BR PUF.
    let mut representation = Vec::new();
    let br = BistableRingPuf::sample(params.br_n, BrPufConfig::calibrated(params.br_n), rng);
    let train = LabeledSet::sample_par(&br, params.train_size, rng);
    let test = LabeledSet::sample_par(&br, params.test_size, rng);
    let proper = table_ii_procedure(&train, &test, ChowConfig::default(), 40);
    representation.push(("proper: Chow LTF + Perceptron".into(), proper.test_accuracy));
    let improper = lmn_learn(&train, LmnConfig::new(2));
    representation.push((
        "improper: LMN degree-2 spectrum".into(),
        test.accuracy_of_par(&improper.hypothesis),
    ));

    // 4. Noise tolerance.
    let mut noise = Vec::new();
    let base = ArbiterPuf::sample(24, 0.0, rng);
    let clean_test = LabeledSet::sample_par(&base, params.test_size, rng);
    for &rate in &params.noise_rates {
        let noisy = ResponseNoise::new(base.clone(), rate);
        let set = collect_noisy(&noisy, params.train_size, rng);
        let train = LabeledSet::from_pairs(24, set.to_labeled());
        let phi = mlam_learn::features::ArbiterPhiFeatures::new(24);
        let perc = Perceptron::new(40).train_with(phi, &train);
        let logi = LogisticRegression::new(LogisticConfig::default()).train_phi(&train, rng);
        let lmn = lmn_learn(&train, LmnConfig::new(1));
        noise.push((
            rate,
            clean_test.accuracy_of_par(&perc.model),
            clean_test.accuracy_of_par(&logi.model),
            clean_test.accuracy_of_par(&lmn.hypothesis),
        ));
    }

    AblationResult {
        nonlinearity,
        distribution_shift,
        representation,
        noise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn result() -> AblationResult {
        let mut rng = StdRng::seed_from_u64(1);
        run_ablations(&AblationParams::quick(), &mut rng)
    }

    #[test]
    fn nonlinearity_degrades_ltf_accuracy_monotonically_ish() {
        let r = result();
        let first = r.nonlinearity.first().expect("points").1;
        let last = r.nonlinearity.last().expect("points").1;
        assert!(first > 0.93, "λ=0 must be ≈LTF-learnable, got {first}");
        assert!(
            last < first - 0.05,
            "strong λ must hurt the LTF surrogate: {first} -> {last}"
        );
    }

    #[test]
    fn distribution_shift_hurts_uniform_accuracy() {
        let r = result();
        let uniform = r.distribution_shift.first().expect("points").1;
        let biased = r.distribution_shift.last().expect("points").1;
        assert!(uniform > 0.9, "uniform training accuracy {uniform}");
        assert!(
            biased < uniform,
            "training on p=0.9 must transfer worse: {biased} vs {uniform}"
        );
    }

    #[test]
    fn noise_hurts_vanilla_perceptron_more_than_logistic() {
        let r = result();
        let (_, p_clean, l_clean, _) = r.noise.first().expect("points");
        let (_, p_noisy, l_noisy, _) = r.noise.last().expect("points");
        assert!(p_clean > &0.9 && l_clean > &0.9);
        // Logistic regression degrades more gracefully than the
        // mistake-driven perceptron at 20 % label noise.
        assert!(
            l_noisy + 0.03 >= *p_noisy,
            "logistic {l_noisy} vs perceptron {p_noisy}"
        );
    }

    #[test]
    fn tables_render() {
        let r = result();
        let tables = r.to_tables();
        assert_eq!(tables.len(), 4);
        assert!(tables[0].to_string().contains("lambda"));
    }
}
