//! The Interpose PUF under the adversary-model lens: representation is
//! everything.
//!
//! The iPUF composes two Arbiter layers: the upper layer's response is
//! *interposed* as an extra challenge bit of the lower layer. Its
//! security argument is representational (the paper's Section V axis):
//! the composition lies outside the single-LTF and XOR-of-LTFs classes,
//! so the standard Φ-linear attacks plateau.
//!
//! The experiment attacks one device twice with the *same CRPs, same
//! distribution, same access*:
//!
//! 1. **naive**: logistic regression over the n-bit Φ features — the
//!    wrong representation, which saturates well below the device;
//! 2. **composed**: CMA-ES over the joint parameter vector of both
//!    layers, evaluating candidates through the exact composition —
//!    the device-faithful representation, which recovers the function.
//!
//! The implementation exploits the interposition structure: flipping
//! the interposed bit negates exactly the Φ-prefix of the lower layer,
//! so the lower response is `sign(±prefix + suffix)` and each fitness
//! evaluation costs two dot products per CRP.

use crate::report::{pct, Table};
use mlam_learn::cma_es::{CmaEs, CmaEsOptions};
use mlam_learn::dataset::LabeledSet;
use mlam_learn::logistic::{LogisticConfig, LogisticRegression};
use mlam_puf::challenge::phi_transform;
use mlam_puf::InterposePuf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the iPUF experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InterposeParams {
    /// Challenge length.
    pub n: usize,
    /// Training CRPs.
    pub train_size: usize,
    /// Test CRPs.
    pub test_size: usize,
    /// CMA-ES generations.
    pub generations: usize,
    /// CMA-ES restarts.
    pub restarts: usize,
}

impl InterposeParams {
    /// Full scale: the classic (1,1)-iPUF at n = 32.
    pub fn paper() -> Self {
        InterposeParams {
            n: 32,
            train_size: 12_000,
            test_size: 4_000,
            generations: 600,
            restarts: 3,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        InterposeParams {
            n: 16,
            train_size: 4_000,
            test_size: 2_000,
            generations: 250,
            restarts: 2,
        }
    }
}

/// Result of the iPUF experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InterposeResult {
    /// Logistic regression over n-bit Φ (wrong representation).
    pub naive_accuracy: f64,
    /// CMA-ES over the composed two-layer model (faithful
    /// representation).
    pub composed_accuracy: f64,
    /// CMA-ES fitness evaluations spent.
    pub evaluations: usize,
}

impl InterposeResult {
    /// Renders the comparison.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Interpose PUF (1,1): representation decides the attack outcome",
            &["model", "accuracy [%]"],
        );
        t.row(&[
            "naive: logistic regression over Phi (single LTF)".into(),
            pct(self.naive_accuracy),
        ]);
        t.row(&[
            "composed: CMA-ES over both layers jointly".into(),
            pct(self.composed_accuracy),
        ]);
        t
    }
}

/// Per-CRP precomputation for the composed objective.
struct PreparedCrp {
    /// Φ features of the n-bit challenge (upper layer input).
    phi_upper: Vec<f64>,
    /// Φ features of the (n+1)-bit extension with interposed bit 0.
    phi_lower0: Vec<f64>,
    /// Device response in ±1.
    target: f64,
}

/// The composed model: upper weights (n+1) ++ lower weights (n+2).
struct ComposedModel {
    n: usize,
    position: usize,
    theta: Vec<f64>,
}

impl ComposedModel {
    fn upper_weights(&self) -> &[f64] {
        &self.theta[..self.n + 1]
    }
    fn lower_weights(&self) -> &[f64] {
        &self.theta[self.n + 1..]
    }

    fn predict_pm(&self, phi_upper: &[f64], phi_lower0: &[f64]) -> f64 {
        let up: f64 = self
            .upper_weights()
            .iter()
            .zip(phi_upper)
            .map(|(w, p)| w * p)
            .sum();
        // Interposed bit = 1 iff the upper delay is negative (logic 1).
        // Flipping the interposed bit (position p in the extended
        // challenge) negates the lower Φ features 0..=p.
        let wl = self.lower_weights();
        let mut pref = 0.0;
        let mut suff = 0.0;
        for (j, (w, p)) in wl.iter().zip(phi_lower0).enumerate() {
            if j <= self.position {
                pref += w * p;
            } else {
                suff += w * p;
            }
        }
        let low = if up < 0.0 { -pref + suff } else { pref + suff };
        if low < 0.0 {
            -1.0
        } else {
            1.0
        }
    }
}

/// Runs the iPUF representation experiment.
pub fn run_interpose<R: Rng + ?Sized>(params: &InterposeParams, rng: &mut R) -> InterposeResult {
    let _span = mlam_telemetry::span("experiment.interpose");
    let n = params.n;
    let puf = InterposePuf::sample(n, 1, 1, 0.0, rng);
    let position = puf.position();
    let train = LabeledSet::sample_par(&puf, params.train_size, rng);
    let test = LabeledSet::sample_par(&puf, params.test_size, rng);

    // 1. Naive: LR over the n-bit Φ features.
    let lr = LogisticRegression::new(LogisticConfig::default());
    let naive = lr.train_phi(&train, rng);
    let naive_accuracy = test.accuracy_of_par(&naive.model);

    // 2. Composed: CMA-ES over the joint parameters.
    let prepare = |set: &LabeledSet| -> Vec<PreparedCrp> {
        set.pairs()
            .iter()
            .map(|(c, r)| {
                let ext0 = puf.interpose(c, false);
                PreparedCrp {
                    phi_upper: phi_transform(c),
                    phi_lower0: phi_transform(&ext0),
                    target: mlam_boolean::to_pm(*r),
                }
            })
            .collect()
    };
    let prepared = prepare(&train);
    let d = (n + 1) + (n + 2);
    let objective = |theta: &[f64]| -> f64 {
        let model = ComposedModel {
            n,
            position,
            theta: theta.to_vec(),
        };
        let wrong = prepared
            .iter()
            .filter(|crp| model.predict_pm(&crp.phi_upper, &crp.phi_lower0) != crp.target)
            .count();
        wrong as f64 / prepared.len() as f64
    };
    let x0: Vec<f64> = (0..d).map(|_| 0.3 * gaussian(rng)).collect();
    let result = CmaEs::new(CmaEsOptions {
        max_generations: params.generations,
        restarts: params.restarts,
        target_fitness: 0.01,
        ..Default::default()
    })
    .minimize(&objective, &x0, rng);

    let best = ComposedModel {
        n,
        position,
        theta: result.best.clone(),
    };
    let test_prepared = prepare(&test);
    let correct = test_prepared
        .iter()
        .filter(|crp| best.predict_pm(&crp.phi_upper, &crp.phi_lower0) == crp.target)
        .count();
    let composed_accuracy = correct as f64 / test_prepared.len() as f64;

    InterposeResult {
        naive_accuracy,
        composed_accuracy,
        evaluations: result.evaluations,
    }
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>();
        if u > f64::EPSILON {
            let v: f64 = rng.gen();
            return (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_boolean::{BitVec, BooleanFunction};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn composed_model_matches_the_device_structure() {
        // Sanity: with the TRUE parameters, the composed predictor is
        // exact on every CRP.
        let mut rng = StdRng::seed_from_u64(1);
        let n = 12;
        let puf = InterposePuf::sample(n, 1, 1, 0.0, &mut rng);
        let mut theta = puf.upper().chains()[0].weights().to_vec();
        theta.extend_from_slice(puf.lower().chains()[0].weights());
        let model = ComposedModel {
            n,
            position: puf.position(),
            theta,
        };
        for _ in 0..500 {
            let c = BitVec::random(n, &mut rng);
            let ext0 = puf.interpose(&c, false);
            let pm = model.predict_pm(&phi_transform(&c), &phi_transform(&ext0));
            assert_eq!(pm, puf.eval_pm(&c), "structure mismatch");
        }
    }

    #[test]
    fn faithful_representation_beats_the_naive_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = run_interpose(&InterposeParams::quick(), &mut rng);
        assert!(
            r.composed_accuracy > r.naive_accuracy + 0.05,
            "composed {} must clearly beat naive {}",
            r.composed_accuracy,
            r.naive_accuracy
        );
        assert!(r.composed_accuracy > 0.85, "{r:?}");
        assert!(r.naive_accuracy > 0.55, "{r:?}");
    }

    #[test]
    fn table_renders() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = run_interpose(&InterposeParams::quick(), &mut rng);
        assert!(r.to_table().to_string().contains("CMA-ES"));
    }
}
