//! Table II: learning an LTF `f′` built from Chow parameters of BR PUF
//! CRPs — the accuracy plateau that falsifies the "BR PUFs are LTFs"
//! representation.

use crate::report::{pct, Table};
use mlam_learn::chow::{table_ii_procedure, ChowConfig};
use mlam_learn::dataset::LabeledSet;
use mlam_puf::crp::collect_stable_par;
use mlam_puf::{BistableRingPuf, BrPufConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the Table II reproduction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table2Params {
    /// BR PUF sizes (paper: 16, 32, 64).
    pub ns: Vec<usize>,
    /// CRP budgets for Chow estimation + training
    /// (paper: 1000, 2500, 5000, 10000).
    pub crp_budgets: Vec<usize>,
    /// Held-out test CRPs per size (paper: 44834, 35876, 31375).
    pub test_sizes: Vec<usize>,
    /// Majority-vote repeats when collecting stable CRPs.
    pub stability_repeats: usize,
    /// Perceptron epochs.
    pub perceptron_epochs: usize,
}

impl Table2Params {
    /// The paper's full working point.
    pub fn paper() -> Self {
        Table2Params {
            ns: vec![16, 32, 64],
            crp_budgets: vec![1000, 2500, 5000, 10_000],
            test_sizes: vec![44_834, 35_876, 31_375],
            stability_repeats: 5,
            perceptron_epochs: 60,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        Table2Params {
            ns: vec![16, 32],
            crp_budgets: vec![500, 2000],
            test_sizes: vec![4000, 4000],
            stability_repeats: 3,
            perceptron_epochs: 30,
        }
    }
}

/// Result of the Table II reproduction: `accuracy[budget][n]` like the
/// paper's grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// The parameters used.
    pub params: Table2Params,
    /// `accuracy[i][j]` = test accuracy at `crp_budgets[i]`, `ns[j]`.
    pub accuracy: Vec<Vec<f64>>,
}

impl Table2Result {
    /// Renders in the paper's layout (rows = CRP budgets, columns = n).
    pub fn to_table(&self) -> Table {
        let mut header: Vec<String> = vec!["# CRPs (Chow + training)".into()];
        header.extend(self.params.ns.iter().map(|n| n.to_string()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            "Table II: accuracy [%] of the Perceptron trained on the Chow-parameter LTF f'",
            &header_refs,
        );
        for (i, &budget) in self.params.crp_budgets.iter().enumerate() {
            let mut row = vec![budget.to_string()];
            row.extend(self.accuracy[i].iter().map(|a| pct(*a)));
            t.row(&row);
        }
        t
    }

    /// The largest accuracy gain from the smallest to the largest CRP
    /// budget, per size — small values certify the plateau.
    pub fn plateau_gains(&self) -> Vec<f64> {
        (0..self.params.ns.len())
            .map(|j| {
                let first = self.accuracy.first().map(|r| r[j]).unwrap_or(0.0);
                let last = self.accuracy.last().map(|r| r[j]).unwrap_or(0.0);
                last - first
            })
            .collect()
    }
}

/// Runs the Table II reproduction.
///
/// For each size `n`: manufacture a calibrated BR PUF, collect stable
/// CRPs, and for each budget run the paper's procedure — Chow
/// parameters → `f′` → relabel → Perceptron → test on held-out device
/// CRPs.
///
/// # Panics
///
/// Panics if `ns` and `test_sizes` lengths differ.
pub fn run_table2<R: Rng + ?Sized>(params: &Table2Params, rng: &mut R) -> Table2Result {
    let _span = mlam_telemetry::span("experiment.table2");
    assert_eq!(
        params.ns.len(),
        params.test_sizes.len(),
        "one test size per n"
    );
    let max_budget = *params.crp_budgets.iter().max().expect("non-empty budgets");
    let mut accuracy = vec![vec![0.0; params.ns.len()]; params.crp_budgets.len()];

    for (j, (&n, &test_size)) in params.ns.iter().zip(&params.test_sizes).enumerate() {
        let puf = BistableRingPuf::sample(n, BrPufConfig::calibrated_accuracy(n), rng);
        // "Noiseless and stable CRPs": majority-vote filtered. The
        // parallel collector takes a root seed (drawn once from the
        // experiment RNG) and screens candidates across MLAM_THREADS
        // workers; the set is identical at any thread count.
        let pool = collect_stable_par(
            &puf,
            max_budget + test_size,
            params.stability_repeats,
            1.0,
            rng.gen::<u64>(),
        );
        let all = LabeledSet::from_pairs(n, pool.to_labeled());
        let test = LabeledSet::from_pairs(
            n,
            all.pairs()[all.len() - test_size.min(all.len())..].to_vec(),
        );
        for (i, &budget) in params.crp_budgets.iter().enumerate() {
            let train = all.take(budget.min(all.len() - test.len()));
            let cell = table_ii_procedure(
                &train,
                &test,
                ChowConfig::default(),
                params.perceptron_epochs,
            );
            accuracy[i][j] = cell.test_accuracy;
        }
    }

    Table2Result {
        params: params.clone(),
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quick_run_shows_plateau_below_100() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_table2(&Table2Params::quick(), &mut rng);
        for (i, row) in result.accuracy.iter().enumerate() {
            for (j, &acc) in row.iter().enumerate() {
                assert!(
                    acc > 0.55 && acc < 0.985,
                    "cell [{i}][{j}] = {acc}: the LTF surrogate must beat chance but plateau below ~98 %"
                );
            }
        }
    }

    #[test]
    fn more_crps_do_not_unlock_the_concept() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_table2(&Table2Params::quick(), &mut rng);
        // Quadrupling the CRP budget moves accuracy by at most a few
        // points — the paper's central observation.
        for gain in result.plateau_gains() {
            assert!(gain < 0.12, "plateau violated: gain {gain}");
        }
    }

    #[test]
    fn table_renders_papers_layout() {
        let mut rng = StdRng::seed_from_u64(3);
        let result = run_table2(&Table2Params::quick(), &mut rng);
        let t = result.to_table();
        assert_eq!(t.num_rows(), 2);
        let text = t.to_string();
        assert!(text.contains("CRPs"));
    }
}
