//! The lockdown defense (paper reference \[10\]): the CRP bounds of
//! Table I become *security margins* when a protocol caps the
//! attacker's sample budget.
//!
//! The sweep wraps one Arbiter PUF behind lockdown interfaces of
//! growing budgets, lets the attacker spend the entire budget on
//! training CRPs, and records the model accuracy — the learning curve
//! an enrollment engineer reads backwards to pick the budget.

use crate::report::{pct, Table};
use mlam_boolean::BitVec;
use mlam_learn::dataset::LabeledSet;
use mlam_learn::features::ArbiterPhiFeatures;
use mlam_learn::perceptron::Perceptron;
use mlam_puf::lockdown::{LockdownError, LockdownPuf};
use mlam_puf::ArbiterPuf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the lockdown sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LockdownParams {
    /// Stage count of the protected Arbiter PUF.
    pub n: usize,
    /// Lockdown budgets to sweep.
    pub budgets: Vec<usize>,
    /// Test CRPs (evaluated against the raw device — the verifier's
    /// view).
    pub test_size: usize,
}

impl LockdownParams {
    /// Full scale.
    pub fn paper() -> Self {
        LockdownParams {
            n: 64,
            budgets: vec![50, 100, 250, 500, 1000, 2500, 5000],
            test_size: 4000,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        LockdownParams {
            n: 32,
            budgets: vec![50, 2000],
            test_size: 2000,
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LockdownRow {
    /// Lifetime budget enforced by the interface.
    pub budget: usize,
    /// CRPs the attacker actually extracted (= budget; the interface
    /// refused everything beyond it).
    pub crps_extracted: usize,
    /// Attack accuracy with those CRPs.
    pub attack_accuracy: f64,
}

/// Result of the lockdown sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LockdownResult {
    /// One row per budget.
    pub rows: Vec<LockdownRow>,
}

impl LockdownResult {
    /// Renders the sweep.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Lockdown defense: attack accuracy vs. enforced CRP budget (64-stage Arbiter PUF)",
            &["budget", "CRPs extracted", "attack accuracy [%]"],
        );
        for r in &self.rows {
            t.row(&[
                r.budget.to_string(),
                r.crps_extracted.to_string(),
                pct(r.attack_accuracy),
            ]);
        }
        t
    }
}

/// Runs the lockdown sweep. The same physical device (same weights) is
/// wrapped behind each budget so rows are directly comparable.
pub fn run_lockdown<R: Rng + ?Sized>(params: &LockdownParams, rng: &mut R) -> LockdownResult {
    let _span = mlam_telemetry::span("experiment.lockdown");
    let device = ArbiterPuf::sample(params.n, 0.0, rng);
    let test = LabeledSet::sample(&device, params.test_size, rng);
    let rows = params
        .budgets
        .iter()
        .map(|&budget| {
            let interface = LockdownPuf::new(device.clone(), budget);
            // The attacker milks the interface dry.
            let mut train = LabeledSet::new(params.n);
            loop {
                let c = BitVec::random(params.n, rng);
                match interface.query(&c) {
                    Ok(r) => train.push(c, r),
                    Err(LockdownError::ChallengeReused) => continue,
                    Err(LockdownError::BudgetExhausted) => break,
                }
            }
            let out = Perceptron::new(80).train_with(ArbiterPhiFeatures::new(params.n), &train);
            LockdownRow {
                budget,
                crps_extracted: train.len(),
                attack_accuracy: test.accuracy_of(&out.model),
            }
        })
        .collect();
    LockdownResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_budgets_starve_the_attack() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_lockdown(&LockdownParams::quick(), &mut rng);
        let starved = &result.rows[0];
        let fed = result.rows.last().expect("rows");
        assert_eq!(starved.crps_extracted, 50);
        assert!(
            fed.attack_accuracy > starved.attack_accuracy + 0.05,
            "budget must matter: {} vs {}",
            starved.attack_accuracy,
            fed.attack_accuracy
        );
        assert!(fed.attack_accuracy > 0.93, "{}", fed.attack_accuracy);
    }

    #[test]
    fn extraction_never_exceeds_the_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_lockdown(&LockdownParams::quick(), &mut rng);
        for r in &result.rows {
            assert_eq!(r.crps_extracted, r.budget);
        }
    }

    #[test]
    fn table_renders() {
        let mut rng = StdRng::seed_from_u64(3);
        let result = run_lockdown(&LockdownParams::quick(), &mut rng);
        assert!(result.to_table().to_string().contains("budget"));
    }
}
