//! Spectral attacks under two access models: LMN (random examples)
//! vs. Kushilevitz–Mansour (membership queries) on the same BR PUF.
//!
//! Both algorithms output the same kind of improper hypothesis — a
//! sparse sign-of-spectrum — but they acquire it differently: LMN
//! estimates *every* low-degree coefficient from one random sample,
//! KM *searches* for heavy coefficients of any degree with adaptive
//! membership queries. Comparing them on one device isolates the
//! access axis of Section IV with the representation held fixed.

use crate::report::{pct, Table};
use mlam_learn::dataset::LabeledSet;
use mlam_learn::km::{km_learn, KmConfig};
use mlam_learn::lmn::{lmn_learn, LmnConfig};
use mlam_learn::oracle::FunctionOracle;
use mlam_puf::{BistableRingPuf, BrPufConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the spectral access comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpectralParams {
    /// BR PUF size.
    pub n: usize,
    /// Pairwise interaction strength (strong enough that individual
    /// degree-2 coefficients are heavy).
    pub pair_strength: f64,
    /// LMN training examples.
    pub lmn_examples: usize,
    /// LMN degree.
    pub lmn_degree: usize,
    /// KM threshold θ.
    pub km_theta: f64,
    /// Test examples.
    pub test_size: usize,
}

impl SpectralParams {
    /// Full scale.
    pub fn paper() -> Self {
        SpectralParams {
            n: 16,
            pair_strength: 2.0,
            lmn_examples: 20_000,
            lmn_degree: 2,
            km_theta: 0.12,
            test_size: 5_000,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        SpectralParams {
            n: 12,
            pair_strength: 2.0,
            lmn_examples: 10_000,
            lmn_degree: 2,
            km_theta: 0.15,
            test_size: 3_000,
        }
    }
}

/// Result of the spectral comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpectralResult {
    /// LMN test accuracy (random examples).
    pub lmn_accuracy: f64,
    /// LMN oracle interactions (= training examples).
    pub lmn_queries: u64,
    /// Number of coefficients LMN estimated.
    pub lmn_coefficients: usize,
    /// KM test accuracy (membership queries).
    pub km_accuracy: f64,
    /// KM membership queries.
    pub km_queries: u64,
    /// Number of heavy coefficients KM located.
    pub km_coefficients: usize,
}

impl SpectralResult {
    /// Renders the comparison.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Spectral attacks on one BR PUF: LMN (random examples) vs KM (membership queries)",
            &[
                "algorithm",
                "access",
                "accuracy [%]",
                "oracle queries",
                "coefficients",
            ],
        );
        t.row(&[
            "LMN".into(),
            "random examples".into(),
            pct(self.lmn_accuracy),
            self.lmn_queries.to_string(),
            self.lmn_coefficients.to_string(),
        ]);
        t.row(&[
            "KM".into(),
            "membership queries".into(),
            pct(self.km_accuracy),
            self.km_queries.to_string(),
            self.km_coefficients.to_string(),
        ]);
        t
    }
}

/// Runs the spectral comparison.
pub fn run_spectral<R: Rng + ?Sized>(params: &SpectralParams, rng: &mut R) -> SpectralResult {
    let _span = mlam_telemetry::span("experiment.spectral");
    let cfg = BrPufConfig {
        pair_strength: params.pair_strength,
        triple_strength: 0.0,
        noise_sigma: 0.0,
    };
    let puf = BistableRingPuf::sample(params.n, cfg, rng);
    let test = LabeledSet::sample_par(&puf, params.test_size, rng);

    // LMN: one uniform sample, all coefficients of degree <= d.
    let train = LabeledSet::sample_par(&puf, params.lmn_examples, rng);
    let lmn = lmn_learn(&train, LmnConfig::new(params.lmn_degree));

    // KM: adaptive membership queries for heavy coefficients.
    let oracle = FunctionOracle::uniform(&puf);
    let km = km_learn(&oracle, KmConfig::new(params.km_theta), rng);

    SpectralResult {
        lmn_accuracy: test.accuracy_of_par(&lmn.hypothesis),
        lmn_queries: params.lmn_examples as u64,
        lmn_coefficients: lmn.coefficients_estimated,
        km_accuracy: test.accuracy_of_par(&km.hypothesis),
        km_queries: oracle.queries_used(),
        km_coefficients: km.hypothesis.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_spectral_attacks_beat_chance_substantially() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = run_spectral(&SpectralParams::quick(), &mut rng);
        assert!(r.lmn_accuracy > 0.8, "LMN {}", r.lmn_accuracy);
        assert!(r.km_accuracy > 0.7, "KM {}", r.km_accuracy);
    }

    #[test]
    fn km_returns_far_fewer_coefficients() {
        // KM locates only the heavy part of the spectrum; LMN estimates
        // the full low-degree table.
        let mut rng = StdRng::seed_from_u64(2);
        let r = run_spectral(&SpectralParams::quick(), &mut rng);
        assert!(
            r.km_coefficients * 2 < r.lmn_coefficients,
            "KM {} vs LMN {}",
            r.km_coefficients,
            r.lmn_coefficients
        );
        assert!(r.km_coefficients > 0);
    }

    #[test]
    fn table_renders() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = run_spectral(&SpectralParams::quick(), &mut rng);
        assert!(r.to_table().to_string().contains("membership"));
    }
}
