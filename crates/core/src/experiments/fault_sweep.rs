//! Accuracy under unreliable oracle access: the fault-rate sweep
//! behind `BENCH_5.json` (see HARNESS.md).
//!
//! The paper's access axis says *what kind* of oracle the adversary
//! holds; this sweep adds the orthogonal *quality* axis. One Arbiter
//! PUF is attacked twice at each fault rate:
//!
//! - **example access** — labeled CRPs drawn through the faulty
//!   channel. A flipped reading silently mislabels the training
//!   example (a random draw cannot be re-observed, so voting does not
//!   apply) and the learned model degrades with the rate;
//! - **membership access with voting** — the attacker picks each
//!   challenge and majority-votes repeated readings, trading raw-read
//!   overhead for label quality.
//!
//! The gap between the two rows is the paper's pitfall in miniature:
//! the *same* learner on the *same* device looks far weaker or far
//! stronger depending on an oracle property the adversary model must
//! state explicitly.

use crate::report::{pct, Table};
use mlam_boolean::{BitVec, BooleanFunction};
use mlam_harness::{FaultModel, RetryPolicy};
use mlam_learn::dataset::LabeledSet;
use mlam_learn::features::ArbiterPhiFeatures;
use mlam_learn::oracle::{FunctionOracle, MembershipOracle, UnreliableOracle};
use mlam_learn::perceptron::Perceptron;
use mlam_puf::ArbiterPuf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the fault-rate sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepParams {
    /// Stage count of the attacked Arbiter PUF.
    pub n: usize,
    /// Flip rates to sweep. Each rate `r` also drops readings at `r/2`
    /// and opens two-attempt outages at `r/4`.
    pub fault_rates: Vec<f64>,
    /// Logical training queries per attack (both access models spend
    /// the same logical budget; raw reads differ).
    pub train_size: usize,
    /// Clean test CRPs (ground truth from the raw device).
    pub test_size: usize,
    /// Perceptron epochs.
    pub epochs: usize,
    /// Raw-reading budget per logical query.
    pub retries: u32,
    /// Majority-vote width of the membership attack (odd).
    pub votes: u32,
}

impl FaultSweepParams {
    /// Full scale.
    pub fn paper() -> Self {
        FaultSweepParams {
            n: 64,
            fault_rates: vec![0.0, 0.05, 0.1, 0.2, 0.3, 0.4],
            train_size: 4000,
            test_size: 4000,
            epochs: 100,
            retries: 8,
            votes: 5,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        FaultSweepParams {
            n: 32,
            fault_rates: vec![0.0, 0.1, 0.3],
            train_size: 800,
            test_size: 2000,
            epochs: 60,
            retries: 8,
            votes: 5,
        }
    }
}

/// One sweep point: both access models at one fault rate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepRow {
    /// Flip rate of the fault model (drop rate is half of it).
    pub fault_rate: f64,
    /// Fraction of the example-access training set whose label
    /// disagrees with the device.
    pub example_noise: f64,
    /// Test accuracy of the model trained on faulty examples.
    pub example_accuracy: f64,
    /// Raw reads per logical query under example access.
    pub example_overhead: f64,
    /// Fraction of the voted training set whose label disagrees with
    /// the device.
    pub voted_noise: f64,
    /// Test accuracy of the model trained on voted membership queries.
    pub voted_accuracy: f64,
    /// Raw reads per logical query under voted membership access.
    pub voted_overhead: f64,
    /// Logical queries (both attacks) that exhausted every attempt and
    /// degraded to a last-gasp reading.
    pub exhausted: u64,
}

/// Result of the fault-rate sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepResult {
    /// One row per fault rate.
    pub rows: Vec<FaultSweepRow>,
}

impl FaultSweepResult {
    /// Renders the sweep.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Attack accuracy vs. oracle fault rate (Arbiter PUF, perceptron)",
            &[
                "fault rate",
                "ex. noise [%]",
                "ex. acc [%]",
                "ex. reads/q",
                "vote noise [%]",
                "vote acc [%]",
                "vote reads/q",
                "exhausted",
            ],
        );
        for r in &self.rows {
            t.row(&[
                format!("{:.2}", r.fault_rate),
                pct(r.example_noise),
                pct(r.example_accuracy),
                format!("{:.2}", r.example_overhead),
                pct(r.voted_noise),
                pct(r.voted_accuracy),
                format!("{:.2}", r.voted_overhead),
                r.exhausted.to_string(),
            ]);
        }
        t
    }
}

/// Fraction of `set` whose label disagrees with `device`.
fn label_noise<F: BooleanFunction + ?Sized>(device: &F, set: &LabeledSet) -> f64 {
    let wrong = set
        .pairs()
        .iter()
        .filter(|(x, y)| device.eval(x) != *y)
        .count();
    wrong as f64 / set.len() as f64
}

/// Runs the fault-rate sweep. The same device and the same per-rate RNG
/// stream (derived via [`mlam_par::split_seed`] from the sweep's root
/// seed and the rate index) back every row, so rows are directly
/// comparable and the whole sweep is bit-reproducible.
pub fn run_fault_sweep<R: Rng + ?Sized>(
    params: &FaultSweepParams,
    rng: &mut R,
) -> FaultSweepResult {
    let _span = mlam_telemetry::span("experiment.fault_sweep");
    let device = ArbiterPuf::sample(params.n, 0.0, rng);
    let test = LabeledSet::sample(&device, params.test_size, rng);
    let sweep_root: u64 = rng.gen();
    let features = ArbiterPhiFeatures::new(params.n);
    let rows = params
        .fault_rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let mut rate_rng = StdRng::seed_from_u64(mlam_par::split_seed(sweep_root, i as u64));
            let fault_seed: u64 = rate_rng.gen();
            let faults = FaultModel::new(fault_seed, rate, rate * 0.5).with_outages(rate * 0.25, 2);

            // Example access: faulty draws mislabel the training set.
            let example_oracle = UnreliableOracle::new(
                FunctionOracle::uniform(&device),
                faults,
                RetryPolicy::retries(params.retries),
            );
            let train = LabeledSet::from_oracle(&example_oracle, params.train_size, &mut rate_rng);
            let example_out = Perceptron::new(params.epochs).train_with(features, &train);

            // Membership access: the attacker picks challenges and
            // majority-votes repeated readings of each.
            let member_oracle = UnreliableOracle::new(
                FunctionOracle::uniform(&device),
                faults,
                RetryPolicy::retries(params.retries).with_votes(params.votes),
            );
            let mut voted = LabeledSet::new(params.n);
            for _ in 0..params.train_size {
                let x = BitVec::random(params.n, &mut rate_rng);
                let y = member_oracle.query(&x);
                voted.push(x, y);
            }
            let voted_out = Perceptron::new(params.epochs).train_with(features, &voted);

            FaultSweepRow {
                fault_rate: rate,
                example_noise: label_noise(&device, &train),
                example_accuracy: test.accuracy_of(&example_out.model),
                example_overhead: example_oracle.overhead(),
                voted_noise: label_noise(&device, &voted),
                voted_accuracy: test.accuracy_of(&voted_out.model),
                voted_overhead: member_oracle.overhead(),
                exhausted: example_oracle.exhausted_queries() + member_oracle.exhausted_queries(),
            }
        })
        .collect();
    FaultSweepResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(seed: u64) -> FaultSweepResult {
        let mut rng = StdRng::seed_from_u64(seed);
        run_fault_sweep(&FaultSweepParams::quick(), &mut rng)
    }

    #[test]
    fn reliable_rate_is_clean_and_cheap() {
        let result = sweep(1);
        let clean = &result.rows[0];
        assert_eq!(clean.fault_rate, 0.0);
        assert_eq!(clean.example_noise, 0.0);
        assert_eq!(clean.voted_noise, 0.0);
        assert!(clean.example_accuracy > 0.9, "{}", clean.example_accuracy);
        assert!(clean.voted_accuracy > 0.9, "{}", clean.voted_accuracy);
        assert_eq!(clean.example_overhead, 1.0);
        assert_eq!(clean.exhausted, 0);
    }

    #[test]
    fn voting_buys_label_quality_with_raw_reads() {
        let result = sweep(2);
        let noisy = result.rows.last().expect("rows");
        assert!(noisy.example_noise > 0.15, "{}", noisy.example_noise);
        assert!(
            noisy.voted_noise < noisy.example_noise - 0.05,
            "voting must cut label noise: {} vs {}",
            noisy.voted_noise,
            noisy.example_noise
        );
        assert!(
            noisy.voted_accuracy > noisy.example_accuracy,
            "voting must help the attack: {} vs {}",
            noisy.voted_accuracy,
            noisy.example_accuracy
        );
        assert!(noisy.voted_overhead > noisy.example_overhead);
        assert!(noisy.example_overhead > 1.0, "drops must force retries");
    }

    #[test]
    fn sweep_is_seed_deterministic() {
        assert_eq!(sweep(3), sweep(3));
    }

    #[test]
    fn table_renders() {
        assert!(sweep(4).to_table().to_string().contains("fault rate"));
    }
}
