//! Corollary 2 in action: with membership queries, XOR compositions of
//! small-junta components are exactly learnable with poly(n) queries.
//!
//! The simulated device is the corollary's concept class in its pure
//! form: an XOR of `k` components, each a conjunction over a small
//! hidden subset of the challenge bits (a junta — the object Bourgain's
//! theorem says every low-noise LTF is close to). The experiment sweeps
//! `n` and shows the query count growing polynomially while the
//! hypothesis is **exactly** correct.

use crate::report::Table;
use mlam_boolean::{Anf, BitVec, BooleanFunction, FnFunction};
use mlam_learn::f2poly::{learn_anf_adaptive, membership_budget};
use mlam_learn::oracle::FunctionOracle;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the Corollary 2 experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Corollary2Params {
    /// Challenge sizes to sweep.
    pub ns: Vec<usize>,
    /// Number of XORed junta components (the "chains").
    pub k: usize,
    /// Junta size of each component (the `r` of `r`-XT).
    pub junta_size: usize,
    /// Equivalence-simulation budget per degree round.
    pub eq_budget: usize,
}

impl Corollary2Params {
    /// Full scale.
    pub fn paper() -> Self {
        Corollary2Params {
            ns: vec![16, 24, 32, 48, 63],
            k: 4,
            junta_size: 2,
            eq_budget: 500,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        Corollary2Params {
            ns: vec![12, 20],
            k: 3,
            junta_size: 2,
            eq_budget: 300,
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Corollary2Row {
    /// Challenge size.
    pub n: usize,
    /// Membership queries consumed.
    pub membership_queries: usize,
    /// The analytic poly(n) budget at the recovered degree.
    pub analytic_budget: u128,
    /// Whether the hypothesis is exactly equivalent to the device
    /// (verified on random points).
    pub exact: bool,
    /// Degree at which the adaptive learner accepted.
    pub degree: usize,
}

/// Result of the Corollary 2 experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Corollary2Result {
    /// One row per `n`.
    pub rows: Vec<Corollary2Row>,
}

impl Corollary2Result {
    /// Renders the sweep.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Corollary 2: exact learning of k-XOR junta PUFs with membership queries",
            &[
                "n",
                "membership queries",
                "analytic budget",
                "degree",
                "exact?",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.n.to_string(),
                r.membership_queries.to_string(),
                r.analytic_budget.to_string(),
                r.degree.to_string(),
                r.exact.to_string(),
            ]);
        }
        t
    }
}

/// Builds the target: XOR of `k` conjunctions over random disjoint
/// small subsets — an `O(k)`-term `r`-XT, hence a sparse low-degree F₂
/// polynomial (the proof object of Corollary 2).
fn build_target<R: Rng + ?Sized>(n: usize, k: usize, junta_size: usize, rng: &mut R) -> Anf {
    assert!(k * junta_size <= n, "need disjoint junta supports");
    let mut vars: Vec<usize> = (0..n).collect();
    vars.shuffle(rng);
    let mut monomials = Vec::with_capacity(k);
    for chunk in vars.chunks(junta_size).take(k) {
        let mask = chunk.iter().fold(0u64, |m, &v| m | (1u64 << v));
        monomials.push(mask);
    }
    Anf::from_monomials(n, monomials)
}

/// Runs the Corollary 2 experiment.
pub fn run_corollary2<R: Rng + ?Sized>(params: &Corollary2Params, rng: &mut R) -> Corollary2Result {
    let _span = mlam_telemetry::span("experiment.corollary2");
    let rows = params
        .ns
        .iter()
        .map(|&n| {
            let target = build_target(n, params.k, params.junta_size, rng);
            let t2 = target.clone();
            let device = FnFunction::new(n, move |x: &BitVec| t2.eval(x));
            let oracle = FunctionOracle::uniform(&device);
            let out = learn_anf_adaptive(&oracle, params.junta_size + 1, params.eq_budget, rng);
            // Exactness check on random points.
            let mut exact = out.accepted;
            for _ in 0..2000 {
                let x = BitVec::random(n, rng);
                if out.hypothesis.eval(&x) != target.eval(&x) {
                    exact = false;
                    break;
                }
            }
            Corollary2Row {
                n,
                membership_queries: out.membership_queries,
                analytic_budget: (0..=out.degree)
                    .map(|d| membership_budget(n, d))
                    .max()
                    .unwrap_or(0),
                exact,
                degree: out.degree,
            }
        })
        .collect();
    Corollary2Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_exactly_with_polynomial_queries() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_corollary2(&Corollary2Params::quick(), &mut rng);
        for r in &result.rows {
            assert!(r.exact, "n={}: hypothesis not exact", r.n);
            // Poly(n): far below the 2^n inputs of the cube.
            assert!(
                (r.membership_queries as f64) < 2f64.powi(r.n as i32) / 8.0,
                "n={}: {} queries",
                r.n,
                r.membership_queries
            );
            // Concretely cubic-ish for degree-2 interpolation.
            assert!(
                r.membership_queries <= 2 * r.n * r.n * r.n,
                "n={}: {} queries exceed 2n^3",
                r.n,
                r.membership_queries
            );
        }
    }

    #[test]
    fn query_growth_is_polynomial() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_corollary2(&Corollary2Params::quick(), &mut rng);
        let q_small = result.rows[0].membership_queries as f64;
        let q_large = result.rows[1].membership_queries as f64;
        let n_small = result.rows[0].n as f64;
        let n_large = result.rows[1].n as f64;
        // Growth exponent well under cubic for degree-2 interpolation
        // with the cumulative degree loop.
        let exponent = (q_large / q_small).ln() / (n_large / n_small).ln();
        assert!(exponent < 3.5, "exponent {exponent}");
    }

    #[test]
    fn target_has_expected_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = build_target(16, 3, 2, &mut rng);
        assert_eq!(t.num_monomials(), 3);
        assert_eq!(t.degree(), 2);
    }

    #[test]
    fn table_renders() {
        let mut rng = StdRng::seed_from_u64(4);
        let result = run_corollary2(&Corollary2Params::quick(), &mut rng);
        assert!(result.to_table().to_string().contains("membership"));
    }
}
