//! Exact vs. approximate inference (Section IV-A, after Rivest \[2\] and
//! Shamsi et al. \[4\]) — quantified on SARLock-style point-function
//! locking.
//!
//! The scheme is exact-inference-resilient: every DIP eliminates one
//! wrong key, so the exact SAT attack pays `Ω(2^k)` oracle queries.
//! But it is approximation-worthless: any wrong key is a
//! `(1 − 2^{−k})`-accurate model, and AppSAT settles on one with a
//! handful of queries. The sweep prints both costs side by side — the
//! crossover the paper says a sound security claim must not paper
//! over.

use crate::adversary::{AdversaryModel, InferenceGoal, Pitfall};
use crate::report::{pct, Table};
use mlam_locking::anti_sat::lock_sarlock;
use mlam_locking::appsat::{appsat, AppSatConfig};
use mlam_locking::sat_attack::{sat_attack, SatAttackConfig};
use mlam_netlist::generate::random_circuit;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the exact-vs-approximate sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExactVsApproxParams {
    /// Primary inputs of the base circuit.
    pub inputs: usize,
    /// Gates of the base circuit.
    pub gates: usize,
    /// SARLock key widths to sweep.
    pub key_widths: Vec<usize>,
}

impl ExactVsApproxParams {
    /// Full scale.
    pub fn paper() -> Self {
        ExactVsApproxParams {
            inputs: 12,
            gates: 50,
            key_widths: vec![4, 6, 8, 10],
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        ExactVsApproxParams {
            inputs: 8,
            gates: 30,
            key_widths: vec![4, 6],
        }
    }
}

/// One sweep row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExactVsApproxRow {
    /// Key width k.
    pub key_bits: usize,
    /// Exact SAT attack DIP count (≈ 2^k − 1).
    pub sat_dips: usize,
    /// AppSAT DIP count.
    pub appsat_dips: usize,
    /// AppSAT model accuracy (≈ 1 − 2^{−k} even for a wrong key).
    pub appsat_accuracy: f64,
}

/// Result of the sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExactVsApproxResult {
    /// One row per key width.
    pub rows: Vec<ExactVsApproxRow>,
    /// The pitfall the sweep demonstrates, as detected by the
    /// comparability machinery.
    pub detected_pitfall: Option<Pitfall>,
}

impl ExactVsApproxResult {
    /// Renders the sweep.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Exact vs approximate inference on SARLock point-function locking",
            &[
                "key bits",
                "exact SAT DIPs",
                "AppSAT DIPs",
                "AppSAT accuracy [%]",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.key_bits.to_string(),
                r.sat_dips.to_string(),
                r.appsat_dips.to_string(),
                pct(r.appsat_accuracy),
            ]);
        }
        t
    }
}

/// Runs the sweep.
pub fn run_exact_vs_approx<R: Rng + ?Sized>(
    params: &ExactVsApproxParams,
    rng: &mut R,
) -> ExactVsApproxResult {
    let _span = mlam_telemetry::span("experiment.exact_vs_approx");
    let rows = params
        .key_widths
        .iter()
        .map(|&key_bits| {
            let oracle = random_circuit(params.inputs, params.gates, 2, rng);
            let locked = lock_sarlock(&oracle, key_bits, rng);
            let sat = sat_attack(&locked, &oracle, SatAttackConfig::default());
            let app = appsat(
                &locked,
                &oracle,
                AppSatConfig {
                    dips_per_round: 1,
                    queries_per_round: 32,
                    error_threshold: 2.0 / (1u64 << key_bits) as f64,
                    settlement_rounds: 2,
                    max_rounds: 100,
                },
                rng,
            );
            ExactVsApproxRow {
                key_bits,
                sat_dips: sat.iterations,
                appsat_dips: app.dip_iterations,
                appsat_accuracy: app.estimated_accuracy,
            }
        })
        .collect();

    // The pitfall the table embodies: an exact-hardness claim quoted
    // against an approximate attacker.
    let exact_claim = AdversaryModel {
        goal: InferenceGoal::Exact,
        ..AdversaryModel::membership_query_attack()
    };
    let approx_attack = AdversaryModel {
        goal: InferenceGoal::Approximate,
        ..AdversaryModel::membership_query_attack()
    };
    let detected_pitfall = exact_claim
        .comparability(&approx_attack)
        .pitfalls()
        .iter()
        .find(|p| matches!(p, Pitfall::ExactVersusApproximate))
        .cloned();

    ExactVsApproxResult {
        rows,
        detected_pitfall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sat_dips_are_exponential_appsat_dips_are_not() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_exact_vs_approx(&ExactVsApproxParams::quick(), &mut rng);
        for r in &result.rows {
            assert!(
                r.sat_dips >= (1 << r.key_bits) / 2,
                "k={}: SAT must pay ≈2^k DIPs, got {}",
                r.key_bits,
                r.sat_dips
            );
            assert!(
                r.appsat_dips < r.sat_dips / 2,
                "k={}: AppSAT {} vs SAT {}",
                r.key_bits,
                r.appsat_dips,
                r.sat_dips
            );
            assert!(r.appsat_accuracy > 0.9, "{r:?}");
        }
    }

    #[test]
    fn the_gap_widens_with_k() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_exact_vs_approx(&ExactVsApproxParams::quick(), &mut rng);
        let first = &result.rows[0];
        let last = result.rows.last().expect("rows");
        let ratio_first = first.sat_dips as f64 / first.appsat_dips.max(1) as f64;
        let ratio_last = last.sat_dips as f64 / last.appsat_dips.max(1) as f64;
        assert!(
            ratio_last > ratio_first,
            "gap must widen: {ratio_first} -> {ratio_last}"
        );
    }

    #[test]
    fn pitfall_is_detected() {
        let mut rng = StdRng::seed_from_u64(3);
        let result = run_exact_vs_approx(&ExactVsApproxParams::quick(), &mut rng);
        assert_eq!(
            result.detected_pitfall,
            Some(Pitfall::ExactVersusApproximate)
        );
    }

    #[test]
    fn table_renders() {
        let mut rng = StdRng::seed_from_u64(4);
        let result = run_exact_vs_approx(&ExactVsApproxParams::quick(), &mut rng);
        assert!(result.to_table().to_string().contains("SARLock"));
    }
}
