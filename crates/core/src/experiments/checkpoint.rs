//! Experiment checkpoints: the per-experiment JSON records a run
//! writes, and the store that makes them crash-safe and resumable.
//!
//! A reproduction run persists one [`ExperimentJson`] per experiment
//! into its `--json` run directory. The [`CheckpointStore`] owns that
//! contract:
//!
//! - **Atomic saves.** Records are written to a temporary file and
//!   renamed into place, so a killed run leaves either the previous
//!   complete record or none — never a half-written JSON file.
//! - **Tolerant loads.** [`CheckpointStore::load`] distinguishes a
//!   missing record, a corrupt one (truncated/unparsable — the
//!   signature of a run killed mid-write on a non-atomic filesystem),
//!   and a complete one; corrupt records are simply re-run.
//! - **Skip eligibility.** A complete record is only reused by
//!   `--resume` when [`ExperimentJson::resumable`] accepts it: the
//!   seed and `--quick` flag must match and the record must not be
//!   [`degraded`](ExperimentJson::degraded). Everything an experiment
//!   produces is a pure function of `(seed, quick)`, so a matching
//!   record is bit-identical to what a re-run would write.
//!
//! Checkpoint traffic is observable under `harness.checkpoint.*`:
//! `saved`, `loaded`, `corrupt` and `stale` count the store's
//! decisions so `mlam-trace` can audit a resumed run.

use crate::report::Table;
use mlam_telemetry::counter;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// One table of an experiment, in the machine-readable `--json` form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableJson {
    /// The table's display title.
    pub title: String,
    /// Column headers, in display order.
    pub header: Vec<String>,
    /// Rows as objects keyed by column header
    /// ([`Table::to_json_rows`]).
    pub rows: serde_json::Value,
}

impl TableJson {
    /// Serializes a rendered [`Table`].
    pub fn from_table(table: &Table) -> TableJson {
        TableJson {
            title: table.title().to_string(),
            header: table.header().to_vec(),
            rows: table.to_json_rows(),
        }
    }
}

/// The structured result file written as `<dir>/<experiment>.json` —
/// also the unit of resumption: a complete, non-degraded record lets
/// `--resume` skip the experiment entirely.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentJson {
    /// Manifest name of the experiment.
    pub name: String,
    /// Root seed of the run that produced the record.
    pub seed: u64,
    /// Whether the reduced `--quick` parameter set was used.
    pub quick: bool,
    /// Wall-clock seconds spent in the driver.
    pub seconds: f64,
    /// The experiment failed; this is a partial record (counters and
    /// wall-clock up to the failure, no tables) kept so the rest of
    /// the run survives. Degraded records are re-run on `--resume`.
    #[serde(default)]
    pub degraded: bool,
    /// Telemetry counter increments attributable to this experiment.
    pub counters: BTreeMap<String, u64>,
    /// Rendered result tables (empty when `degraded`).
    pub tables: Vec<TableJson>,
}

impl ExperimentJson {
    /// Whether `--resume` may reuse this record instead of re-running
    /// the experiment: it must come from the same `(seed, quick)`
    /// configuration and must not be degraded.
    pub fn resumable(&self, seed: u64, quick: bool) -> bool {
        !self.degraded && self.seed == seed && self.quick == quick
    }
}

/// What [`CheckpointStore::load`] found for an experiment.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointState {
    /// No record on disk — the experiment has not run yet.
    Missing,
    /// A record exists but cannot be parsed (typically a run killed
    /// mid-write). The experiment must be re-run; the next save
    /// replaces the corrupt file.
    Corrupt,
    /// A complete record. Check [`ExperimentJson::resumable`] before
    /// skipping the experiment on its behalf.
    Complete(ExperimentJson),
}

/// Atomic, crash-safe storage of [`ExperimentJson`] records inside a
/// run directory.
///
/// # Example
///
/// ```
/// use mlam::experiments::checkpoint::{CheckpointState, CheckpointStore, ExperimentJson};
/// use std::collections::BTreeMap;
///
/// let dir = std::env::temp_dir().join(format!("mlam_ckpt_doc_{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// std::fs::create_dir_all(&dir).unwrap();
/// let store = CheckpointStore::new(&dir);
/// let record = ExperimentJson {
///     name: "demo".into(),
///     seed: 42,
///     quick: true,
///     seconds: 0.5,
///     degraded: false,
///     counters: BTreeMap::from([("oracle.example_queries".into(), 100u64)]),
///     tables: Vec::new(),
/// };
/// store.save(&record).unwrap();
/// match store.load("demo") {
///     CheckpointState::Complete(found) => {
///         assert!(found.resumable(42, true), "same seed and quick: skippable");
///         assert!(!found.resumable(43, true), "other seed: must re-run");
///         assert_eq!(found, record);
///     }
///     other => panic!("expected a complete record, got {other:?}"),
/// }
/// assert_eq!(store.load("absent"), CheckpointState::Missing);
/// # let _ = std::fs::remove_dir_all(&dir);
/// ```
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// A store over `dir` (the run directory). The directory must
    /// already exist; creation is the run directory's job.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore { dir: dir.into() }
    }

    /// The run directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where the record for `name` lives (`<dir>/<name>.json`).
    pub fn record_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.json"))
    }

    /// Persists `record` atomically: the JSON is written to a
    /// temporary file in the same directory and renamed over
    /// `<name>.json`, so readers never observe a partial record.
    /// Counts `harness.checkpoint.saved`.
    pub fn save(&self, record: &ExperimentJson) -> io::Result<()> {
        let path = self.record_path(&record.name);
        let tmp = self.dir.join(format!(".{}.json.tmp", record.name));
        let json = serde_json::to_string_pretty(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(&tmp, json + "\n")
            .map_err(|e| mlam_telemetry::rundir::annotate(e, "cannot write checkpoint", &tmp))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| mlam_telemetry::rundir::annotate(e, "cannot commit checkpoint", &path))?;
        counter!("harness.checkpoint.saved", 1);
        Ok(())
    }

    /// Loads the record for `name`, classifying what it finds. Counts
    /// `harness.checkpoint.loaded` for complete records and
    /// `harness.checkpoint.corrupt` for unparsable ones; a mismatched
    /// embedded name also counts as corrupt.
    pub fn load(&self, name: &str) -> CheckpointState {
        let path = self.record_path(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CheckpointState::Missing,
            Err(_) => {
                counter!("harness.checkpoint.corrupt", 1);
                return CheckpointState::Corrupt;
            }
        };
        match serde_json::from_str::<ExperimentJson>(&text) {
            Ok(record) if record.name == name => {
                counter!("harness.checkpoint.loaded", 1);
                CheckpointState::Complete(record)
            }
            _ => {
                counter!("harness.checkpoint.corrupt", 1);
                CheckpointState::Corrupt
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlam_ckpt_{label}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(name: &str, seed: u64) -> ExperimentJson {
        ExperimentJson {
            name: name.into(),
            seed,
            quick: true,
            seconds: 1.5,
            degraded: false,
            counters: BTreeMap::from([("oracle.example_queries".into(), 7u64)]),
            tables: Vec::new(),
        }
    }

    #[test]
    fn save_load_round_trip() {
        let dir = scratch("round_trip");
        let store = CheckpointStore::new(&dir);
        let rec = record("table9", 42);
        store.save(&rec).unwrap();
        assert_eq!(store.load("table9"), CheckpointState::Complete(rec));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_corrupt_are_distinguished() {
        let dir = scratch("states");
        let store = CheckpointStore::new(&dir);
        assert_eq!(store.load("nope"), CheckpointState::Missing);
        // A truncated write — the shape a kill mid-write leaves behind
        // on filesystems without atomic rename semantics.
        std::fs::write(store.record_path("cut"), "{\"name\": \"cut\", \"se").unwrap();
        assert_eq!(store.load("cut"), CheckpointState::Corrupt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_name_counts_as_corrupt() {
        let dir = scratch("renamed");
        let store = CheckpointStore::new(&dir);
        let rec = record("original", 1);
        store.save(&rec).unwrap();
        std::fs::rename(store.record_path("original"), store.record_path("moved")).unwrap();
        assert_eq!(store.load("moved"), CheckpointState::Corrupt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_leaves_no_temp_files() {
        let dir = scratch("tmpfiles");
        let store = CheckpointStore::new(&dir);
        store.save(&record("exp", 3)).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["exp.json".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_replaces_previous_record() {
        let dir = scratch("replace");
        let store = CheckpointStore::new(&dir);
        store.save(&record("exp", 1)).unwrap();
        let mut newer = record("exp", 2);
        newer.seconds = 9.0;
        store.save(&newer).unwrap();
        assert_eq!(store.load("exp"), CheckpointState::Complete(newer));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumable_requires_matching_config_and_health() {
        let rec = record("exp", 5);
        assert!(rec.resumable(5, true));
        assert!(!rec.resumable(6, true), "seed mismatch");
        assert!(!rec.resumable(5, false), "quick mismatch");
        let degraded = ExperimentJson {
            degraded: true,
            ..rec
        };
        assert!(!degraded.resumable(5, true), "degraded records re-run");
    }

    #[test]
    fn degraded_flag_defaults_to_false_in_old_records() {
        // Records written before the flag existed deserialize as
        // non-degraded.
        let json = r#"{
            "name": "old", "seed": 1, "quick": true, "seconds": 0.1,
            "counters": {}, "tables": []
        }"#;
        let rec: ExperimentJson = serde_json::from_str(json).unwrap();
        assert!(!rec.degraded);
        assert!(rec.resumable(1, true));
    }
}
