//! Logic-locking attack comparison: SAT (exact, membership queries) vs.
//! AppSAT (approximate) vs. the pure random-example PAC attack — the
//! access-model axis quantified on circuits (Sections II-A, IV-A, V-A).

use crate::report::{pct, Table};
use mlam_locking::appsat::{appsat, AppSatConfig};
use mlam_locking::combinational::lock_xor;
use mlam_locking::pac_attack::{pac_attack, PacAttackConfig};
use mlam_locking::sat_attack::{sat_attack, SatAttackConfig};
use mlam_netlist::generate::random_circuit;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the locking experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LockingParams {
    /// Primary input count of the generated circuits.
    pub inputs: usize,
    /// Gate count of the generated circuits.
    pub gates: usize,
    /// Output count.
    pub outputs: usize,
    /// Key widths to sweep.
    pub key_widths: Vec<usize>,
    /// Circuits per key width (results averaged).
    pub trials: usize,
}

impl LockingParams {
    /// Full scale.
    pub fn paper() -> Self {
        LockingParams {
            inputs: 12,
            gates: 80,
            outputs: 3,
            key_widths: vec![4, 8, 12, 16, 24, 32],
            trials: 3,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        LockingParams {
            inputs: 8,
            gates: 40,
            outputs: 2,
            key_widths: vec![4, 8],
            trials: 1,
        }
    }
}

/// One sweep point (averages over trials).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LockingRow {
    /// Key width.
    pub key_bits: usize,
    /// Mean SAT-attack DIP iterations.
    pub sat_dips: f64,
    /// Fraction of trials where the SAT attack recovered a functionally
    /// correct key.
    pub sat_success: f64,
    /// Mean AppSAT accuracy.
    pub appsat_accuracy: f64,
    /// Mean AppSAT oracle interactions (DIPs + random queries).
    pub appsat_queries: f64,
    /// Mean PAC-attack accuracy.
    pub pac_accuracy: f64,
    /// Mean PAC-attack random examples.
    pub pac_examples: f64,
}

/// Result of the locking experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LockingResult {
    /// One row per key width.
    pub rows: Vec<LockingRow>,
}

impl LockingResult {
    /// Renders the comparison.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Logic locking: SAT vs AppSAT vs random-example PAC attack",
            &[
                "key bits",
                "SAT DIPs",
                "SAT success",
                "AppSAT acc [%]",
                "AppSAT queries",
                "PAC acc [%]",
                "PAC examples",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.key_bits.to_string(),
                format!("{:.1}", r.sat_dips),
                pct(r.sat_success),
                pct(r.appsat_accuracy),
                format!("{:.0}", r.appsat_queries),
                pct(r.pac_accuracy),
                format!("{:.0}", r.pac_examples),
            ]);
        }
        t
    }
}

/// Runs the locking comparison.
pub fn run_locking<R: Rng + ?Sized>(params: &LockingParams, rng: &mut R) -> LockingResult {
    let _span = mlam_telemetry::span("experiment.locking");
    let rows = params
        .key_widths
        .iter()
        .map(|&key_bits| {
            let mut sat_dips = 0.0;
            let mut sat_success = 0.0;
            let mut appsat_acc = 0.0;
            let mut appsat_q = 0.0;
            let mut pac_acc = 0.0;
            let mut pac_ex = 0.0;
            for _ in 0..params.trials {
                let oracle = random_circuit(params.inputs, params.gates, params.outputs, rng);
                let locked = lock_xor(&oracle, key_bits, rng);

                let sat = sat_attack(&locked, &oracle, SatAttackConfig::default());
                sat_dips += sat.iterations as f64;
                sat_success += f64::from(sat.key_is_functionally_correct);

                let app = appsat(&locked, &oracle, AppSatConfig::default(), rng);
                appsat_acc += app.estimated_accuracy;
                appsat_q += (app.dip_iterations + app.random_queries) as f64;

                let pac = pac_attack(&locked, &oracle, PacAttackConfig::default(), rng);
                pac_acc += pac.estimated_accuracy;
                pac_ex += pac.examples_used as f64;
            }
            let t = params.trials as f64;
            LockingRow {
                key_bits,
                sat_dips: sat_dips / t,
                sat_success: sat_success / t,
                appsat_accuracy: appsat_acc / t,
                appsat_queries: appsat_q / t,
                pac_accuracy: pac_acc / t,
                pac_examples: pac_ex / t,
            }
        })
        .collect();
    LockingResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_attacks_succeed_on_small_circuits() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_locking(&LockingParams::quick(), &mut rng);
        for r in &result.rows {
            assert_eq!(r.sat_success, 1.0, "SAT attack must recover every key");
            assert!(r.appsat_accuracy > 0.9, "{r:?}");
            assert!(r.pac_accuracy > 0.9, "{r:?}");
        }
    }

    #[test]
    fn dips_grow_with_key_width() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_locking(&LockingParams::quick(), &mut rng);
        let first = result.rows.first().expect("rows");
        let last = result.rows.last().expect("rows");
        assert!(
            last.sat_dips >= first.sat_dips,
            "{} vs {}",
            first.sat_dips,
            last.sat_dips
        );
    }

    #[test]
    fn table_renders() {
        let mut rng = StdRng::seed_from_u64(3);
        let result = run_locking(&LockingParams::quick(), &mut rng);
        assert!(result.to_table().to_string().contains("AppSAT"));
    }
}
