//! Sequential obfuscation vs. Angluin's L* (Section V-B): the DFA of a
//! HARPOON-obfuscated FSM is learnable with polynomially many queries
//! whenever the input alphabet is not exponential, and the unlock
//! sequence falls out of the learned model.

use crate::report::Table;
use mlam_locking::sequential::{lstar_attack, Fsm, ObfuscatedFsm};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the sequential-locking experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SequentialParams {
    /// Functional-FSM state counts to sweep.
    pub state_counts: Vec<usize>,
    /// Input alphabet size.
    pub alphabet: usize,
    /// Unlock-sequence length.
    pub unlock_len: usize,
    /// Obfuscated machines per point.
    pub trials: usize,
}

impl SequentialParams {
    /// Full scale.
    pub fn paper() -> Self {
        SequentialParams {
            state_counts: vec![4, 8, 16, 32, 64],
            alphabet: 4,
            unlock_len: 6,
            trials: 3,
        }
    }

    /// Reduced scale for tests.
    pub fn quick() -> Self {
        SequentialParams {
            state_counts: vec![4, 8],
            alphabet: 2,
            unlock_len: 3,
            trials: 2,
        }
    }
}

/// One sweep point (averaged over trials).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SequentialRow {
    /// Functional state count.
    pub states: usize,
    /// Mean membership queries.
    pub membership_queries: f64,
    /// Mean equivalence queries.
    pub equivalence_queries: f64,
    /// Fraction of trials where a working unlock sequence was
    /// recovered (degenerate constant-output machines excluded).
    pub unlock_recovered: f64,
    /// Fraction of trials where the learned DFA is exactly equivalent.
    pub exact_model: f64,
}

/// Result of the sequential experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SequentialResult {
    /// One row per state count.
    pub rows: Vec<SequentialRow>,
}

impl SequentialResult {
    /// Renders the sweep.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Sequential locking: L* attack on HARPOON-obfuscated FSMs",
            &[
                "functional states",
                "membership queries",
                "equivalence queries",
                "unlock recovered",
                "exact model",
            ],
        );
        for r in &self.rows {
            t.row(&[
                r.states.to_string(),
                format!("{:.0}", r.membership_queries),
                format!("{:.1}", r.equivalence_queries),
                format!("{:.2}", r.unlock_recovered),
                format!("{:.2}", r.exact_model),
            ]);
        }
        t
    }
}

/// Runs the sequential-locking experiment.
pub fn run_sequential<R: Rng + ?Sized>(params: &SequentialParams, rng: &mut R) -> SequentialResult {
    let _span = mlam_telemetry::span("experiment.sequential");
    let rows = params
        .state_counts
        .iter()
        .map(|&states| {
            let mut mq = 0.0;
            let mut eq = 0.0;
            let mut unlocked = 0.0;
            let mut exact = 0.0;
            let mut eligible = 0.0;
            for _ in 0..params.trials {
                let fsm = Fsm::random(states, params.alphabet, rng);
                let seq: Vec<usize> = (0..params.unlock_len)
                    .map(|_| rng.gen_range(0..params.alphabet))
                    .collect();
                let obf = ObfuscatedFsm::new(fsm, seq);
                let result = lstar_attack(&obf);
                mq += result.membership_queries as f64;
                eq += result.lstar.equivalence_queries as f64;
                if result
                    .lstar
                    .dfa
                    .shortest_disagreement(&obf.combined().to_dfa())
                    .is_none()
                {
                    exact += 1.0;
                }
                // Degenerate (constant-output) functional machines make
                // "unlocking" unobservable; exclude them from the rate.
                let degenerate = obf.functional().to_dfa().minimized().num_states() == 1;
                if !degenerate {
                    eligible += 1.0;
                    if let Some(seq) = &result.unlock_sequence {
                        // Validate: after the sequence the device is in
                        // functional mode (replaying the functional
                        // machine's behaviour on a probe word).
                        let mut probe = seq.clone();
                        probe.push(0);
                        let expected = obf.functional().output(&[0]);
                        if obf.combined().output(&probe) == expected {
                            unlocked += 1.0;
                        }
                    }
                }
            }
            let t = params.trials as f64;
            SequentialRow {
                states,
                membership_queries: mq / t,
                equivalence_queries: eq / t,
                unlock_recovered: if eligible > 0.0 {
                    unlocked / eligible
                } else {
                    1.0
                },
                exact_model: exact / t,
            }
        })
        .collect();
    SequentialResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lstar_models_are_exact_and_unlocks_recovered() {
        let mut rng = StdRng::seed_from_u64(1);
        let result = run_sequential(&SequentialParams::quick(), &mut rng);
        for r in &result.rows {
            assert_eq!(r.exact_model, 1.0, "{r:?}");
            assert!(r.unlock_recovered >= 0.99, "{r:?}");
        }
    }

    #[test]
    fn query_cost_grows_with_state_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let result = run_sequential(&SequentialParams::quick(), &mut rng);
        let first = result.rows.first().expect("rows");
        let last = result.rows.last().expect("rows");
        assert!(last.membership_queries > first.membership_queries * 0.5);
        // Polynomial, not exponential: stays way below alphabet^states.
        assert!(last.membership_queries < 1e6);
    }

    #[test]
    fn table_renders() {
        let mut rng = StdRng::seed_from_u64(3);
        let result = run_sequential(&SequentialParams::quick(), &mut rng);
        assert!(result.to_table().to_string().contains("membership"));
    }
}
