//! A uniform attack harness: run any learner against any target under
//! an explicit adversary model and collect a comparable report.

use crate::adversary::AdversaryModel;
use mlam_boolean::BooleanFunction;
use mlam_learn::dataset::LabeledSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// The outcome of one attack run, annotated with the adversary model it
/// operated in — so two reports can be checked for comparability before
/// their numbers are compared (the paper's core discipline).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Human-readable learner name.
    pub learner: String,
    /// The setting the attack ran in.
    pub setting: AdversaryModel,
    /// Test accuracy reached.
    pub accuracy: f64,
    /// Oracle interactions consumed (examples and/or queries).
    pub queries: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Telemetry counter increments observed while the learner ran
    /// (e.g. `learn.perceptron.epochs`, `sat.conflicts`). Empty when
    /// the learner touched no instrumented code path.
    pub metrics: BTreeMap<String, u64>,
}

impl AttackReport {
    /// Whether this report's numbers may be compared with `other`'s —
    /// true only when the two settings are mutually comparable.
    pub fn comparable_with(&self, other: &AttackReport) -> bool {
        self.setting.comparability(&other.setting).is_comparable()
            && other.setting.comparability(&self.setting).is_comparable()
    }
}

/// Runs a training-set-based learner against a target and reports in
/// the given setting.
///
/// `learner` maps the training set to a hypothesis; the report's query
/// count is the training-set size.
///
/// # Panics
///
/// Panics if `test` is empty.
pub fn run_example_attack<F, L, H>(
    name: &str,
    setting: AdversaryModel,
    train: &LabeledSet,
    test: &LabeledSet,
    learner: L,
) -> AttackReport
where
    F: ?Sized,
    L: FnOnce(&LabeledSet) -> H,
    H: BooleanFunction,
{
    let span = mlam_telemetry::span("attack.example")
        .attr("learner", name)
        .attr("train", train.len());
    let before = mlam_telemetry::snapshot();
    let started = Instant::now();
    let hypothesis = learner(train);
    let seconds = started.elapsed().as_secs_f64();
    let metrics = mlam_telemetry::snapshot().counter_deltas_since(&before);
    drop(span);
    AttackReport {
        learner: name.to_string(),
        setting,
        accuracy: test.accuracy_of(&hypothesis),
        queries: train.len() as u64,
        seconds,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdversaryModel;
    use mlam_boolean::LinearThreshold;
    use mlam_learn::perceptron::Perceptron;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harness_reports_accuracy_and_cost() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = LinearThreshold::random(16, &mut rng);
        let train = LabeledSet::sample(&target, 1500, &mut rng);
        let test = LabeledSet::sample(&target, 1000, &mut rng);
        let report = run_example_attack::<LinearThreshold, _, _>(
            "perceptron",
            AdversaryModel::uniform_example_attack(),
            &train,
            &test,
            |tr| Perceptron::new(100).train(tr).model,
        );
        assert!(report.accuracy > 0.9, "{report:?}");
        assert_eq!(report.queries, 1500);
        assert!(report.seconds >= 0.0);
        // The perceptron's instrumentation must show up in the report.
        assert!(
            report.metrics.contains_key("learn.perceptron.epochs"),
            "{:?}",
            report.metrics
        );
    }

    #[test]
    fn comparability_gate() {
        let a = AttackReport {
            learner: "x".into(),
            setting: AdversaryModel::uniform_example_attack(),
            accuracy: 0.9,
            queries: 10,
            seconds: 0.0,
            metrics: BTreeMap::new(),
        };
        let mut b = a.clone();
        assert!(a.comparable_with(&b));
        b.setting = AdversaryModel::membership_query_attack();
        assert!(!a.comparable_with(&b));
    }
}
