//! Lightweight table formatting for experiment output.
//!
//! Every experiment driver renders its result through [`Table`], so the
//! benchmark binaries print the same row/column layout the paper uses.

use std::fmt;

/// A simple column-aligned text table with a title.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header's.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "cell count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable items.
    pub fn row_display<T: fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows, as strings.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Renders as GitHub-flavored Markdown. Literal `|` in headers and
    /// cells is escaped so it cannot break the column structure.
    pub fn to_markdown(&self) -> String {
        let esc = |s: &String| s.replace('|', "\\|");
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!(
            "| {} |\n",
            self.header.iter().map(esc).collect::<Vec<_>>().join(" | ")
        ));
        out.push_str(&format!(
            "|{}|\n",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "| {} |\n",
                row.iter().map(esc).collect::<Vec<_>>().join(" | ")
            ));
        }
        out
    }

    /// The rows as JSON objects keyed by column header — the machine
    /// companion of [`Table::to_markdown`] for `--json` output.
    pub fn to_json_rows(&self) -> serde_json::Value {
        serde_json::Value::Seq(
            self.rows
                .iter()
                .map(|row| {
                    serde_json::Value::Map(
                        self.header
                            .iter()
                            .zip(row)
                            .map(|(h, c)| (h.clone(), serde_json::Value::Str(c.clone())))
                            .collect(),
                    )
                })
                .collect(),
        )
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            writeln!(f, "  {}", padded.join("  "))
        };
        line(f, &self.header)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals (Table II
/// style).
pub fn pct(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

/// Formats a large count in engineering notation.
pub fn eng(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    if v == 0.0 {
        return "0".into();
    }
    let exp = v.abs().log10().floor();
    if (0.0..6.0).contains(&exp) {
        format!("{v:.0}")
    } else {
        format!("{:.2}e{}", v / 10f64.powf(exp), exp as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new("Demo", &["a", "long-header", "c"]);
        t.row_display(&["1", "2", "3"]);
        t.row_display(&["wide-cell", "x", "y"]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row_display(&[1, 2]);
        let md = t.to_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn pct_and_eng() {
        assert_eq!(pct(0.9312), "93.12");
        assert_eq!(eng(1234.0), "1234");
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(f64::INFINITY), "inf");
        assert!(eng(1.5e12).contains('e'));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn wrong_row_width_panics() {
        Table::new("T", &["a", "b"]).row_display(&[1]);
    }

    #[test]
    fn markdown_escapes_pipes_in_cells() {
        let mut t = Table::new("T", &["expr", "n"]);
        t.row_display(&["a|b", "3"]);
        let md = t.to_markdown();
        assert!(md.contains("| a\\|b | 3 |"), "{md}");
        // The escaped cell must not add a column.
        let data_line = md.lines().last().unwrap();
        assert_eq!(data_line.matches(" | ").count(), 1);
    }

    #[test]
    fn json_rows_key_cells_by_header() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row_display(&["1", "a|b"]);
        t.row_display(&["2", "c"]);
        let json = serde_json::to_string(&t.to_json_rows()).unwrap();
        let back: serde_json::Value = serde_json::from_str(&json).unwrap();
        match back {
            serde_json::Value::Seq(rows) => {
                assert_eq!(rows.len(), 2);
                match &rows[0] {
                    serde_json::Value::Map(fields) => {
                        assert_eq!(
                            fields[0],
                            ("x".to_string(), serde_json::Value::Str("1".into()))
                        );
                        assert_eq!(
                            fields[1],
                            ("y".to_string(), serde_json::Value::Str("a|b".into()))
                        );
                    }
                    other => panic!("expected map row, got {other:?}"),
                }
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }
}
