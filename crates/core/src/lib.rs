//! # mlam — Machine-Learning Adversary Modeling for Hardware Systems
//!
//! A Rust reproduction of Ganji, Amir, Tajik, Forte and Seifert,
//! *"Pitfalls in Machine Learning-based Adversary Modeling for Hardware
//! Systems"*, DATE 2020.
//!
//! The paper's thesis: an ML-based security assessment of a hardware
//! primitive is only meaningful relative to a fully specified
//! **adversary model** with three axes —
//!
//! 1. the **distribution** of learning examples (arbitrary vs. uniform),
//! 2. the **access** granted to the attacker (random examples,
//!    membership queries, equivalence queries),
//! 3. the **representations** used for the concept and the hypothesis
//!    (proper vs. improper learning).
//!
//! This crate makes those axes first-class values ([`adversary`]),
//! provides the paper's analytic CRP bounds ([`bounds`]), and drives
//! every experiment of the evaluation section ([`experiments`]) on top
//! of the workspace substrates:
//!
//! - [`mlam_boolean`]: Fourier analysis, LTFs/Chow parameters,
//!   halfspace property testing;
//! - [`mlam_puf`]: Arbiter / XOR Arbiter / Bistable Ring PUF simulators;
//! - [`mlam_learn`]: from-scratch Perceptron, logistic regression,
//!   CMA-ES, LMN, Chow reconstruction, F₂ interpolation and Angluin L*;
//! - [`mlam_netlist`] / [`mlam_sat`] / [`mlam_locking`]: gate-level
//!   circuits, a CDCL SAT solver and logic-locking schemes + attacks.
//!
//! ## Quickstart
//!
//! ```
//! use mlam::adversary::{AccessModel, AdversaryModel, DistributionModel};
//! use mlam::bounds::TableOne;
//!
//! // The four Table I rows for a 64-stage, 4-chain XOR Arbiter PUF at
//! // (eps, delta) = (0.05, 0.01):
//! let table = TableOne::compute(64, 4, 0.05, 0.01);
//! assert!(table.perceptron_bound > table.general_bound);
//!
//! // The pitfall detector: a distribution-free security claim is not
//! // refuted by a uniform-distribution attack...
//! let claim = AdversaryModel::distribution_free_claim();
//! let attack = AdversaryModel::uniform_example_attack();
//! let verdict = claim.comparability(&attack);
//! assert!(!verdict.is_comparable());
//! ```

#![warn(missing_docs)]

pub mod adversary;
pub mod attack;
pub mod bounds;
pub mod experiments;
pub mod report;

pub use adversary::{
    AccessModel, AdversaryModel, Comparability, DistributionModel, Pitfall, RepresentationModel,
};
pub use attack::AttackReport;
pub use bounds::TableOne;

// Re-export the substrate crates under one roof.
pub use mlam_boolean as boolean;
pub use mlam_learn as learn;
pub use mlam_locking as locking;
pub use mlam_netlist as netlist;
pub use mlam_puf as puf;
pub use mlam_sat as sat;
pub use mlam_telemetry as telemetry;
