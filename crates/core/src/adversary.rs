//! The adversary model: distribution × access × representation.
//!
//! These types make the paper's three axes explicit and executable.
//! [`AdversaryModel::comparability`] is the "pitfall detector": given
//! the adversary model a *security claim* was proven under and the
//! model an *attack* (or another claim) operates in, it reports whether
//! conclusions may be transferred — and if not, which of the paper's
//! pitfalls applies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The distribution of learning examples (paper, Section III).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DistributionModel {
    /// Distribution-free: the guarantee must hold under every fixed
    /// distribution (original PAC learning, Definition 1).
    Arbitrary,
    /// The uniform distribution — what hardware papers silently mean by
    /// "random CRPs".
    Uniform,
    /// An explicit product distribution with the given per-bit bias.
    ProductBiased(f64),
}

impl DistributionModel {
    /// Whether a guarantee under `self` transfers to setting `other`.
    ///
    /// An `Arbitrary` (distribution-free) guarantee covers every other
    /// setting; a distribution-specific guarantee covers only itself.
    pub fn covers(&self, other: &DistributionModel) -> bool {
        matches!(self, DistributionModel::Arbitrary) || self == other
    }
}

impl fmt::Display for DistributionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributionModel::Arbitrary => write!(f, "arbitrary"),
            DistributionModel::Uniform => write!(f, "uniform"),
            DistributionModel::ProductBiased(p) => write!(f, "product(p={p})"),
        }
    }
}

/// The attacker's access to the unknown function (paper, Section IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AccessModel {
    /// Labeled examples from a fixed distribution
    /// (known-plaintext-style).
    RandomExamples,
    /// Equivalence queries — simulable from random examples (Angluin),
    /// hence only marginally stronger.
    EquivalenceQueries,
    /// Membership queries: the attacker chooses inputs
    /// (chosen-plaintext-style). Strictly the strongest of the three.
    MembershipQueries,
}

impl AccessModel {
    /// Whether an attacker with `self` can simulate an attacker with
    /// `other`.
    ///
    /// Membership ≥ Equivalence ≥ Random: membership queries on random
    /// points yield random examples, and equivalence queries are
    /// simulable from random examples \[22\].
    pub fn at_least(&self, other: &AccessModel) -> bool {
        self >= other
    }
}

impl fmt::Display for AccessModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessModel::RandomExamples => write!(f, "random examples"),
            AccessModel::EquivalenceQueries => write!(f, "equivalence queries"),
            AccessModel::MembershipQueries => write!(f, "membership queries"),
        }
    }
}

/// The hypothesis representation the learner must output
/// (paper, Section V-B).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepresentationModel {
    /// Proper learning: the hypothesis must come from the named class
    /// (e.g. "LTF", "DFA").
    Proper(String),
    /// Improper learning: any efficiently evaluable hypothesis —
    /// strictly more powerful despite the name.
    Improper,
}

impl RepresentationModel {
    /// Convenience constructor for a proper class.
    pub fn proper(class: impl Into<String>) -> Self {
        RepresentationModel::Proper(class.into())
    }

    /// Whether a hardness claim against `self` covers learners using
    /// `other`: hardness against improper learners covers everything,
    /// hardness against a proper class covers only that class.
    pub fn hardness_covers(&self, other: &RepresentationModel) -> bool {
        match (self, other) {
            (RepresentationModel::Improper, _) => true,
            (RepresentationModel::Proper(a), RepresentationModel::Proper(b)) => a == b,
            (RepresentationModel::Proper(_), RepresentationModel::Improper) => false,
        }
    }
}

impl fmt::Display for RepresentationModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepresentationModel::Proper(c) => write!(f, "proper ({c})"),
            RepresentationModel::Improper => write!(f, "improper"),
        }
    }
}

/// The inference goal (paper, Section IV-A, after Rivest \[2\]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum InferenceGoal {
    /// ε-approximation of the target (PAC learning).
    Approximate,
    /// Exact identification (cryptanalysis).
    Exact,
}

impl fmt::Display for InferenceGoal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceGoal::Approximate => write!(f, "approximate"),
            InferenceGoal::Exact => write!(f, "exact"),
        }
    }
}

/// A complete adversary model: the setting a security claim is proven
/// under, or the setting an attack operates in.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdversaryModel {
    /// Example distribution.
    pub distribution: DistributionModel,
    /// Query access.
    pub access: AccessModel,
    /// Hypothesis representation.
    pub representation: RepresentationModel,
    /// Inference goal.
    pub goal: InferenceGoal,
}

impl AdversaryModel {
    /// The setting of the hardness result of \[9\] (Table I row 1):
    /// distribution-free, random examples, proper LTF-product learner,
    /// approximate inference.
    pub fn distribution_free_claim() -> Self {
        AdversaryModel {
            distribution: DistributionModel::Arbitrary,
            access: AccessModel::RandomExamples,
            representation: RepresentationModel::proper("XOR of LTFs"),
            goal: InferenceGoal::Approximate,
        }
    }

    /// The setting of a typical empirical modeling attack: uniform
    /// CRPs, random examples, improper hypothesis (e.g. the LMN
    /// spectrum of \[17\]).
    pub fn uniform_example_attack() -> Self {
        AdversaryModel {
            distribution: DistributionModel::Uniform,
            access: AccessModel::RandomExamples,
            representation: RepresentationModel::Improper,
            goal: InferenceGoal::Approximate,
        }
    }

    /// The setting of Corollary 2: uniform membership queries, improper
    /// hypothesis (sparse F₂ polynomial), exact inference.
    pub fn membership_query_attack() -> Self {
        AdversaryModel {
            distribution: DistributionModel::Uniform,
            access: AccessModel::MembershipQueries,
            representation: RepresentationModel::Improper,
            goal: InferenceGoal::Exact,
        }
    }

    /// Checks whether a *security claim* proven under `self` says
    /// anything about an attacker operating under `attack` — the
    /// paper's pitfall detector.
    ///
    /// A hardness claim transfers only when its setting **covers** the
    /// attack's on every axis:
    ///
    /// - the claim's distribution family must include the attack's,
    /// - the claim's access must be at least the attack's,
    /// - the claim's representation restriction must cover the attack's
    ///   hypothesis class,
    /// - an exact-inference impossibility says nothing about
    ///   approximate attacks (and, with membership queries, approximate
    ///   learners convert to exact ones, cf. Section IV-A).
    pub fn comparability(&self, attack: &AdversaryModel) -> Comparability {
        let mut pitfalls = Vec::new();
        if !self.distribution.covers(&attack.distribution) {
            pitfalls.push(Pitfall::DistributionMismatch {
                claim: self.distribution,
                attack: attack.distribution,
            });
        }
        if !self.access.at_least(&attack.access) {
            pitfalls.push(Pitfall::AccessMismatch {
                claim: self.access,
                attack: attack.access,
            });
        }
        if !self.representation.hardness_covers(&attack.representation) {
            pitfalls.push(Pitfall::RepresentationMismatch {
                claim: self.representation.clone(),
                attack: attack.representation.clone(),
            });
        }
        if self.goal == InferenceGoal::Exact && attack.goal == InferenceGoal::Approximate {
            pitfalls.push(Pitfall::ExactVersusApproximate);
        }
        if self.goal == InferenceGoal::Exact && attack.access == AccessModel::MembershipQueries {
            // Approximate-to-exact conversion with membership queries:
            // an exact-hardness claim is void against such attackers.
            pitfalls.push(Pitfall::ApproximateToExactConversion);
        }
        if pitfalls.is_empty() {
            Comparability::Comparable
        } else {
            Comparability::Incomparable(pitfalls)
        }
    }
}

impl fmt::Display for AdversaryModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} distribution, {}, {} hypothesis, {} inference",
            self.distribution, self.access, self.representation, self.goal
        )
    }
}

/// One of the paper's pitfalls, detected between a claim and an attack
/// setting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Pitfall {
    /// Section III: the claim's distribution family does not include
    /// the attack's (e.g. a uniform-PAC bound quoted against a
    /// distribution-free claim, or vice versa).
    DistributionMismatch {
        /// Distribution of the claim.
        claim: DistributionModel,
        /// Distribution of the attack.
        attack: DistributionModel,
    },
    /// Section IV: the attack enjoys stronger access than the claim
    /// models (e.g. membership queries vs. random examples).
    AccessMismatch {
        /// Access of the claim.
        claim: AccessModel,
        /// Access of the attack.
        attack: AccessModel,
    },
    /// Section V: the claim restricts the hypothesis representation but
    /// the attack does not (improper learning).
    RepresentationMismatch {
        /// Representation of the claim.
        claim: RepresentationModel,
        /// Representation of the attack.
        attack: RepresentationModel,
    },
    /// Section IV-A: exact-inference impossibility quoted against an
    /// approximate attacker.
    ExactVersusApproximate,
    /// Section IV-A: with membership queries, approximate learners
    /// convert to exact ones, so exact-hardness claims are vacuous.
    ApproximateToExactConversion,
}

impl fmt::Display for Pitfall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pitfall::DistributionMismatch { claim, attack } => write!(
                f,
                "distribution mismatch: claim proven for {claim} examples, attack draws {attack} examples"
            ),
            Pitfall::AccessMismatch { claim, attack } => write!(
                f,
                "access mismatch: claim models {claim}, attack uses {attack}"
            ),
            Pitfall::RepresentationMismatch { claim, attack } => write!(
                f,
                "representation mismatch: claim restricts to {claim}, attack is {attack}"
            ),
            Pitfall::ExactVersusApproximate => write!(
                f,
                "exact-inference impossibility quoted against an approximate attacker"
            ),
            Pitfall::ApproximateToExactConversion => write!(
                f,
                "membership queries convert approximate learning to exact learning, voiding exact-hardness"
            ),
        }
    }
}

/// Verdict of [`AdversaryModel::comparability`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Comparability {
    /// The claim's guarantees transfer to the attack's setting.
    Comparable,
    /// They do not; the listed pitfalls explain why.
    Incomparable(Vec<Pitfall>),
}

impl Comparability {
    /// Whether the settings are comparable.
    pub fn is_comparable(&self) -> bool {
        matches!(self, Comparability::Comparable)
    }

    /// The detected pitfalls (empty when comparable).
    pub fn pitfalls(&self) -> &[Pitfall] {
        match self {
            Comparability::Comparable => &[],
            Comparability::Incomparable(p) => p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_hierarchy() {
        use AccessModel::*;
        assert!(MembershipQueries.at_least(&EquivalenceQueries));
        assert!(EquivalenceQueries.at_least(&RandomExamples));
        assert!(MembershipQueries.at_least(&RandomExamples));
        assert!(!RandomExamples.at_least(&MembershipQueries));
        assert!(RandomExamples.at_least(&RandomExamples));
    }

    #[test]
    fn distribution_coverage() {
        use DistributionModel::*;
        assert!(Arbitrary.covers(&Uniform));
        assert!(Arbitrary.covers(&ProductBiased(0.2)));
        assert!(!Uniform.covers(&Arbitrary));
        assert!(Uniform.covers(&Uniform));
        assert!(!Uniform.covers(&ProductBiased(0.3)));
    }

    #[test]
    fn representation_coverage() {
        let ltf = RepresentationModel::proper("LTF");
        let dfa = RepresentationModel::proper("DFA");
        assert!(RepresentationModel::Improper.hardness_covers(&ltf));
        assert!(ltf.hardness_covers(&ltf));
        assert!(!ltf.hardness_covers(&dfa));
        assert!(!ltf.hardness_covers(&RepresentationModel::Improper));
    }

    #[test]
    fn the_papers_central_example_is_incomparable() {
        // [9] (distribution-free Perceptron bound, proper) vs. [17]
        // (uniform LMN attack, improper): incomparable — which is
        // exactly why the attack does not contradict the bound.
        let claim_9 = AdversaryModel::distribution_free_claim();
        let attack_17 = AdversaryModel::uniform_example_attack();
        // The claim in [9] is about ALL distributions, so its hardness
        // direction covers uniform... but the representation axis breaks
        // transfer: [9] bounds a proper learner, [17] is improper.
        let verdict = claim_9.comparability(&attack_17);
        assert!(!verdict.is_comparable());
        assert!(verdict
            .pitfalls()
            .iter()
            .any(|p| matches!(p, Pitfall::RepresentationMismatch { .. })));
    }

    #[test]
    fn membership_attack_voids_exact_hardness() {
        // The Section IV-A observation about [4]: exact-inference
        // resilience means nothing once membership queries exist.
        let claim = AdversaryModel {
            distribution: DistributionModel::Uniform,
            access: AccessModel::MembershipQueries,
            representation: RepresentationModel::Improper,
            goal: InferenceGoal::Exact,
        };
        let attack = AdversaryModel::membership_query_attack();
        let verdict = claim.comparability(&attack);
        assert!(verdict
            .pitfalls()
            .contains(&Pitfall::ApproximateToExactConversion));
    }

    #[test]
    fn matching_settings_are_comparable() {
        let a = AdversaryModel::uniform_example_attack();
        assert!(a.comparability(&a).is_comparable());
    }

    #[test]
    fn access_mismatch_detected() {
        let mut claim = AdversaryModel::uniform_example_attack();
        claim.access = AccessModel::RandomExamples;
        let attack = AdversaryModel::membership_query_attack();
        let verdict = claim.comparability(&attack);
        assert!(verdict
            .pitfalls()
            .iter()
            .any(|p| matches!(p, Pitfall::AccessMismatch { .. })));
    }

    #[test]
    fn display_is_informative() {
        let m = AdversaryModel::membership_query_attack();
        let s = m.to_string();
        assert!(s.contains("membership queries"));
        assert!(s.contains("uniform"));
        assert!(s.contains("improper"));
        assert!(s.contains("exact"));
    }
}
