//! The analytic CRP bounds of Table I, as executable formulas.
//!
//! Each row of Table I bounds the number of CRPs needed to PAC-learn an
//! `n`-bit, `k`-chain XOR Arbiter PUF to accuracy `1−ε` with confidence
//! `1−δ` — in a *different* adversary model, which is the point:
//!
//! | Row | Bound | Distribution | Algorithm | Access |
//! |---|---|---|---|---|
//! | \[9\] | `O((n+1)^k/ε³ + ln(1/δ)/ε)` | arbitrary | Perceptron | random examples |
//! | General | `O((k(n+1)(1+ln(kn+k))·ln(1/ε) + ln(1/δ))/ε)` | uniform | any (VC) | uniform examples |
//! | Cor. 1 | `O(n^{k²/ε²}·ln(1/δ))` | uniform | LMN | uniform examples |
//! | Cor. 2 | `poly(n, k, 1/ε, log(1/δ))` | uniform | LearnPoly | membership queries |

use crate::adversary::{
    AccessModel, AdversaryModel, DistributionModel, InferenceGoal, RepresentationModel,
};
use serde::{Deserialize, Serialize};

/// Row 1 of Table I: the Perceptron mistake-bound result of \[9\]:
/// `(n+1)^k/ε³ + ln(1/δ)/ε` (big-O constants set to 1).
///
/// # Panics
///
/// Panics unless `ε, δ ∈ (0, 1)` and `n, k ≥ 1`.
pub fn perceptron_bound(n: usize, k: usize, eps: f64, delta: f64) -> f64 {
    validate(n, k, eps, delta);
    ((n + 1) as f64).powi(k as i32) / eps.powi(3) + (1.0 / delta).ln() / eps
}

/// Row 2: the algorithm-independent VC bound (Blumer et al. \[12\]) with
/// `VCdim = O(k(n+1)(1+log(kn+k)))` \[17\]:
/// `(k(n+1)(1+ln(kn+k))·ln(1/ε) + ln(1/δ))/ε`.
pub fn general_vc_bound(n: usize, k: usize, eps: f64, delta: f64) -> f64 {
    validate(n, k, eps, delta);
    let vc = k as f64 * (n + 1) as f64 * (1.0 + ((k * n + k) as f64).ln());
    (vc * (1.0 / eps).ln() + (1.0 / delta).ln()) / eps
}

/// Row 3 (Corollary 1): the LMN bound `n^{2.32·k²/ε²}·ln(1/δ)`,
/// returned as `log₁₀` because the raw value overflows for every
/// interesting parameter choice — which is the paper's point about
/// `k ≫ √(ln n)`.
pub fn lmn_bound_log10(n: usize, k: usize, eps: f64, delta: f64) -> f64 {
    validate(n, k, eps, delta);
    let degree = 2.32 * (k * k) as f64 / (eps * eps);
    degree * (n as f64).log10() + (1.0 / delta).ln().max(1.0).log10()
}

/// Row 4 (Corollary 2): a concrete polynomial witness for the
/// `poly(n, k, 1/ε, log(1/δ))` membership-query bound: the Möbius
/// interpolation budget `Σ_{j≤r} C(n,j)` at junta size
/// `r = ⌈ε^{−3/2}⌉` per chain times `k`, plus the equivalence
/// simulation `ln(1/δ)/ε`.
pub fn learnpoly_bound(n: usize, k: usize, eps: f64, delta: f64) -> f64 {
    validate(n, k, eps, delta);
    let r = eps.powf(-1.5).ceil() as usize;
    let mut budget = 0.0f64;
    for j in 0..=r.min(n) {
        budget += binomial_f64(n, j);
        if budget > 1e300 {
            break;
        }
    }
    k as f64 * budget + (1.0 / delta).ln() / eps
}

fn binomial_f64(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

fn validate(n: usize, k: usize, eps: f64, delta: f64) {
    assert!(n >= 1 && k >= 1, "n and k must be positive");
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
}

/// All four Table I rows for one parameter point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableOne {
    /// Stages per chain.
    pub n: usize,
    /// Number of chains.
    pub k: usize,
    /// Accuracy parameter ε.
    pub eps: f64,
    /// Confidence parameter δ.
    pub delta: f64,
    /// Row 1: Perceptron bound of \[9\].
    pub perceptron_bound: f64,
    /// Row 2: algorithm-independent VC bound.
    pub general_bound: f64,
    /// Row 3: LMN bound, as log₁₀ of the CRP count.
    pub lmn_bound_log10: f64,
    /// Row 4: LearnPoly membership-query bound.
    pub learnpoly_bound: f64,
}

impl TableOne {
    /// Computes every row at `(n, k, eps, delta)`.
    pub fn compute(n: usize, k: usize, eps: f64, delta: f64) -> Self {
        TableOne {
            n,
            k,
            eps,
            delta,
            perceptron_bound: perceptron_bound(n, k, eps, delta),
            general_bound: general_vc_bound(n, k, eps, delta),
            lmn_bound_log10: lmn_bound_log10(n, k, eps, delta),
            learnpoly_bound: learnpoly_bound(n, k, eps, delta),
        }
    }

    /// The adversary model of each row, in table order — the settings
    /// column of Table I as values.
    pub fn settings() -> [AdversaryModel; 4] {
        [
            AdversaryModel {
                distribution: DistributionModel::Arbitrary,
                access: AccessModel::RandomExamples,
                representation: RepresentationModel::proper("XOR of LTFs"),
                goal: InferenceGoal::Approximate,
            },
            AdversaryModel {
                distribution: DistributionModel::Uniform,
                access: AccessModel::RandomExamples,
                representation: RepresentationModel::Improper,
                goal: InferenceGoal::Approximate,
            },
            AdversaryModel {
                distribution: DistributionModel::Uniform,
                access: AccessModel::RandomExamples,
                representation: RepresentationModel::Improper,
                goal: InferenceGoal::Approximate,
            },
            AdversaryModel {
                distribution: DistributionModel::Uniform,
                access: AccessModel::MembershipQueries,
                representation: RepresentationModel::Improper,
                goal: InferenceGoal::Exact,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perceptron_bound_is_exponential_in_k() {
        let b2 = perceptron_bound(64, 2, 0.05, 0.01);
        let b4 = perceptron_bound(64, 4, 0.05, 0.01);
        // Doubling k squares the dominant term.
        let ratio = b4 / b2;
        assert!(
            (ratio - 65.0f64.powi(2)).abs() / 65.0f64.powi(2) < 0.01,
            "ratio {ratio}"
        );
    }

    #[test]
    fn general_bound_is_polynomial_and_smaller() {
        for k in 2..=6 {
            let t = TableOne::compute(64, k, 0.05, 0.01);
            assert!(
                t.general_bound < t.perceptron_bound,
                "k={k}: VC {} vs Perceptron {}",
                t.general_bound,
                t.perceptron_bound
            );
        }
        // Polynomial: multiplying k by 4 multiplies the bound by ~4-ish
        // (up to the log factor), not exponentially.
        let b1 = general_vc_bound(64, 1, 0.05, 0.01);
        let b4 = general_vc_bound(64, 4, 0.05, 0.01);
        assert!(b4 / b1 < 8.0);
    }

    #[test]
    fn lmn_bound_explodes_past_sqrt_log_n() {
        // k = 1 at eps = 0.5: manageable.
        let small = lmn_bound_log10(64, 1, 0.5, 0.01);
        // k = 8: astronomically large (log10 in the thousands).
        let large = lmn_bound_log10(64, 8, 0.5, 0.01);
        assert!(small < 30.0, "small {small}");
        assert!(large > 1000.0, "large {large}");
    }

    #[test]
    fn learnpoly_bound_is_polynomial_in_n() {
        let b64 = learnpoly_bound(64, 2, 0.3, 0.01);
        let b128 = learnpoly_bound(128, 2, 0.3, 0.01);
        // r = ceil(0.3^-1.5) = 7; budget ~ C(n,7) ~ n^7/5040: doubling n
        // multiplies by ~2^7.
        let ratio = b128 / b64;
        assert!(ratio > 50.0 && ratio < 300.0, "ratio {ratio}");
    }

    #[test]
    fn settings_match_the_paper_table() {
        let s = TableOne::settings();
        assert_eq!(s[0].distribution, DistributionModel::Arbitrary);
        assert_eq!(s[1].distribution, DistributionModel::Uniform);
        assert_eq!(s[3].access, AccessModel::MembershipQueries);
        assert_eq!(s[0].access, AccessModel::RandomExamples);
    }

    #[test]
    fn bounds_shrink_with_looser_eps() {
        assert!(perceptron_bound(32, 2, 0.2, 0.01) < perceptron_bound(32, 2, 0.05, 0.01));
        assert!(general_vc_bound(32, 2, 0.2, 0.01) < general_vc_bound(32, 2, 0.05, 0.01));
        assert!(lmn_bound_log10(32, 2, 0.2, 0.01) < lmn_bound_log10(32, 2, 0.05, 0.01));
    }

    #[test]
    #[should_panic(expected = "eps must be in")]
    fn invalid_eps_panics() {
        perceptron_bound(8, 1, 1.5, 0.01);
    }
}
