//! Enumeration of subsets `S ⊆ [n]` by cardinality, as `u64` masks.
//!
//! The low-degree (LMN) algorithm and the F2 interpolation learner both
//! need to walk every subset of size at most `d`. [`SubsetsUpTo`] yields
//! them in order of increasing cardinality, each cardinality in
//! lexicographic mask order, using Gosper's hack.

/// Iterator over all masks of `n`-bit subsets with `|S| <= max_size`,
/// in order of increasing size.
///
/// # Example
///
/// ```
/// use mlam_boolean::SubsetsUpTo;
/// let masks: Vec<u64> = SubsetsUpTo::new(3, 1).collect();
/// assert_eq!(masks, vec![0b000, 0b001, 0b010, 0b100]);
/// ```
#[derive(Clone, Debug)]
pub struct SubsetsUpTo {
    n: usize,
    max_size: usize,
    current_size: usize,
    /// Next mask of the current size, or `None` when the size is
    /// exhausted.
    next_mask: Option<u64>,
}

impl SubsetsUpTo {
    /// Creates the iterator for subsets of `[n]` of size at most
    /// `max_size` (clamped to `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 63`.
    pub fn new(n: usize, max_size: usize) -> Self {
        assert!(n <= 63, "subset masks limited to n <= 63, got {n}");
        SubsetsUpTo {
            n,
            max_size: max_size.min(n),
            current_size: 0,
            next_mask: Some(0),
        }
    }

    /// Number of masks this iterator yields in total:
    /// `Σ_{k<=max_size} C(n,k)`.
    pub fn count_total(n: usize, max_size: usize) -> u128 {
        (0..=max_size.min(n)).map(|k| binomial(n, k)).sum()
    }
}

/// Binomial coefficient `C(n, k)` as a `u128` (exact for the sizes used
/// here).
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        num = num * (n - i) as u128 / (i + 1) as u128;
    }
    num
}

/// Gosper's hack: next larger integer with the same popcount, or `None`
/// on overflow past `n` bits.
fn next_same_popcount(v: u64, n: usize) -> Option<u64> {
    if v == 0 {
        return None;
    }
    let c = v & v.wrapping_neg();
    let r = v + c;
    if r == 0 {
        return None;
    }
    let next = (((r ^ v) >> 2) / c) | r;
    if next < (1u64 << n) {
        Some(next)
    } else {
        None
    }
}

impl Iterator for SubsetsUpTo {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            if self.current_size > self.max_size {
                return None;
            }
            if let Some(mask) = self.next_mask {
                self.next_mask = next_same_popcount(mask, self.n);
                return Some(mask);
            }
            // Advance to the next cardinality.
            self.current_size += 1;
            if self.current_size > self.max_size || self.current_size > self.n {
                self.current_size = self.max_size + 1;
                return None;
            }
            self.next_mask = Some((1u64 << self.current_size) - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn enumerates_all_subsets_up_to_size() {
        let masks: Vec<u64> = SubsetsUpTo::new(4, 2).collect();
        let expected_count = 1 + 4 + 6;
        assert_eq!(masks.len(), expected_count);
        assert_eq!(masks.len() as u128, SubsetsUpTo::count_total(4, 2));
        let set: HashSet<u64> = masks.iter().copied().collect();
        assert_eq!(set.len(), masks.len(), "duplicates produced");
        for &m in &masks {
            assert!(m < 16);
            assert!(m.count_ones() <= 2);
        }
        // Every size-<=2 subset is present.
        for m in 0u64..16 {
            assert_eq!(set.contains(&m), m.count_ones() <= 2);
        }
    }

    #[test]
    fn sizes_are_nondecreasing() {
        let masks: Vec<u64> = SubsetsUpTo::new(6, 4).collect();
        let sizes: Vec<u32> = masks.iter().map(|m| m.count_ones()).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn full_enumeration_matches_power_set() {
        let masks: Vec<u64> = SubsetsUpTo::new(5, 5).collect();
        assert_eq!(masks.len(), 32);
    }

    #[test]
    fn max_size_zero_yields_only_empty_set() {
        let masks: Vec<u64> = SubsetsUpTo::new(10, 0).collect();
        assert_eq!(masks, vec![0]);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(64, 32), 1832624140942590534);
    }

    #[test]
    fn large_n_small_degree() {
        let masks: Vec<u64> = SubsetsUpTo::new(63, 1).collect();
        assert_eq!(masks.len(), 64);
    }
}
