//! Fast Walsh–Hadamard transform (WHT).
//!
//! The WHT maps a function table indexed by `x ∈ {0,1}^n` into the table
//! of (unnormalized) Fourier coefficients indexed by subset masks
//! `S ⊆ [n]`, in `O(n·2^n)` time. It is the workhorse behind exact Fourier
//! expansions and exact Chow parameters for small `n`.
//!
//! For tables of at least [`PAR_THRESHOLD`] entries each butterfly stage
//! fans its independent blocks out across `MLAM_THREADS` workers. Every
//! output element is computed by the same expression on the same inputs
//! regardless of which worker runs it, so the transform is bit-identical
//! at any thread count.

use std::ops::{Add, Sub};

/// Table length from which the butterfly stages run in parallel.
///
/// Below this, the sequential sweep is faster than spawning workers;
/// results are identical either way.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// One butterfly block: `chunk` has length `2h`; pairs `(lo[i], hi[i])`
/// become `(lo+hi, lo-hi)`.
fn butterfly<T>(chunk: &mut [T], h: usize)
where
    T: Copy + Add<Output = T> + Sub<Output = T>,
{
    let (lo, hi) = chunk.split_at_mut(h);
    for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
        let (x, y) = (*a, *b);
        *a = x + y;
        *b = x - y;
    }
}

/// The shared stage loop, generic over the scalar, with an explicit
/// worker count so tests can sweep thread counts.
fn wht_in_place<T>(t: usize, data: &mut [T])
where
    T: Copy + Send + Add<Output = T> + Sub<Output = T>,
{
    let n = data.len();
    assert!(n.is_power_of_two(), "WHT length must be a power of two");
    let mut h = 1;
    while h < n {
        // Blocks of one stage are disjoint; the final stages have too
        // few blocks to share, so they stay on the calling thread.
        if n >= PAR_THRESHOLD && 2 * h < n {
            mlam_par::pool::par_for_each_mut_with_threads(t, data, 2 * h, |_, chunk| {
                butterfly(chunk, h)
            });
        } else {
            for chunk in data.chunks_exact_mut(2 * h) {
                butterfly(chunk, h);
            }
        }
        h *= 2;
    }
}

/// In-place fast Walsh–Hadamard transform of a `f64` buffer.
///
/// The buffer length must be a power of two. The transform is its own
/// inverse up to a factor of `len`: applying it twice multiplies every
/// entry by `len`.
///
/// With input `t[x] = f(x)` (±1 values, `x` read as a bit mask), the
/// output at index `S` equals `Σ_x f(x)·(-1)^{|x∧S|} = 2^n · f̂(S)` for
/// the ±1 character convention of the paper.
///
/// Large tables are transformed stage-by-stage across `MLAM_THREADS`
/// workers; the result is bit-identical at any thread count.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
///
/// # Example
///
/// ```
/// let mut t = vec![1.0, 1.0, 1.0, -1.0]; // AND-like table
/// mlam_boolean::wht::walsh_hadamard(&mut t);
/// assert_eq!(t, vec![2.0, 2.0, 2.0, -2.0]);
/// ```
pub fn walsh_hadamard(data: &mut [f64]) {
    wht_in_place(mlam_par::threads(), data);
}

/// In-place fast Walsh–Hadamard transform of an `i64` buffer.
///
/// Identical to [`walsh_hadamard`] but exact over integers, which keeps
/// Fourier coefficients of ±1 tables free of rounding error.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn walsh_hadamard_i64(data: &mut [i64]) {
    wht_in_place(mlam_par::threads(), data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn self_inverse_up_to_scaling() {
        let mut rng = StdRng::seed_from_u64(42);
        let orig: Vec<f64> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut t = orig.clone();
        walsh_hadamard(&mut t);
        walsh_hadamard(&mut t);
        for (a, b) in t.iter().zip(&orig) {
            assert!((a - b * 64.0).abs() < 1e-9);
        }
    }

    #[test]
    fn integer_matches_float() {
        let mut rng = StdRng::seed_from_u64(9);
        let vals: Vec<i64> = (0..32).map(|_| if rng.gen() { 1 } else { -1 }).collect();
        let mut fi = vals.clone();
        let mut ff: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
        walsh_hadamard_i64(&mut fi);
        walsh_hadamard(&mut ff);
        for (a, b) in fi.iter().zip(&ff) {
            assert_eq!(*a as f64, *b);
        }
    }

    #[test]
    fn parity_concentrates_on_full_mask() {
        // f(x) = (-1)^{x0 ^ x1}: table in ±1 is [1, -1, -1, 1].
        let mut t = vec![1i64, -1, -1, 1];
        walsh_hadamard_i64(&mut t);
        assert_eq!(t, vec![0, 0, 0, 4]);
    }

    #[test]
    fn constant_concentrates_on_empty_mask() {
        let mut t = vec![1i64; 8];
        walsh_hadamard_i64(&mut t);
        assert_eq!(t[0], 8);
        assert!(t[1..].iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        walsh_hadamard(&mut [1.0, 2.0, 3.0]);
    }

    #[test]
    fn parseval_holds() {
        let mut rng = StdRng::seed_from_u64(5);
        let vals: Vec<f64> = (0..128)
            .map(|_| if rng.gen() { 1.0 } else { -1.0 })
            .collect();
        let mut t = vals.clone();
        walsh_hadamard(&mut t);
        let sum_sq: f64 = t.iter().map(|v| (v / 128.0).powi(2)).sum();
        assert!((sum_sq - 1.0).abs() < 1e-9, "Parseval violated: {sum_sq}");
    }

    #[test]
    fn parallel_stages_are_bit_identical_at_any_thread_count() {
        // Above PAR_THRESHOLD the stage sweep goes through the worker
        // pool; the transform must match the 1-thread result exactly,
        // bit for bit, at every worker count.
        let mut rng = StdRng::seed_from_u64(77);
        let orig: Vec<f64> = (0..1usize << 15)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let mut reference = orig.clone();
        wht_in_place(1, &mut reference);
        for t in [2, 3, 4, 8] {
            let mut buf = orig.clone();
            wht_in_place(t, &mut buf);
            for (i, (a, b)) in buf.iter().zip(&reference).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "t={t}, index {i}");
            }
        }
    }
}
