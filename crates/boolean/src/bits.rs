//! Arbitrary-length bit vectors used as challenges and circuit inputs.
//!
//! [`BitVec`] is a compact, fixed-length vector of bits backed by `u64`
//! words. It is the universal input type of the workspace: PUF challenges,
//! netlist input assignments and learning examples are all `BitVec`s.

use rand::Rng;
use std::fmt;

/// A fixed-length vector of bits backed by `u64` words.
///
/// The length is fixed at construction; out-of-range accesses panic.
/// Bit `i` of the vector corresponds to challenge bit `c_i` in the paper.
///
/// # Example
///
/// ```
/// use mlam_boolean::BitVec;
///
/// let mut v = BitVec::zeros(70);
/// v.set(3, true);
/// v.set(69, true);
/// assert!(v.get(3) && v.get(69) && !v.get(0));
/// assert_eq!(v.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        v.mask_tail();
        v
    }

    /// Builds a vector from a slice of Booleans.
    ///
    /// ```
    /// use mlam_boolean::BitVec;
    /// let v = BitVec::from_bools(&[true, false, true]);
    /// assert_eq!(v.len(), 3);
    /// assert!(v.get(0) && !v.get(1) && v.get(2));
    /// ```
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Builds an `len`-bit vector from the low bits of `value`
    /// (bit `i` of the vector = bit `i` of `value`).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn from_u64(value: u64, len: usize) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits, got {len}");
        let mut v = Self::zeros(len);
        if len > 0 {
            v.words[0] = if len == 64 {
                value
            } else {
                value & ((1u64 << len) - 1)
            };
        }
        v
    }

    /// Returns the low 64 bits as a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the vector is longer than 64 bits.
    pub fn to_u64(&self) -> u64 {
        assert!(
            self.len <= 64,
            "to_u64 requires len <= 64, got {}",
            self.len
        );
        self.words.first().copied().unwrap_or(0)
    }

    /// Samples a uniformly random vector of `len` bits.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut v = Self::zeros(len);
        for w in &mut v.words {
            *w = rng.gen();
        }
        v.mask_tail();
        v
    }

    /// Samples a vector whose bits are independently 1 with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn random_biased<R: Rng + ?Sized>(len: usize, p: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&p), "bias must be in [0,1], got {p}");
        let mut v = Self::zeros(len);
        for i in 0..len {
            if rng.gen_bool(p) {
                v.set(i, true);
            }
        }
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, b: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        let w = &mut self.words[i / 64];
        if b {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Flips bit `i`, returning the new value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for len {}",
            self.len
        );
        self.words[i / 64] ^= 1 << (i % 64);
        self.get(i)
    }

    /// Returns bit `i` in the ±1 encoding of the paper (`0 → +1`, `1 → -1`).
    #[inline]
    pub fn pm(&self, i: usize) -> f64 {
        crate::to_pm(self.get(i))
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Hamming distance to another vector.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn hamming(&self, other: &BitVec) -> u32 {
        assert_eq!(self.len, other.len, "hamming distance needs equal lengths");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Parity (XOR) of the bits selected by `mask` over the low 64 bits.
    ///
    /// This evaluates the character `χ_S` with `S` given as a mask, in the
    /// `{0,1}` world: the result is `true` iff an odd number of selected
    /// bits are 1.
    ///
    /// # Panics
    ///
    /// Panics if the vector is longer than 64 bits.
    #[inline]
    pub fn parity_masked(&self, mask: u64) -> bool {
        assert!(self.len <= 64, "parity_masked requires len <= 64");
        (self.words.first().copied().unwrap_or(0) & mask).count_ones() % 2 == 1
    }

    /// Iterator over the bits, in index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { v: self, i: 0 }
    }

    /// Returns the vector as a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Returns a copy with bit `i` flipped.
    pub fn with_flipped(&self, i: usize) -> BitVec {
        let mut c = self.clone();
        c.flip(i);
        c
    }

    /// XORs `other` into `self` bitwise.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "xor_assign needs equal lengths");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// The backing `u64` words, least-significant first: bit `i` of the
    /// vector is bit `i % 64` of word `i / 64`. Bits past `len()` in
    /// the last word are always zero.
    ///
    /// This is the raw layout consumed by word-parallel kernels such as
    /// the bit-sliced PUF evaluators.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Packed suffix parities: bit `i` of the result (same word layout
    /// as [`BitVec::words`]) is the XOR of bits `i..len()`.
    ///
    /// This is the sign pattern of the arbiter Φ transform — `Φ_i` is
    /// negative exactly when the suffix parity at `i` is odd. Each word
    /// is resolved with a log-shift XOR scan plus a parity carry from
    /// the higher words, so the cost is O(len/64) word operations
    /// instead of O(len) bit reads. Bits past `len()` in the last word
    /// are zero, matching the [`BitVec::words`] invariant.
    pub fn suffix_parity_words(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.words.len()];
        // All-ones while the combined parity of the higher words is odd.
        let mut carry = 0u64;
        for g in (0..self.words.len()).rev() {
            let mut p = self.words[g];
            p ^= p >> 1;
            p ^= p >> 2;
            p ^= p >> 4;
            p ^= p >> 8;
            p ^= p >> 16;
            p ^= p >> 32;
            let v = p ^ carry;
            out[g] = v;
            carry = if v & 1 == 1 { u64::MAX } else { 0 };
        }
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = out.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        out
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

/// Iterator over the bits of a [`BitVec`].
pub struct Iter<'a> {
    v: &'a BitVec,
    i: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.i < self.v.len {
            let b = self.v.get(self.i);
            self.i += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.v.len - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl From<&[bool]> for BitVec {
    fn from(bits: &[bool]) -> Self {
        BitVec::from_bools(bits)
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert_eq!(o.len(), 130);
    }

    #[test]
    fn set_get_flip() {
        let mut v = BitVec::zeros(100);
        v.set(64, true);
        assert!(v.get(64));
        assert!(!v.flip(64));
        assert!(v.flip(99));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    fn u64_round_trip() {
        let v = BitVec::from_u64(0b1011, 4);
        assert_eq!(v.to_u64(), 0b1011);
        assert_eq!(v.len(), 4);
        assert!(v.get(0) && v.get(1) && !v.get(2) && v.get(3));
        let full = BitVec::from_u64(u64::MAX, 64);
        assert_eq!(full.to_u64(), u64::MAX);
    }

    #[test]
    fn from_u64_masks_high_bits() {
        let v = BitVec::from_u64(0xFF, 4);
        assert_eq!(v.to_u64(), 0xF);
    }

    #[test]
    fn hamming_distance() {
        let a = BitVec::from_bools(&[true, false, true, true]);
        let b = BitVec::from_bools(&[true, true, true, false]);
        assert_eq!(a.hamming(&b), 2);
    }

    #[test]
    fn parity_masked_examples() {
        // value 0b1101 -> bit0=1, bit1=0, bit2=1, bit3=1
        let v = BitVec::from_u64(0b1101, 4);
        assert!(!v.parity_masked(0b0101)); // bits 0,2 = 1,1 -> even
        assert!(v.parity_masked(0b0001)); // bit 0 = 1
        assert!(!v.parity_masked(0b1110)); // bits 1,2,3 = 0,1,1 -> even
        assert!(v.parity_masked(0b1000)); // bit 3 = 1
    }

    #[test]
    fn random_has_expected_density() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = BitVec::random(10_000, &mut rng);
        let ones = v.count_ones() as f64 / 10_000.0;
        assert!((ones - 0.5).abs() < 0.03, "density {ones}");
        let b = BitVec::random_biased(10_000, 0.2, &mut rng);
        let ones = b.count_ones() as f64 / 10_000.0;
        assert!((ones - 0.2).abs() < 0.03, "biased density {ones}");
    }

    #[test]
    fn random_tail_is_masked() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let v = BitVec::random(70, &mut rng);
            // All bits beyond len must be zero in the backing store:
            assert_eq!(v.words[1] >> 6, 0);
        }
    }

    #[test]
    fn xor_assign_is_involutive() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = BitVec::random(90, &mut rng);
        let b = BitVec::random(90, &mut rng);
        let mut c = a.clone();
        c.xor_assign(&b);
        c.xor_assign(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn iterator_and_collect() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.to_bools(), vec![true, false, true]);
        assert_eq!(v.iter().len(), 3);
    }

    #[test]
    fn display_format() {
        let v = BitVec::from_bools(&[true, false, true]);
        assert_eq!(v.to_string(), "101");
        assert_eq!(format!("{v:?}"), "BitVec[101]");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(4).get(4);
    }

    #[test]
    fn with_flipped_differs_in_one_bit() {
        let v = BitVec::zeros(9);
        let w = v.with_flipped(8);
        assert_eq!(v.hamming(&w), 1);
        assert!(w.get(8));
    }

    #[test]
    fn words_expose_the_backing_layout() {
        let mut v = BitVec::zeros(70);
        v.set(3, true);
        v.set(69, true);
        assert_eq!(v.words().len(), 2);
        assert_eq!(v.words()[0], 1 << 3);
        assert_eq!(v.words()[1], 1 << 5);
    }

    #[test]
    fn suffix_parity_matches_scalar_definition() {
        let mut rng = StdRng::seed_from_u64(17);
        for len in [0usize, 1, 2, 63, 64, 65, 100, 127, 128, 129, 200] {
            for _ in 0..8 {
                let v = BitVec::random(len, &mut rng);
                let sp = v.suffix_parity_words();
                assert_eq!(sp.len(), len.div_ceil(64));
                for i in 0..len {
                    let scalar = (i..len).fold(false, |acc, j| acc ^ v.get(j));
                    assert_eq!(
                        (sp[i / 64] >> (i % 64)) & 1 == 1,
                        scalar,
                        "len {len} bit {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn suffix_parity_tail_is_masked() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..10 {
            let v = BitVec::random(70, &mut rng);
            let sp = v.suffix_parity_words();
            assert_eq!(sp[1] >> 6, 0, "bits past len must stay zero");
        }
    }
}
