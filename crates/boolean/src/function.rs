//! The [`BooleanFunction`] trait shared by every "unknown target" in the
//! workspace.
//!
//! PUF simulators (`mlam-puf`), locked netlist outputs (`mlam-locking`)
//! and learned hypotheses (`mlam-learn`) all implement this trait, so the
//! learning and testing machinery is written once against it.

use crate::bits::BitVec;
use crate::dense::TruthTable;
use rand::Rng;

/// A (deterministic) Boolean function `f : {0,1}^n -> {0,1}`.
///
/// The trait is object-safe so that heterogeneous targets (PUFs, circuits,
/// hypotheses) can be passed as `&dyn BooleanFunction`.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, BooleanFunction, FnFunction};
///
/// let parity = FnFunction::new(4, |x: &BitVec| x.count_ones() % 2 == 1);
/// assert!(parity.eval(&BitVec::from_u64(0b0111, 4)));
/// assert_eq!(parity.eval_pm(&BitVec::from_u64(0b0111, 4)), -1.0);
/// ```
pub trait BooleanFunction {
    /// Number of input bits.
    fn num_inputs(&self) -> usize;

    /// Evaluates the function on an input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != self.num_inputs()`.
    fn eval(&self, x: &BitVec) -> bool;

    /// Evaluates in the ±1 encoding (`false → +1.0`, `true → -1.0`).
    fn eval_pm(&self, x: &BitVec) -> f64 {
        crate::to_pm(self.eval(x))
    }
}

impl<F: BooleanFunction + ?Sized> BooleanFunction for &F {
    fn num_inputs(&self) -> usize {
        (**self).num_inputs()
    }
    fn eval(&self, x: &BitVec) -> bool {
        (**self).eval(x)
    }
}

impl<F: BooleanFunction + ?Sized> BooleanFunction for Box<F> {
    fn num_inputs(&self) -> usize {
        (**self).num_inputs()
    }
    fn eval(&self, x: &BitVec) -> bool {
        (**self).eval(x)
    }
}

/// Wraps a closure as a [`BooleanFunction`].
///
/// Handy in tests and for ad-hoc targets:
///
/// ```
/// use mlam_boolean::{BitVec, BooleanFunction, FnFunction};
/// let and = FnFunction::new(2, |x: &BitVec| x.get(0) && x.get(1));
/// assert!(!and.eval(&BitVec::from_u64(0b01, 2)));
/// ```
#[derive(Clone, Debug)]
pub struct FnFunction<F> {
    n: usize,
    f: F,
}

impl<F: Fn(&BitVec) -> bool> FnFunction<F> {
    /// Creates a function of `n` inputs from a closure.
    pub fn new(n: usize, f: F) -> Self {
        FnFunction { n, f }
    }
}

impl<F: Fn(&BitVec) -> bool> BooleanFunction for FnFunction<F> {
    fn num_inputs(&self) -> usize {
        self.n
    }
    fn eval(&self, x: &BitVec) -> bool {
        (self.f)(x)
    }
}

/// Estimates the agreement `Pr_x[f(x) = g(x)]` under the uniform
/// distribution by drawing `samples` random inputs.
///
/// # Panics
///
/// Panics if the input counts differ or `samples == 0`.
pub fn agreement<F, G, R>(f: &F, g: &G, samples: usize, rng: &mut R) -> f64
where
    F: BooleanFunction + ?Sized,
    G: BooleanFunction + ?Sized,
    R: Rng + ?Sized,
{
    assert_eq!(
        f.num_inputs(),
        g.num_inputs(),
        "agreement requires equal arity"
    );
    assert!(samples > 0, "agreement needs at least one sample");
    let n = f.num_inputs();
    let mut agree = 0usize;
    for _ in 0..samples {
        let x = BitVec::random(n, rng);
        if f.eval(&x) == g.eval(&x) {
            agree += 1;
        }
    }
    agree as f64 / samples as f64
}

/// Computes the exact agreement `Pr_x[f(x) = g(x)]` over all `2^n` inputs.
///
/// Intended for small `n` (exhaustive enumeration).
///
/// # Panics
///
/// Panics if the arities differ or `n > 24`.
pub fn agreement_exact<F, G>(f: &F, g: &G) -> f64
where
    F: BooleanFunction + ?Sized,
    G: BooleanFunction + ?Sized,
{
    assert_eq!(f.num_inputs(), g.num_inputs());
    let n = f.num_inputs();
    assert!(n <= 24, "exhaustive agreement limited to n <= 24, got {n}");
    let total = 1u64 << n;
    let mut agree = 0u64;
    for v in 0..total {
        let x = BitVec::from_u64(v, n);
        if f.eval(&x) == g.eval(&x) {
            agree += 1;
        }
    }
    agree as f64 / total as f64
}

/// Materializes a function as a dense [`TruthTable`] (small `n` only).
///
/// # Panics
///
/// Panics if `f.num_inputs() > 24`.
pub fn to_truth_table<F: BooleanFunction + ?Sized>(f: &F) -> TruthTable {
    TruthTable::from_fn(f.num_inputs(), |x| f.eval(x))
}

/// Estimates the bias `E[f(x)]` in ±1 encoding under the uniform
/// distribution.
///
/// A perfectly balanced function has bias 0; the constant-0 function has
/// bias +1.
pub fn bias<F, R>(f: &F, samples: usize, rng: &mut R) -> f64
where
    F: BooleanFunction + ?Sized,
    R: Rng + ?Sized,
{
    assert!(samples > 0, "bias needs at least one sample");
    let n = f.num_inputs();
    let mut sum = 0.0;
    for _ in 0..samples {
        sum += f.eval_pm(&BitVec::random(n, rng));
    }
    sum / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn parity(n: usize) -> FnFunction<impl Fn(&BitVec) -> bool> {
        FnFunction::new(n, |x: &BitVec| x.count_ones() % 2 == 1)
    }

    #[test]
    fn fn_function_evaluates() {
        let p = parity(5);
        assert_eq!(p.num_inputs(), 5);
        assert!(p.eval(&BitVec::from_u64(0b10000, 5)));
        assert!(!p.eval(&BitVec::from_u64(0b11000, 5)));
    }

    #[test]
    fn agreement_with_self_is_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = parity(8);
        assert_eq!(agreement(&p, &p, 500, &mut rng), 1.0);
        assert_eq!(agreement_exact(&p, &p), 1.0);
    }

    #[test]
    fn agreement_with_complement_is_zero() {
        let p = parity(6);
        let q = FnFunction::new(6, |x: &BitVec| x.count_ones().is_multiple_of(2));
        assert_eq!(agreement_exact(&p, &q), 0.0);
    }

    #[test]
    fn agreement_of_independent_functions_is_half() {
        // Parity vs. a single bit are uncorrelated under uniform inputs.
        let p = parity(10);
        let b0 = FnFunction::new(10, |x: &BitVec| x.get(0));
        assert!((agreement_exact(&p, &b0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bias_of_constant_function() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = FnFunction::new(4, |_: &BitVec| false);
        assert_eq!(bias(&f, 100, &mut rng), 1.0);
        let t = FnFunction::new(4, |_: &BitVec| true);
        assert_eq!(bias(&t, 100, &mut rng), -1.0);
    }

    #[test]
    fn trait_object_and_reference_impls() {
        let p = parity(3);
        let as_ref: &dyn BooleanFunction = &p;
        assert_eq!(as_ref.num_inputs(), 3);
        let boxed: Box<dyn BooleanFunction> = Box::new(parity(3));
        assert_eq!(boxed.num_inputs(), 3);
        assert_eq!(
            boxed.eval(&BitVec::from_u64(0b111, 3)),
            as_ref.eval(&BitVec::from_u64(0b111, 3))
        );
    }

    #[test]
    fn eval_pm_matches_encoding() {
        let t = FnFunction::new(1, |_: &BitVec| true);
        assert_eq!(t.eval_pm(&BitVec::zeros(1)), -1.0);
    }
}
