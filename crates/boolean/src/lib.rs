//! Analysis of Boolean functions for hardware-security adversary modeling.
//!
//! This crate is the mathematical substrate of the `mlam` workspace. It
//! provides the objects that the DATE 2020 paper *"Pitfalls in Machine
//! Learning-based Adversary Modeling for Hardware Systems"* reasons about:
//!
//! - [`BitVec`]: arbitrary-length challenge/input vectors over `{0,1}^n`,
//! - the [`BooleanFunction`] trait shared by PUF simulators, locked
//!   circuits and learned hypotheses,
//! - dense truth tables with a fast Walsh–Hadamard transform
//!   ([`TruthTable`], [`wht`]),
//! - Fourier expansions, spectral weight profiles and sampled coefficient
//!   estimation ([`fourier`]),
//! - linear threshold functions and their Chow parameters ([`ltf`]),
//! - algebraic normal forms, i.e. sparse multivariate polynomials over
//!   GF(2) ([`anf`]),
//! - noise sensitivity and bias estimators ([`noise`]),
//! - property testing, in particular the halfspace tester of
//!   Matulef–O'Donnell–Rubinfeld–Servedio used for Table III ([`testing`]).
//!
//! # Encoding
//!
//! Following the paper (Section III-A), Boolean values are moved between
//! the `{0,1}` world of hardware and the `{-1,+1}` world of Fourier
//! analysis with the encoding `χ(0) = +1`, `χ(1) = -1`. The helper
//! [`to_pm`]/[`to_bool`] functions implement exactly this map.
//!
//! # Example
//!
//! ```
//! use mlam_boolean::{BitVec, BooleanFunction, TruthTable};
//!
//! // The 3-bit majority function as a truth table.
//! let maj = TruthTable::from_fn(3, |x| {
//!     (x.get(0) as u8 + x.get(1) as u8 + x.get(2) as u8) >= 2
//! });
//! let spectrum = maj.fourier();
//! // Majority has no constant bias ...
//! assert!(spectrum.coefficient(0b000).abs() < 1e-12);
//! // ... and equal weight on each singleton.
//! assert!((spectrum.coefficient(0b001) - spectrum.coefficient(0b010)).abs() < 1e-12);
//! ```

pub mod anf;
pub mod bits;
pub mod dense;
pub mod fourier;
pub mod function;
pub mod ltf;
pub mod noise;
pub mod subsets;
pub mod testing;
pub mod wht;

pub use anf::Anf;
pub use bits::BitVec;
pub use dense::TruthTable;
pub use fourier::{FourierExpansion, SparseFourier};
pub use function::{BooleanFunction, FnFunction};
pub use ltf::{ChowParameters, LinearThreshold};
pub use subsets::SubsetsUpTo;

/// Converts a Boolean value into the ±1 encoding used throughout the
/// paper: `false` (logic 0) becomes `+1.0` and `true` (logic 1) becomes
/// `-1.0`.
///
/// ```
/// assert_eq!(mlam_boolean::to_pm(false), 1.0);
/// assert_eq!(mlam_boolean::to_pm(true), -1.0);
/// ```
#[inline]
pub fn to_pm(b: bool) -> f64 {
    if b {
        -1.0
    } else {
        1.0
    }
}

/// Inverse of [`to_pm`]: maps a ±1 real back to a Boolean.
///
/// Values `<= 0.0` map to `true` (logic 1, i.e. −1 side), positive values
/// to `false`. The convention matters only on the measure-zero boundary.
///
/// ```
/// assert!(!mlam_boolean::to_bool(1.0));
/// assert!(mlam_boolean::to_bool(-1.0));
/// ```
#[inline]
pub fn to_bool(v: f64) -> bool {
    v <= 0.0
}

/// Converts a Boolean into the integer ±1 encoding (`false → +1`,
/// `true → -1`).
#[inline]
pub fn to_pm_i(b: bool) -> i64 {
    if b {
        -1
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_round_trip() {
        for b in [false, true] {
            assert_eq!(to_bool(to_pm(b)), b);
            assert_eq!(to_pm(b) as i64, to_pm_i(b));
        }
    }
}
