//! Fourier expansions of Boolean functions.
//!
//! Every `f : {-1,+1}^n -> {-1,+1}` has a unique expansion
//! `f(x) = Σ_S f̂(S)·χ_S(x)` with `χ_S(x) = Π_{i∈S} x_i` (paper,
//! Section III-A). This module provides
//!
//! - [`FourierExpansion`]: the dense table of all `2^n` coefficients
//!   (exact, small `n`),
//! - [`SparseFourier`]: a sparse list of (mask, coefficient) pairs,
//!   usable as a hypothesis (it implements
//!   [`BooleanFunction`] by taking the sign of
//!   the truncated expansion — exactly what the LMN algorithm outputs),
//! - [`estimate_coefficient`] / [`estimate_coefficients`]: Monte-Carlo
//!   estimation of selected coefficients from uniform random samples,
//!   the core primitive of the LMN algorithm.

use crate::bits::BitVec;
use crate::function::BooleanFunction;
use rand::Rng;

/// Dense table of all `2^n` Fourier coefficients of a function.
///
/// Index `S` (a `u64` subset mask) holds `f̂(S)`.
#[derive(Clone, Debug, PartialEq)]
pub struct FourierExpansion {
    n: usize,
    coeffs: Vec<f64>,
}

impl FourierExpansion {
    /// Wraps a coefficient table (index = subset mask, length `2^n`).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != 2^n`.
    pub fn from_coefficients(n: usize, coeffs: Vec<f64>) -> Self {
        assert_eq!(coeffs.len(), 1usize << n, "coefficient table length");
        FourierExpansion { n, coeffs }
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.n
    }

    /// Coefficient `f̂(S)` for the subset mask `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= 2^n`.
    pub fn coefficient(&self, s: u64) -> f64 {
        self.coeffs[s as usize]
    }

    /// All coefficients, indexed by subset mask.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Total squared Fourier weight `Σ_S f̂(S)²`.
    ///
    /// For a ±1-valued function this equals 1 (Parseval).
    pub fn total_weight(&self) -> f64 {
        self.coeffs.iter().map(|c| c * c).sum()
    }

    /// Squared Fourier weight at each degree: entry `k` is
    /// `Σ_{|S|=k} f̂(S)²`.
    pub fn weight_by_degree(&self) -> Vec<f64> {
        let mut w = vec![0.0; self.n + 1];
        for (s, c) in self.coeffs.iter().enumerate() {
            w[(s as u64).count_ones() as usize] += c * c;
        }
        w
    }

    /// Squared weight on degrees `> d`: `Σ_{|S|>d} f̂(S)²`.
    ///
    /// The LMN theorem bounds the approximation error of the degree-`d`
    /// truncation by exactly this quantity.
    pub fn weight_above_degree(&self, d: usize) -> f64 {
        self.weight_by_degree().iter().skip(d + 1).sum()
    }

    /// Truncates to degrees `<= d`, returning a sparse expansion.
    pub fn truncate(&self, d: usize) -> SparseFourier {
        let terms = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(s, _)| (*s as u64).count_ones() as usize <= d)
            .map(|(s, &c)| (s as u64, c))
            .collect();
        SparseFourier::new(self.n, terms)
    }

    /// Keeps only coefficients with `|f̂(S)| >= threshold`.
    pub fn significant(&self, threshold: f64) -> SparseFourier {
        let terms = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| c.abs() >= threshold)
            .map(|(s, &c)| (s as u64, c))
            .collect();
        SparseFourier::new(self.n, terms)
    }

    /// Evaluates the real-valued expansion at `x`.
    pub fn eval_real(&self, x: &BitVec) -> f64 {
        assert!(self.n <= 63);
        let xm = x.to_u64();
        self.coeffs
            .iter()
            .enumerate()
            .map(|(s, c)| {
                let sign = if (xm & s as u64).count_ones() % 2 == 1 {
                    -1.0
                } else {
                    1.0
                };
                c * sign
            })
            .sum()
    }
}

/// A sparse Fourier expansion: a list of `(mask, coefficient)` terms.
///
/// Used as the hypothesis representation of the LMN low-degree algorithm:
/// the Boolean function it denotes is `sign(Σ f̂(S) χ_S(x))`. This is an
/// **improper** representation — it need not be in the target concept
/// class — which is exactly the freedom Section V-B of the paper argues
/// an adversary should be granted.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SparseFourier {
    n: usize,
    terms: Vec<(u64, f64)>,
}

impl SparseFourier {
    /// Creates a sparse expansion over `n` variables.
    ///
    /// # Panics
    ///
    /// Panics if `n > 63` or any mask has bits outside `[0, n)`.
    pub fn new(n: usize, terms: Vec<(u64, f64)>) -> Self {
        assert!(n <= 63, "sparse Fourier masks limited to n <= 63");
        for (mask, _) in &terms {
            assert!(
                n == 63 || *mask < (1u64 << n),
                "mask {mask:#b} out of range for n={n}"
            );
        }
        SparseFourier { n, terms }
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The `(mask, coefficient)` terms.
    pub fn terms(&self) -> &[(u64, f64)] {
        &self.terms
    }

    /// Number of stored terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the real-valued expansion `Σ f̂(S)·χ_S(x)`.
    pub fn eval_real(&self, x: &BitVec) -> f64 {
        let xm = x.to_u64();
        self.terms
            .iter()
            .map(|&(s, c)| {
                if (xm & s).count_ones() % 2 == 1 {
                    -c
                } else {
                    c
                }
            })
            .sum()
    }

    /// Squared weight `Σ f̂(S)²` over the stored terms.
    pub fn weight(&self) -> f64 {
        self.terms.iter().map(|(_, c)| c * c).sum()
    }

    /// Maximum degree (popcount) over the stored terms, 0 if empty.
    pub fn degree(&self) -> usize {
        self.terms
            .iter()
            .map(|(s, _)| s.count_ones() as usize)
            .max()
            .unwrap_or(0)
    }
}

impl BooleanFunction for SparseFourier {
    fn num_inputs(&self) -> usize {
        self.n
    }

    /// The sign hypothesis: logic 1 (`true`) iff the expansion is
    /// negative, matching the `χ(1) = -1` encoding.
    fn eval(&self, x: &BitVec) -> bool {
        crate::to_bool(self.eval_real(x))
    }
}

/// Estimates a single Fourier coefficient
/// `f̂(S) = E_x[f(x)·χ_S(x)]` from `samples` uniform random inputs.
///
/// The standard Chernoff argument shows `O(log(1/δ)/ε²)` samples give an
/// `ε`-accurate estimate with probability `1-δ`; callers pick `samples`
/// from the bound they need.
///
/// The inputs are drawn sequentially from `rng` (the stream is the same
/// at any thread count), then the query/accumulate sweep fans out over
/// `MLAM_THREADS` workers in fixed chunks of [`mlam_par::DEFAULT_CHUNK`]
/// whose partial sums are folded in chunk order — the estimate is
/// bit-identical at any thread count.
///
/// # Panics
///
/// Panics if `samples == 0` or `f.num_inputs() > 63`.
pub fn estimate_coefficient<F, R>(f: &F, mask: u64, samples: usize, rng: &mut R) -> f64
where
    F: BooleanFunction + Sync + ?Sized,
    R: Rng + ?Sized,
{
    assert!(samples > 0);
    let n = f.num_inputs();
    assert!(n <= 63);
    let xs: Vec<BitVec> = (0..samples).map(|_| BitVec::random(n, rng)).collect();
    let partials = mlam_par::par_chunk_map(&xs, mlam_par::DEFAULT_CHUNK, |_, chunk| {
        let mut sum = 0.0;
        for x in chunk {
            let chi = if x.parity_masked(mask) { -1.0 } else { 1.0 };
            sum += f.eval_pm(x) * chi;
        }
        sum
    });
    partials.into_iter().fold(0.0, |a, b| a + b) / samples as f64
}

/// Estimates many Fourier coefficients from one common sample set.
///
/// Draws `samples` uniform inputs once and reuses them for every mask —
/// this is precisely how the LMN algorithm spends its example budget.
/// Returns coefficients in the same order as `masks`.
///
/// Parallelism follows the same contract as [`estimate_coefficient`]:
/// sequential sample draw, fixed-chunk fan-out, in-order fold.
pub fn estimate_coefficients<F, R>(f: &F, masks: &[u64], samples: usize, rng: &mut R) -> Vec<f64>
where
    F: BooleanFunction + Sync + ?Sized,
    R: Rng + ?Sized,
{
    assert!(samples > 0);
    let n = f.num_inputs();
    assert!(n <= 63);
    let xs: Vec<BitVec> = (0..samples).map(|_| BitVec::random(n, rng)).collect();
    let partials = mlam_par::par_chunk_map(&xs, mlam_par::DEFAULT_CHUNK, |_, chunk| {
        let mut sums = vec![0.0; masks.len()];
        for x in chunk {
            let fx = f.eval_pm(x);
            let xm = x.to_u64();
            for (k, &mask) in masks.iter().enumerate() {
                let chi = if (xm & mask).count_ones() % 2 == 1 {
                    -1.0
                } else {
                    1.0
                };
                sums[k] += fx * chi;
            }
        }
        sums
    });
    let mut sums = vec![0.0; masks.len()];
    for part in partials {
        for (s, p) in sums.iter_mut().zip(part) {
            *s += p;
        }
    }
    for s in &mut sums {
        *s /= samples as f64;
    }
    sums
}

/// Estimates coefficients from an explicit labeled sample
/// (challenge, response) instead of querying the function. Labels are in
/// the Boolean encoding (`true` = logic 1 = −1).
///
/// The sweep over the sample runs in fixed chunks of
/// [`mlam_par::DEFAULT_CHUNK`] across `MLAM_THREADS` workers; per-chunk
/// partial sums are folded in chunk order, so the estimates are
/// bit-identical at any thread count.
pub fn estimate_coefficients_from_data(
    n: usize,
    data: &[(BitVec, bool)],
    masks: &[u64],
) -> Vec<f64> {
    assert!(n <= 63);
    assert!(!data.is_empty(), "empty sample");
    let partials = mlam_par::par_chunk_map(data, mlam_par::DEFAULT_CHUNK, |_, chunk| {
        let mut sums = vec![0.0; masks.len()];
        for (x, y) in chunk {
            let fx = crate::to_pm(*y);
            let xm = x.to_u64();
            for (k, &mask) in masks.iter().enumerate() {
                let chi = if (xm & mask).count_ones() % 2 == 1 {
                    -1.0
                } else {
                    1.0
                };
                sums[k] += fx * chi;
            }
        }
        sums
    });
    let mut sums = vec![0.0; masks.len()];
    for part in partials {
        for (s, p) in sums.iter_mut().zip(part) {
            *s += p;
        }
    }
    for s in &mut sums {
        *s /= data.len() as f64;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::TruthTable;
    use crate::function::FnFunction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parseval_for_random_function() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = TruthTable::random(8, &mut rng);
        let fe = t.fourier();
        assert!((fe.total_weight() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weight_by_degree_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = TruthTable::random(7, &mut rng);
        let w = t.fourier().weight_by_degree();
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(w.len(), 8);
    }

    #[test]
    fn truncation_error_equals_weight_above_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = TruthTable::random(6, &mut rng);
        let fe = t.fourier();
        let d = 3;
        let trunc = fe.truncate(d);
        // E[(f - trunc)^2] over all x must equal weight above degree d.
        let mut err = 0.0;
        for v in 0..64u64 {
            let x = BitVec::from_u64(v, 6);
            let fx = t.eval_pm(&x);
            let tx = trunc.eval_real(&x);
            err += (fx - tx).powi(2);
        }
        err /= 64.0;
        assert!((err - fe.weight_above_degree(d)).abs() < 1e-9);
    }

    #[test]
    fn sign_of_truncation_recovers_low_degree_function() {
        // Majority of 5 is well-approximated by its degree-1 truncation.
        let maj = TruthTable::from_fn(5, |x| x.count_ones() >= 3);
        let h = maj.fourier().truncate(1);
        let mut agree = 0;
        for v in 0..32u64 {
            let x = BitVec::from_u64(v, 5);
            if h.eval(&x) == maj.eval(&x) {
                agree += 1;
            }
        }
        assert_eq!(agree, 32, "sign of degree-1 truncation = majority");
    }

    #[test]
    fn estimate_matches_exact_coefficient() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = TruthTable::random(8, &mut rng);
        let exact = t.fourier();
        let masks = [0b1u64, 0b11, 0b10000001];
        let est = estimate_coefficients(&t, &masks, 60_000, &mut rng);
        for (m, e) in masks.iter().zip(est) {
            assert!(
                (exact.coefficient(*m) - e).abs() < 0.02,
                "mask {m:b}: exact {} est {e}",
                exact.coefficient(*m)
            );
        }
    }

    #[test]
    fn estimate_single_coefficient_of_parity() {
        let mut rng = StdRng::seed_from_u64(5);
        let parity = FnFunction::new(10, |x: &BitVec| x.count_ones() % 2 == 1);
        // f = χ_{[10]} so the full-mask coefficient is 1, others 0.
        let full = (1u64 << 10) - 1;
        let c = estimate_coefficient(&parity, full, 2000, &mut rng);
        assert!((c - 1.0).abs() < 1e-12);
        let c0 = estimate_coefficient(&parity, 0b1, 20_000, &mut rng);
        assert!(c0.abs() < 0.03);
    }

    #[test]
    fn estimate_from_data_matches_direct() {
        let mut rng = StdRng::seed_from_u64(6);
        let parity = FnFunction::new(8, |x: &BitVec| x.count_ones() % 2 == 1);
        let data: Vec<(BitVec, bool)> = (0..5000)
            .map(|_| {
                let x = BitVec::random(8, &mut rng);
                let y = parity.eval(&x);
                (x, y)
            })
            .collect();
        let masks = [(1u64 << 8) - 1, 0b1];
        let est = estimate_coefficients_from_data(8, &data, &masks);
        assert!((est[0] - 1.0).abs() < 1e-12);
        assert!(est[1].abs() < 0.05);
    }

    #[test]
    fn sparse_degree_and_weight() {
        let s = SparseFourier::new(5, vec![(0b00011, 0.5), (0b10000, -0.5)]);
        assert_eq!(s.degree(), 2);
        assert!((s.weight() - 0.5).abs() < 1e-12);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn dense_eval_real_matches_function() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = TruthTable::random(5, &mut rng);
        let fe = t.fourier();
        for v in 0..32u64 {
            let x = BitVec::from_u64(v, 5);
            assert!((fe.eval_real(&x) - t.eval_pm(&x)).abs() < 1e-9);
        }
    }

    #[test]
    fn significant_filters_small_coefficients() {
        let maj = TruthTable::from_fn(3, |x| x.count_ones() >= 2);
        let fe = maj.fourier();
        let sig = fe.significant(0.4);
        // Majority of 3: three singleton coefficients of magnitude 1/2
        // plus the full-mask coefficient of magnitude 1/2.
        assert_eq!(sig.len(), 4);
        assert!(sig
            .terms()
            .iter()
            .all(|(_, c)| (c.abs() - 0.5).abs() < 1e-12));
    }
}
