//! Algebraic normal form: sparse multivariate polynomials over GF(2).
//!
//! Every Boolean function has a unique representation as an XOR of
//! monomials (AND terms), `f = T_1 ⊕ … ⊕ T_s` — the class the paper calls
//! *r-XT / sparse multivariate polynomials of degree r over F₂* in the
//! proof of Corollary 2. [`Anf`] stores the monomials as `u64` masks and
//! supports the Möbius transform in both directions.

use crate::bits::BitVec;
use crate::dense::TruthTable;
use crate::function::BooleanFunction;
use std::collections::BTreeSet;
use std::fmt;

/// A Boolean function as an XOR of AND-monomials over GF(2).
///
/// Each monomial is a `u64` subset mask; the empty mask is the constant
/// `1`. The representation is canonical: the monomial set is deduplicated
/// (a monomial appearing twice cancels).
///
/// # Example
///
/// ```
/// use mlam_boolean::{Anf, BitVec, BooleanFunction};
///
/// // f(x) = x0 ⊕ x1·x2
/// let f = Anf::from_monomials(3, [0b001, 0b110]);
/// assert!(f.eval(&BitVec::from_u64(0b001, 3)));  // x0=1 -> 1
/// assert!(!f.eval(&BitVec::from_u64(0b111, 3))); // 1 ⊕ 1 = 0
/// assert_eq!(f.degree(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Anf {
    n: usize,
    monomials: BTreeSet<u64>,
}

impl Anf {
    /// The constant-zero function on `n` inputs.
    pub fn zero(n: usize) -> Self {
        assert!(n <= 63);
        Anf {
            n,
            monomials: BTreeSet::new(),
        }
    }

    /// The constant-one function on `n` inputs.
    pub fn one(n: usize) -> Self {
        Anf::from_monomials(n, [0u64])
    }

    /// Builds an ANF from an iterator of monomial masks. Monomials
    /// appearing an even number of times cancel out.
    ///
    /// # Panics
    ///
    /// Panics if `n > 63` or a mask has bits outside `[0, n)`.
    pub fn from_monomials<I: IntoIterator<Item = u64>>(n: usize, monomials: I) -> Self {
        assert!(n <= 63);
        let mut set = BTreeSet::new();
        for m in monomials {
            assert!(
                n == 63 || m < (1u64 << n),
                "monomial {m:#b} out of range for n={n}"
            );
            if !set.insert(m) {
                set.remove(&m);
            }
        }
        Anf { n, monomials: set }
    }

    /// Computes the ANF of an arbitrary function via the Möbius
    /// transform over its truth table (`O(n·2^n)`).
    pub fn from_truth_table(t: &TruthTable) -> Self {
        let n = t.num_inputs();
        let mut buf: Vec<bool> = t.outputs().to_vec();
        // In-place Möbius (zeta over GF(2)).
        let mut h = 1usize;
        while h < buf.len() {
            for chunk in buf.chunks_exact_mut(2 * h) {
                let (lo, hi) = chunk.split_at_mut(h);
                for (a, b) in lo.iter().zip(hi.iter_mut()) {
                    *b ^= *a;
                }
            }
            h *= 2;
        }
        let monomials = buf
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(m, _)| m as u64);
        Anf::from_monomials(n, monomials)
    }

    /// Materializes the ANF as a truth table (small `n`).
    pub fn to_truth_table(&self) -> TruthTable {
        TruthTable::from_fn(self.n, |x| self.eval(x))
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// The monomial masks, in ascending mask order.
    pub fn monomials(&self) -> impl Iterator<Item = u64> + '_ {
        self.monomials.iter().copied()
    }

    /// Number of monomials (the sparsity `s` of the paper's `r`-XT).
    pub fn num_monomials(&self) -> usize {
        self.monomials.len()
    }

    /// Algebraic degree: the largest monomial size (0 for constants).
    pub fn degree(&self) -> usize {
        self.monomials
            .iter()
            .map(|m| m.count_ones() as usize)
            .max()
            .unwrap_or(0)
    }

    /// XORs another ANF into this one.
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ.
    pub fn xor_assign(&mut self, other: &Anf) {
        assert_eq!(self.n, other.n, "xor of ANFs over different arities");
        for &m in &other.monomials {
            if !self.monomials.insert(m) {
                self.monomials.remove(&m);
            }
        }
    }

    /// Toggles a single monomial.
    pub fn toggle_monomial(&mut self, mask: u64) {
        assert!(self.n == 63 || mask < (1u64 << self.n));
        if !self.monomials.insert(mask) {
            self.monomials.remove(&mask);
        }
    }

    /// Whether this is the constant-zero function.
    pub fn is_zero(&self) -> bool {
        self.monomials.is_empty()
    }
}

impl BooleanFunction for Anf {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn eval(&self, x: &BitVec) -> bool {
        assert_eq!(x.len(), self.n, "input length mismatch");
        let xm = x.to_u64();
        let mut acc = false;
        for &m in &self.monomials {
            // Monomial value = AND of selected bits = 1 iff all bits of m set in x.
            if xm & m == m {
                acc = !acc;
            }
        }
        acc
    }
}

impl fmt::Debug for Anf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.monomials.is_empty() {
            return write!(f, "0");
        }
        let terms: Vec<String> = self
            .monomials
            .iter()
            .map(|&m| {
                if m == 0 {
                    "1".to_string()
                } else {
                    (0..self.n)
                        .filter(|i| m >> i & 1 == 1)
                        .map(|i| format!("x{i}"))
                        .collect::<Vec<_>>()
                        .join("·")
                }
            })
            .collect();
        write!(f, "{}", terms.join(" ⊕ "))
    }
}

impl fmt::Display for Anf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eval_simple_polynomial() {
        // f = 1 ⊕ x0 ⊕ x0·x1
        let f = Anf::from_monomials(2, [0b00, 0b01, 0b11]);
        assert!(f.eval(&BitVec::from_u64(0b00, 2))); // 1
        assert!(!f.eval(&BitVec::from_u64(0b01, 2))); // 1^1 = 0
        assert!(f.eval(&BitVec::from_u64(0b10, 2))); // 1
        assert!(f.eval(&BitVec::from_u64(0b11, 2))); // 1^1^1 = 1
    }

    #[test]
    fn duplicate_monomials_cancel() {
        let f = Anf::from_monomials(3, [0b001, 0b001]);
        assert!(f.is_zero());
        let g = Anf::from_monomials(3, [0b001, 0b001, 0b001]);
        assert_eq!(g.num_monomials(), 1);
    }

    #[test]
    fn mobius_round_trip_random() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..10 {
            let t = TruthTable::random(7, &mut rng);
            let anf = Anf::from_truth_table(&t);
            let back = anf.to_truth_table();
            assert_eq!(t, back);
        }
    }

    #[test]
    fn anf_of_and_is_single_monomial() {
        let t = TruthTable::from_fn(3, |x| x.get(0) && x.get(1) && x.get(2));
        let anf = Anf::from_truth_table(&t);
        assert_eq!(anf.num_monomials(), 1);
        assert_eq!(anf.monomials().next(), Some(0b111));
        assert_eq!(anf.degree(), 3);
    }

    #[test]
    fn anf_of_or_expands() {
        // x0 OR x1 = x0 ⊕ x1 ⊕ x0x1
        let t = TruthTable::from_fn(2, |x| x.get(0) || x.get(1));
        let anf = Anf::from_truth_table(&t);
        let monos: Vec<u64> = anf.monomials().collect();
        assert_eq!(monos, vec![0b01, 0b10, 0b11]);
    }

    #[test]
    fn xor_assign_is_gf2_addition() {
        let a = Anf::from_monomials(4, [0b0001, 0b0110]);
        let b = Anf::from_monomials(4, [0b0110, 0b1000]);
        let mut c = a.clone();
        c.xor_assign(&b);
        let monos: Vec<u64> = c.monomials().collect();
        assert_eq!(monos, vec![0b0001, 0b1000]);
        // (a ⊕ b) ⊕ b = a
        c.xor_assign(&b);
        assert_eq!(c, a);
    }

    #[test]
    fn degree_of_constants() {
        assert_eq!(Anf::zero(5).degree(), 0);
        assert_eq!(Anf::one(5).degree(), 0);
        assert!(Anf::zero(5).is_zero());
        assert!(!Anf::one(5).is_zero());
    }

    #[test]
    fn parity_anf_has_n_singletons() {
        let t = TruthTable::from_fn(6, |x| x.count_ones() % 2 == 1);
        let anf = Anf::from_truth_table(&t);
        assert_eq!(anf.num_monomials(), 6);
        assert_eq!(anf.degree(), 1);
    }

    #[test]
    fn display_renders_terms() {
        let f = Anf::from_monomials(3, [0b000, 0b101]);
        assert_eq!(f.to_string(), "1 ⊕ x0·x2");
        assert_eq!(Anf::zero(2).to_string(), "0");
    }
}
