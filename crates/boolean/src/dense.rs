//! Dense truth tables for exhaustive analysis of small functions.

use crate::bits::BitVec;
use crate::fourier::FourierExpansion;
use crate::function::BooleanFunction;
use crate::wht;
use rand::Rng;
use std::fmt;

/// Maximum arity for dense truth tables (`2^24` entries ≈ 16 MiB of bits).
pub const MAX_DENSE_INPUTS: usize = 24;

/// A Boolean function stored as an explicit table of `2^n` output bits.
///
/// Entry `x` (interpreted as a bit mask, bit `i` = input `i`) holds
/// `f(x)`. Dense tables enable *exact* Fourier expansions, Chow
/// parameters and noise sensitivities for small `n`, which the test suite
/// uses as ground truth against the sampled estimators.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, BooleanFunction, TruthTable};
///
/// let xor = TruthTable::from_fn(2, |x| x.get(0) ^ x.get(1));
/// assert!(xor.eval(&BitVec::from_u64(0b01, 2)));
/// assert!(!xor.eval(&BitVec::from_u64(0b11, 2)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    n: usize,
    /// Output bit for every input mask; length `2^n`.
    table: Vec<bool>,
}

impl TruthTable {
    /// Builds a table by evaluating `f` on all `2^n` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n > 24` (see [`MAX_DENSE_INPUTS`]).
    pub fn from_fn<F: Fn(&BitVec) -> bool>(n: usize, f: F) -> Self {
        assert!(
            n <= MAX_DENSE_INPUTS,
            "dense truth table limited to n <= {MAX_DENSE_INPUTS}, got {n}"
        );
        let table = (0..1u64 << n).map(|v| f(&BitVec::from_u64(v, n))).collect();
        TruthTable { n, table }
    }

    /// Builds a table from a raw output vector of length `2^n`.
    ///
    /// # Panics
    ///
    /// Panics if `table.len()` is not a power of two or exceeds `2^24`.
    pub fn from_outputs(table: Vec<bool>) -> Self {
        assert!(
            table.len().is_power_of_two(),
            "truth table length must be a power of two"
        );
        let n = table.len().trailing_zeros() as usize;
        assert!(n <= MAX_DENSE_INPUTS);
        TruthTable { n, table }
    }

    /// Samples a uniformly random function on `n` bits.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n <= MAX_DENSE_INPUTS);
        let table = (0..1u64 << n).map(|_| rng.gen()).collect();
        TruthTable { n, table }
    }

    /// Output for the input encoded as a `u64` mask.
    #[inline]
    pub fn eval_u64(&self, x: u64) -> bool {
        self.table[x as usize]
    }

    /// The raw output table (index = input mask).
    pub fn outputs(&self) -> &[bool] {
        &self.table
    }

    /// Exact Fourier expansion via the fast Walsh–Hadamard transform.
    ///
    /// Runs in `O(n·2^n)`.
    pub fn fourier(&self) -> FourierExpansion {
        let mut t: Vec<f64> = self.table.iter().map(|&b| crate::to_pm(b)).collect();
        wht::walsh_hadamard(&mut t);
        let scale = 1.0 / self.table.len() as f64;
        for v in &mut t {
            *v *= scale;
        }
        FourierExpansion::from_coefficients(self.n, t)
    }

    /// Exact fraction of inputs on which `self` and `other` disagree.
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn distance(&self, other: &TruthTable) -> f64 {
        assert_eq!(self.n, other.n, "distance requires equal arity");
        let diff = self
            .table
            .iter()
            .zip(&other.table)
            .filter(|(a, b)| a != b)
            .count();
        diff as f64 / self.table.len() as f64
    }

    /// Exact bias `E[f]` in the ±1 encoding.
    pub fn bias(&self) -> f64 {
        let sum: f64 = self.table.iter().map(|&b| crate::to_pm(b)).sum();
        sum / self.table.len() as f64
    }

    /// Exact minimum distance to *any* linear threshold function,
    /// computed by brute force over all `2^n` inputs against the best
    /// response of an LTF search. Only feasible for tiny `n`; used as
    /// ground truth in tests of the halfspace tester.
    ///
    /// The search enumerates every LTF realizable with integer weights in
    /// `[-w_max, w_max]` and threshold in the same range, so it is a lower
    /// bound certification for small `n` and moderate `w_max`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 4` (the enumeration is exponential in `n`).
    pub fn distance_to_ltf_bruteforce(&self, w_max: i32) -> f64 {
        assert!(self.n <= 4, "brute-force LTF distance limited to n <= 4");
        let n = self.n;
        let size = 1usize << n;
        let mut best = 1.0f64;
        let range: Vec<i32> = (-w_max..=w_max).collect();
        // Enumerate weight vectors via mixed-radix counting.
        let radix = range.len();
        let mut idx = vec![0usize; n + 1]; // last slot = threshold
        loop {
            let weights: Vec<i32> = idx[..n].iter().map(|&i| range[i]).collect();
            let theta = range[idx[n]];
            let mut diff = 0usize;
            for x in 0..size {
                let mut s = 0i32;
                for (i, w) in weights.iter().enumerate() {
                    // ±1 encoding: bit 0 -> +1, bit 1 -> -1.
                    let pm = if (x >> i) & 1 == 1 { -1 } else { 1 };
                    s += w * pm;
                }
                let ltf_out = (s - theta) < 0; // sign(s-θ): negative -> logic 1
                if ltf_out != self.table[x] {
                    diff += 1;
                }
            }
            best = best.min(diff as f64 / size as f64);
            // Increment mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos > n {
                    return best;
                }
                idx[pos] += 1;
                if idx[pos] < radix {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
        }
    }
}

impl BooleanFunction for TruthTable {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn eval(&self, x: &BitVec) -> bool {
        assert_eq!(x.len(), self.n, "input length mismatch");
        self.table[x.to_u64() as usize]
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable(n={}, ", self.n)?;
        if self.table.len() <= 32 {
            for &b in &self.table {
                write!(f, "{}", u8::from(b))?;
            }
        } else {
            write!(f, "2^{} entries", self.n)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_fn_indexing_matches_eval() {
        let t = TruthTable::from_fn(3, |x| x.get(0) && !x.get(2));
        assert!(t.eval_u64(0b001));
        assert!(t.eval_u64(0b011));
        assert!(!t.eval_u64(0b101));
        assert!(!t.eval_u64(0b000));
        assert_eq!(t.num_inputs(), 3);
    }

    #[test]
    fn fourier_of_dictator_is_single_coefficient() {
        // f(x) = x0 -> in ±1 encoding f = χ_{0}.
        let t = TruthTable::from_fn(3, |x| x.get(0));
        let fe = t.fourier();
        assert!((fe.coefficient(0b001) - 1.0).abs() < 1e-12);
        for s in [0b000u64, 0b010, 0b011, 0b100, 0b101, 0b110, 0b111] {
            assert!(fe.coefficient(s).abs() < 1e-12, "S={s:b}");
        }
    }

    #[test]
    fn bias_matches_fourier_empty_coefficient() {
        let mut rng = StdRng::seed_from_u64(17);
        let t = TruthTable::random(6, &mut rng);
        let fe = t.fourier();
        assert!((t.bias() - fe.coefficient(0)).abs() < 1e-12);
    }

    #[test]
    fn distance_is_zero_iff_equal() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = TruthTable::random(5, &mut rng);
        assert_eq!(a.distance(&a), 0.0);
        let mut flipped = a.outputs().to_vec();
        flipped[7] = !flipped[7];
        let b = TruthTable::from_outputs(flipped);
        assert!((a.distance(&b) - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn ltf_bruteforce_on_actual_ltf_is_zero() {
        // Majority of 3 is an LTF.
        let maj = TruthTable::from_fn(3, |x| {
            (x.get(0) as u8 + x.get(1) as u8 + x.get(2) as u8) >= 2
        });
        assert_eq!(maj.distance_to_ltf_bruteforce(2), 0.0);
    }

    #[test]
    fn ltf_bruteforce_on_parity_is_quarter() {
        // 2-bit XOR is the canonical non-LTF; best LTF gets 3/4 right.
        let xor = TruthTable::from_fn(2, |x| x.get(0) ^ x.get(1));
        assert!((xor.distance_to_ltf_bruteforce(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn random_table_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = TruthTable::random(12, &mut rng);
        assert!(t.bias().abs() < 0.1);
    }
}
