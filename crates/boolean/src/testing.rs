//! Property testing: how close is an unknown function to a halfspace?
//!
//! Section V-A.2 of the paper runs the halfspace tester of
//! Matulef–O'Donnell–Rubinfeld–Servedio ("Testing Halfspaces", SICOMP
//! 2010) on CRPs collected from BR PUFs and reports, per Table III, the
//! minimum distance of each PUF from *any* halfspace. This module
//! implements
//!
//! - the **Chow statistic** at the core of the MORS tester: the squared
//!   degree-≤1 Fourier weight `W₁ = f̂(∅)² + Σᵢ f̂({i})²`, which is
//!   `≥ 2/π − O(ε)` for every function ε-close to a halfspace but small
//!   for functions far from all of them;
//! - a **distance estimator**: the disagreement of `f` with the best
//!   halfspace found by Chow reconstruction plus a pocket-perceptron
//!   polish — an upper bound on the true distance, which is what a
//!   practical tester (the paper's MATLAB code) reports;
//! - [`HalfspaceTester`], bundling both into an accept/reject verdict at
//!   chosen `(ε, δ)`.

use crate::bits::BitVec;
use crate::ltf::{ChowParameters, LinearThreshold};
use rand::seq::SliceRandom;
use rand::Rng;

/// Universal level-1 weight of halfspaces: any unbiased LTF has
/// `Σᵢ f̂({i})² ≥ 2/π` asymptotically (majority is the extremal case);
/// ε-closeness degrades this by `O(ε)`.
pub const HALFSPACE_LEVEL_ONE_FLOOR: f64 = 2.0 / std::f64::consts::PI;

/// Outcome of a halfspace test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The function is consistent with being (close to) a halfspace.
    Halfspace,
    /// The function is ε-far from every halfspace.
    FarFromHalfspace,
}

/// Report of one run of the [`HalfspaceTester`].
#[derive(Clone, Debug)]
pub struct TesterReport {
    /// Estimated squared degree-≤1 Fourier weight `W₁`.
    pub level_one_weight: f64,
    /// Estimated minimum distance to any halfspace, in `[0, 0.5]`:
    /// the disagreement of the best halfspace the tester could construct.
    pub distance_estimate: f64,
    /// Accept/reject verdict at the tester's `eps`.
    pub verdict: Verdict,
    /// Number of labeled examples consumed.
    pub examples_used: usize,
}

/// Halfspace property tester in the style of Matulef et al. \[28\].
///
/// Given `poly(1/ε)` uniformly distributed labeled examples it
/// distinguishes halfspaces from functions ε-far from every halfspace,
/// with confidence `δ`.
///
/// # Example
///
/// ```
/// use mlam_boolean::testing::{HalfspaceTester, Verdict};
/// use mlam_boolean::{BitVec, BooleanFunction, LinearThreshold};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let ltf = LinearThreshold::random(16, &mut rng);
/// let data: Vec<(BitVec, bool)> = (0..4000)
///     .map(|_| {
///         let x = BitVec::random(16, &mut rng);
///         let y = ltf.eval(&x);
///         (x, y)
///     })
///     .collect();
/// let report = HalfspaceTester::new(0.1, 0.99).run(16, &data, &mut rng);
/// assert_eq!(report.verdict, Verdict::Halfspace);
/// assert!(report.distance_estimate < 0.05);
/// ```
#[derive(Clone, Debug)]
pub struct HalfspaceTester {
    eps: f64,
    delta: f64,
    /// Pocket-perceptron polish epochs.
    polish_epochs: usize,
    /// Random fit/hold-out splits averaged per run.
    splits: usize,
}

impl HalfspaceTester {
    /// Creates a tester distinguishing halfspaces from functions
    /// `eps`-far from every halfspace with confidence `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `eps ∉ (0, 0.5]` or `delta ∉ (0, 1)`.
    pub fn new(eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && eps <= 0.5, "eps must be in (0, 0.5]");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        HalfspaceTester {
            eps,
            delta,
            polish_epochs: 30,
            splits: 5,
        }
    }

    /// Overrides the number of pocket-perceptron polish epochs
    /// (default 30).
    pub fn with_polish_epochs(mut self, epochs: usize) -> Self {
        self.polish_epochs = epochs;
        self
    }

    /// Overrides the number of averaged fit/hold-out splits
    /// (default 5). More splits reduce the variance of the distance
    /// estimate on small samples.
    ///
    /// # Panics
    ///
    /// Panics if `splits == 0`.
    pub fn with_splits(mut self, splits: usize) -> Self {
        assert!(splits > 0, "need at least one split");
        self.splits = splits;
        self
    }

    /// Number of uniform examples the tester wants:
    /// `O(log(1/(1-δ)) / ε²)` for the Chow statistic.
    pub fn examples_needed(&self) -> usize {
        let conf = (1.0 / (1.0 - self.delta)).ln().max(1.0);
        ((conf / (self.eps * self.eps)).ceil() as usize).max(100)
    }

    /// Runs the tester on a labeled sample of uniform CRPs.
    ///
    /// Each of the configured splits uses 70 % of the sample to fit a
    /// candidate halfspace (Chow LTF + pocket-perceptron polish) and
    /// the held-out 30 % for an unbiased disagreement estimate; the
    /// reported distance and Chow statistic are averaged over the
    /// splits.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains vectors of length ≠ `n`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        n: usize,
        data: &[(BitVec, bool)],
        rng: &mut R,
    ) -> TesterReport {
        assert!(!data.is_empty(), "tester needs at least one example");
        for (x, _) in data {
            assert_eq!(x.len(), n, "example length mismatch");
        }
        let mut w1_sum = 0.0;
        let mut distance_sum = 0.0;
        for _ in 0..self.splits {
            let mut shuffled: Vec<&(BitVec, bool)> = data.iter().collect();
            shuffled.shuffle(rng);
            let fit_len = ((shuffled.len() * 7) / 10).max(1);
            let (fit, held) = shuffled.split_at(fit_len);
            let held = if held.is_empty() { fit } else { held };

            // 1. Chow statistic on the fitting split.
            let fit_owned: Vec<(BitVec, bool)> = fit.iter().map(|(x, y)| (x.clone(), *y)).collect();
            let chow = ChowParameters::from_data(n, &fit_owned);
            w1_sum += chow.level_one_weight();

            // 2. Candidate halfspace: Chow LTF + pocket-perceptron polish.
            let candidate =
                pocket_perceptron(n, &fit_owned, Some(chow.to_ltf()), self.polish_epochs);

            // 3. Distance = held-out disagreement of the candidate.
            distance_sum += disagreement(&candidate, held);
        }
        let w1 = w1_sum / self.splits as f64;
        let distance = distance_sum / self.splits as f64;

        // Verdict: far from every halfspace if BOTH the spectral
        // signature is weak and no good halfspace was found. A halfspace
        // that is merely biased can have small W1, so the constructive
        // evidence (a candidate achieving distance < eps) dominates.
        let verdict =
            if distance <= self.eps || w1 >= HALFSPACE_LEVEL_ONE_FLOOR * (1.0 - 4.0 * self.eps) {
                Verdict::Halfspace
            } else {
                Verdict::FarFromHalfspace
            };

        TesterReport {
            level_one_weight: w1,
            distance_estimate: distance,
            verdict,
            examples_used: data.len(),
        }
    }
}

/// Fraction of `data` on which `ltf` disagrees with the labels.
fn disagreement(ltf: &LinearThreshold, data: &[&(BitVec, bool)]) -> f64 {
    let wrong = data
        .iter()
        .filter(|(x, y)| crate::function::BooleanFunction::eval(ltf, x) != *y)
        .count();
    wrong as f64 / data.len() as f64
}

/// Pocket perceptron: runs perceptron updates over the sample, keeping
/// the best weight vector ("pocket") seen by training error. Used here
/// only to *construct a candidate halfspace*; the full-featured learner
/// lives in `mlam-learn`.
///
/// `init` optionally seeds the weights (e.g. from Chow parameters).
pub fn pocket_perceptron(
    n: usize,
    data: &[(BitVec, bool)],
    init: Option<LinearThreshold>,
    epochs: usize,
) -> LinearThreshold {
    let (mut w, mut theta) = match init {
        Some(ltf) => {
            let mut w = ltf.weights().to_vec();
            w.resize(n, 0.0);
            (w, ltf.threshold())
        }
        None => (vec![0.0; n], 0.0),
    };
    let mut best_w = w.clone();
    let mut best_theta = theta;
    let mut best_err = usize::MAX;

    let err_of = |w: &[f64], theta: f64| -> usize {
        data.iter()
            .filter(|(x, y)| {
                let mut s = -theta;
                for (i, wi) in w.iter().enumerate() {
                    s += wi * x.pm(i);
                }
                crate::to_bool(s) != *y
            })
            .count()
    };

    let initial_err = err_of(&w, theta);
    if initial_err < best_err {
        best_err = initial_err;
        best_w = w.clone();
        best_theta = theta;
    }

    for _ in 0..epochs {
        let mut updated = false;
        for (x, y) in data {
            let target = crate::to_pm(*y);
            let mut s = -theta;
            for (i, wi) in w.iter().enumerate() {
                s += wi * x.pm(i);
            }
            let predicted = if s <= 0.0 { -1.0 } else { 1.0 };
            if predicted != target {
                for (i, wi) in w.iter_mut().enumerate() {
                    *wi += target * x.pm(i);
                }
                theta -= target;
                updated = true;
            }
        }
        let err = err_of(&w, theta);
        if err < best_err {
            best_err = err;
            best_w = w.clone();
            best_theta = theta;
        }
        if best_err == 0 || !updated {
            break;
        }
    }
    LinearThreshold::new(best_w, best_theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{BooleanFunction, FnFunction};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample<F: BooleanFunction>(f: &F, m: usize, rng: &mut StdRng) -> Vec<(BitVec, bool)> {
        (0..m)
            .map(|_| {
                let x = BitVec::random(f.num_inputs(), rng);
                let y = f.eval(&x);
                (x, y)
            })
            .collect()
    }

    #[test]
    fn accepts_random_ltf() {
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..3 {
            let mut frng = StdRng::seed_from_u64(100 + seed);
            let ltf = LinearThreshold::random(20, &mut frng);
            let data = sample(&ltf, 5000, &mut rng);
            let rep = HalfspaceTester::new(0.1, 0.95).run(20, &data, &mut rng);
            assert_eq!(rep.verdict, Verdict::Halfspace, "seed {seed}: {rep:?}");
            assert!(rep.distance_estimate < 0.06, "{rep:?}");
        }
    }

    #[test]
    fn rejects_parity() {
        let mut rng = StdRng::seed_from_u64(2);
        let parity = FnFunction::new(16, |x: &BitVec| x.count_ones() % 2 == 1);
        let data = sample(&parity, 6000, &mut rng);
        let rep = HalfspaceTester::new(0.1, 0.95).run(16, &data, &mut rng);
        assert_eq!(rep.verdict, Verdict::FarFromHalfspace, "{rep:?}");
        assert!(rep.level_one_weight < 0.05, "{rep:?}");
        assert!(rep.distance_estimate > 0.3, "{rep:?}");
    }

    #[test]
    fn rejects_two_bit_inner_product() {
        // IP(x) = x0x1 ⊕ x2x3 ⊕ ... is far from halfspaces.
        let mut rng = StdRng::seed_from_u64(3);
        let ip = FnFunction::new(16, |x: &BitVec| {
            let mut acc = false;
            for i in (0..16).step_by(2) {
                acc ^= x.get(i) && x.get(i + 1);
            }
            acc
        });
        let data = sample(&ip, 8000, &mut rng);
        let rep = HalfspaceTester::new(0.1, 0.95).run(16, &data, &mut rng);
        assert_eq!(rep.verdict, Verdict::FarFromHalfspace, "{rep:?}");
    }

    #[test]
    fn pocket_perceptron_fits_separable_data() {
        let mut rng = StdRng::seed_from_u64(4);
        let target = LinearThreshold::random(10, &mut rng);
        let data = sample(&target, 800, &mut rng);
        let fit = pocket_perceptron(10, &data, None, 400);
        let refs: Vec<&(BitVec, bool)> = data.iter().collect();
        assert_eq!(disagreement(&fit, &refs), 0.0);
    }

    #[test]
    fn chow_init_speeds_up_fit() {
        let mut rng = StdRng::seed_from_u64(5);
        let target = LinearThreshold::random(12, &mut rng);
        let data = sample(&target, 1500, &mut rng);
        let chow = ChowParameters::from_data(12, &data);
        let fit = pocket_perceptron(12, &data, Some(chow.to_ltf()), 3);
        let refs: Vec<&(BitVec, bool)> = data.iter().collect();
        assert!(disagreement(&fit, &refs) < 0.03);
    }

    #[test]
    fn examples_needed_scales_with_eps() {
        let few = HalfspaceTester::new(0.2, 0.9).examples_needed();
        let many = HalfspaceTester::new(0.05, 0.9).examples_needed();
        assert!(many > few);
    }

    #[test]
    fn distance_estimate_is_at_most_half_for_balanced_targets() {
        // Even for the worst function the pocket candidate can trivially
        // reach <= 0.5 by majority voting; verify on parity.
        let mut rng = StdRng::seed_from_u64(6);
        let parity = FnFunction::new(12, |x: &BitVec| x.count_ones() % 2 == 1);
        let data = sample(&parity, 4000, &mut rng);
        let rep = HalfspaceTester::new(0.1, 0.9).run(12, &data, &mut rng);
        assert!(rep.distance_estimate <= 0.55, "{rep:?}");
    }

    #[test]
    #[should_panic(expected = "at least one example")]
    fn empty_sample_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        HalfspaceTester::new(0.1, 0.9).run(4, &[], &mut rng);
    }
}
