//! Linear threshold functions (LTFs, a.k.a. halfspaces) and Chow
//! parameters.
//!
//! The paper represents an Arbiter PUF — and, allegedly, a BR PUF — as
//! `f(c) = sgn((Σ ω_i c_i) − θ)` over `c ∈ {-1,+1}^n` (Section III-A).
//! [`LinearThreshold`] is that object; [`ChowParameters`] are its degree-0
//! and degree-1 Fourier coefficients, which uniquely determine an LTF
//! (Chow's theorem) and which Section V-A approximates from CRPs to build
//! the surrogate `f′` of Table II.

use crate::bits::BitVec;
use crate::function::BooleanFunction;
use rand::Rng;

/// A linear threshold function `x ↦ sgn(w·x − θ)` over `x ∈ {-1,+1}^n`.
///
/// Logic convention (paper, Section III-A): challenge bit `0` is encoded
/// as `+1`, bit `1` as `-1`; a **negative** sign value denotes logic
/// response `1`.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, BooleanFunction, LinearThreshold};
///
/// // Majority of three bits: responds 1 when at least two inputs are 1.
/// let maj = LinearThreshold::new(vec![1.0, 1.0, 1.0], 0.0);
/// assert!(maj.eval(&BitVec::from_bools(&[true, true, false])));
/// assert!(!maj.eval(&BitVec::from_bools(&[true, false, false])));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LinearThreshold {
    weights: Vec<f64>,
    threshold: f64,
}

impl LinearThreshold {
    /// Creates an LTF with the given weights and threshold.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn new(weights: Vec<f64>, threshold: f64) -> Self {
        assert!(!weights.is_empty(), "LTF needs at least one weight");
        LinearThreshold { weights, threshold }
    }

    /// Samples an LTF with i.i.d. standard-normal weights and zero
    /// threshold — the usual random-halfspace model.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let weights = (0..n).map(|_| gaussian(rng)).collect();
        LinearThreshold::new(weights, 0.0)
    }

    /// The weight vector `ω`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The threshold `θ`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The real-valued margin `w·x − θ` at an input (±1 encoding).
    pub fn margin(&self, x: &BitVec) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "input length mismatch");
        let mut s = -self.threshold;
        for (i, w) in self.weights.iter().enumerate() {
            s += w * x.pm(i);
        }
        s
    }

    /// Rescales weights and threshold to unit Euclidean norm
    /// (`‖(w,θ)‖₂ = 1`); the Boolean function is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the LTF is identically zero.
    pub fn normalized(&self) -> LinearThreshold {
        let norm = (self.weights.iter().map(|w| w * w).sum::<f64>()
            + self.threshold * self.threshold)
            .sqrt();
        assert!(norm > 0.0, "cannot normalize the zero LTF");
        LinearThreshold {
            weights: self.weights.iter().map(|w| w / norm).collect(),
            threshold: self.threshold / norm,
        }
    }

    /// Exact Chow parameters for small `n` (exhaustive enumeration).
    ///
    /// # Panics
    ///
    /// Panics if `n > 20`.
    pub fn chow_exact(&self) -> ChowParameters {
        ChowParameters::exact(self)
    }
}

impl BooleanFunction for LinearThreshold {
    fn num_inputs(&self) -> usize {
        self.weights.len()
    }

    /// Logic response: `true` (logic 1) iff the margin is negative,
    /// matching `χ(1) = -1`.
    fn eval(&self, x: &BitVec) -> bool {
        crate::to_bool(self.margin(x))
    }
}

/// The Chow parameters of a Boolean function: its degree-0 coefficient
/// `f̂(∅) = E[f(x)]` and the `n` degree-1 coefficients
/// `f̂({i}) = E[f(x)·x_i]` (±1 encoding).
///
/// By Chow's theorem these `n+1` numbers determine an LTF uniquely among
/// all Boolean functions; [`ChowParameters::to_ltf`] uses them directly
/// as weights, the construction behind the paper's surrogate `f′`
/// (Section V-A.1, after De et al. \[25\]).
#[derive(Clone, Debug, PartialEq)]
pub struct ChowParameters {
    /// `f̂(∅)`.
    pub constant: f64,
    /// `f̂({i})` for each input `i`.
    pub degree_one: Vec<f64>,
}

impl ChowParameters {
    /// Exact Chow parameters of any function by exhaustive enumeration.
    ///
    /// The `2^n` evaluations are swept in fixed blocks of
    /// [`mlam_par::DEFAULT_CHUNK`] across `MLAM_THREADS` workers; block
    /// partials are folded in block order, so the result is
    /// bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `f.num_inputs() > 20`.
    pub fn exact<F: BooleanFunction + Sync + ?Sized>(f: &F) -> Self {
        let n = f.num_inputs();
        assert!(n <= 20, "exact Chow parameters limited to n <= 20");
        let total = 1u64 << n;
        let block = mlam_par::DEFAULT_CHUNK as u64;
        let blocks = total.div_ceil(block) as usize;
        let partials = mlam_par::par_map_index(blocks, |b| {
            let lo = b as u64 * block;
            let hi = (lo + block).min(total);
            let mut constant = 0.0;
            let mut degree_one = vec![0.0; n];
            for v in lo..hi {
                let x = BitVec::from_u64(v, n);
                let fx = f.eval_pm(&x);
                constant += fx;
                for (i, d) in degree_one.iter_mut().enumerate() {
                    *d += fx * x.pm(i);
                }
            }
            (constant, degree_one)
        });
        Self::fold_partials(n, partials, 1.0 / total as f64)
    }

    /// Estimates Chow parameters by querying `f` on `samples` uniform
    /// random inputs.
    pub fn estimate<F, R>(f: &F, samples: usize, rng: &mut R) -> Self
    where
        F: BooleanFunction + ?Sized,
        R: Rng + ?Sized,
    {
        assert!(samples > 0);
        let n = f.num_inputs();
        let data: Vec<(BitVec, bool)> = (0..samples)
            .map(|_| {
                let x = BitVec::random(n, rng);
                let y = f.eval(&x);
                (x, y)
            })
            .collect();
        Self::from_data(n, &data)
    }

    /// Estimates Chow parameters from an explicit labeled sample —
    /// exactly the paper's procedure of "approximating the Chow
    /// parameters using a small set of noiseless CRPs".
    ///
    /// The sweep runs in fixed chunks of [`mlam_par::DEFAULT_CHUNK`]
    /// across `MLAM_THREADS` workers, partials folded in chunk order —
    /// bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn from_data(n: usize, data: &[(BitVec, bool)]) -> Self {
        assert!(!data.is_empty(), "empty sample");
        let partials = mlam_par::par_chunk_map(data, mlam_par::DEFAULT_CHUNK, |_, chunk| {
            let mut constant = 0.0;
            let mut degree_one = vec![0.0; n];
            for (x, y) in chunk {
                let fx = crate::to_pm(*y);
                constant += fx;
                for (i, d) in degree_one.iter_mut().enumerate() {
                    *d += fx * x.pm(i);
                }
            }
            (constant, degree_one)
        });
        Self::fold_partials(n, partials, 1.0 / data.len() as f64)
    }

    /// Folds per-chunk `(constant, degree_one)` partials in chunk order
    /// and applies the normalization `scale`.
    fn fold_partials(n: usize, partials: Vec<(f64, Vec<f64>)>, scale: f64) -> Self {
        let mut constant = 0.0;
        let mut degree_one = vec![0.0; n];
        for (c, d) in partials {
            constant += c;
            for (acc, p) in degree_one.iter_mut().zip(d) {
                *acc += p;
            }
        }
        constant *= scale;
        for d in &mut degree_one {
            *d *= scale;
        }
        ChowParameters {
            constant,
            degree_one,
        }
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.degree_one.len()
    }

    /// Squared degree-≤1 Fourier weight
    /// `f̂(∅)² + Σ_i f̂({i})²`.
    ///
    /// For an LTF this is bounded below by a universal constant
    /// (≥ `2/π` for unbiased LTFs); for functions far from every
    /// halfspace it is small. The halfspace tester of
    /// [`crate::testing`] thresholds this statistic.
    pub fn level_one_weight(&self) -> f64 {
        self.constant * self.constant + self.degree_one.iter().map(|d| d * d).sum::<f64>()
    }

    /// Builds the LTF `f′ = sgn(Σ f̂({i})·x_i + f̂(∅))` whose weights are
    /// the Chow parameters themselves.
    ///
    /// If the source function *is* an LTF, `f′` approximates it (the Chow
    /// vector points into the same halfspace); if not, `f′` is the
    /// natural linear surrogate whose accuracy plateau Table II exposes.
    pub fn to_ltf(&self) -> LinearThreshold {
        LinearThreshold::new(self.degree_one.clone(), -self.constant)
    }
}

/// Samples a standard normal via Box–Muller.
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>();
        if u > f64::EPSILON {
            let v: f64 = rng.gen();
            return (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{agreement_exact, FnFunction};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn majority_ltf_evaluates() {
        let maj = LinearThreshold::new(vec![1.0, 1.0, 1.0], 0.0);
        // Two ones -> margin = (+1 from the zero bit) + (-1) + (-1) = -1 < 0 -> logic 1.
        assert!(maj.eval(&BitVec::from_bools(&[true, true, false])));
        assert!(!maj.eval(&BitVec::from_bools(&[false, false, true])));
    }

    #[test]
    fn normalization_preserves_function() {
        let mut rng = StdRng::seed_from_u64(8);
        let f = LinearThreshold::new(vec![3.0, -2.0, 0.5, 1.5], 0.7);
        let g = f.normalized();
        let norm: f64 =
            g.weights().iter().map(|w| w * w).sum::<f64>() + g.threshold() * g.threshold();
        assert!((norm - 1.0).abs() < 1e-12);
        for _ in 0..100 {
            let x = BitVec::random(4, &mut rng);
            assert_eq!(f.eval(&x), g.eval(&x));
        }
    }

    #[test]
    fn chow_exact_of_dictator() {
        // f(x) = x_1 (logic) = -χ_{1}?? No: logic x1 maps 0->+1, 1->-1, so
        // f = χ_{{1}} in the ±1 world: E[f·x_1] = 1.
        let f = FnFunction::new(3, |x: &BitVec| x.get(1));
        let chow = ChowParameters::exact(&f);
        assert!(chow.constant.abs() < 1e-12);
        assert!((chow.degree_one[1] - 1.0).abs() < 1e-12);
        assert!(chow.degree_one[0].abs() < 1e-12);
        assert!(chow.degree_one[2].abs() < 1e-12);
    }

    #[test]
    fn chow_estimate_converges_to_exact() {
        let mut rng = StdRng::seed_from_u64(21);
        let f = LinearThreshold::random(8, &mut rng);
        let exact = ChowParameters::exact(&f);
        let est = ChowParameters::estimate(&f, 50_000, &mut rng);
        assert!((exact.constant - est.constant).abs() < 0.03);
        for (a, b) in exact.degree_one.iter().zip(&est.degree_one) {
            assert!((a - b).abs() < 0.03);
        }
    }

    #[test]
    fn chow_ltf_reconstruction_recovers_random_ltf() {
        // Chow's theorem in action: for a genuine LTF, the LTF built from
        // (exact) Chow parameters agrees almost everywhere.
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..5 {
            let f = LinearThreshold::random(10, &mut rng);
            let rec = ChowParameters::exact(&f).to_ltf();
            let agree = agreement_exact(&f, &rec);
            // At n=10 the Chow vector is a coarse but faithful pointer into
            // the right halfspace; agreement is high though not perfect.
            assert!(agree > 0.85, "agreement {agree}");
        }
    }

    #[test]
    fn level_one_weight_of_ltf_is_large_of_parity_is_zero() {
        let mut rng = StdRng::seed_from_u64(13);
        let ltf = LinearThreshold::random(10, &mut rng);
        let w_ltf = ChowParameters::exact(&ltf).level_one_weight();
        assert!(w_ltf > 0.5, "LTF level-1 weight {w_ltf}");
        let parity = FnFunction::new(10, |x: &BitVec| x.count_ones() % 2 == 1);
        let w_par = ChowParameters::exact(&parity).level_one_weight();
        assert!(w_par < 1e-12, "parity level-1 weight {w_par}");
    }

    #[test]
    fn margin_threshold_shifts_decision() {
        let f = LinearThreshold::new(vec![1.0], 10.0);
        // Margin is always negative -> constant logic 1.
        assert!(f.eval(&BitVec::from_bools(&[false])));
        assert!(f.eval(&BitVec::from_bools(&[true])));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(44);
        let xs: Vec<f64> = (0..50_000).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
