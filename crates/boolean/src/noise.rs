//! Noise sensitivity and related spectral quantities.
//!
//! The noise sensitivity of `f` at rate `ε` is
//! `NS_ε(f) = Pr[f(x) ≠ f(y)]` where `x` is uniform and `y` flips every
//! bit of `x` independently with probability `ε` (paper, Section III-A).
//! For PUFs this models *attribute noise*: the probability of a response
//! change when challenge bits are perturbed. The LMN-style bounds in the
//! paper hinge on `NS_ε(LTF) = O(√ε)` and
//! `NS_ε(g(f_1..f_k)) = O(k·√ε)` for any combiner `g` of `k` LTFs.

use crate::bits::BitVec;
use crate::function::BooleanFunction;
use rand::Rng;

/// Estimates `NS_ε(f)` by Monte-Carlo sampling of `samples` correlated
/// pairs.
///
/// # Panics
///
/// Panics if `eps` is outside `[0, 1]` or `samples == 0`.
///
/// # Example
///
/// ```
/// use mlam_boolean::{noise, BitVec, FnFunction};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let dictator = FnFunction::new(16, |x: &BitVec| x.get(0));
/// let ns = noise::noise_sensitivity(&dictator, 0.1, 20_000, &mut rng);
/// // A dictator changes only when its one relevant bit flips.
/// assert!((ns - 0.1).abs() < 0.02);
/// ```
pub fn noise_sensitivity<F, R>(f: &F, eps: f64, samples: usize, rng: &mut R) -> f64
where
    F: BooleanFunction + ?Sized,
    R: Rng + ?Sized,
{
    assert!((0.0..=1.0).contains(&eps), "eps must be in [0,1]");
    assert!(samples > 0);
    let n = f.num_inputs();
    let mut flips = 0usize;
    for _ in 0..samples {
        let x = BitVec::random(n, rng);
        let mut y = x.clone();
        for i in 0..n {
            if rng.gen_bool(eps) {
                y.flip(i);
            }
        }
        if f.eval(&x) != f.eval(&y) {
            flips += 1;
        }
    }
    flips as f64 / samples as f64
}

/// Exact noise sensitivity from the Fourier spectrum:
/// `NS_ε(f) = ½ − ½·Σ_S (1−2ε)^{|S|} f̂(S)²`.
///
/// Requires the dense spectrum, so small `n` only.
pub fn noise_sensitivity_exact(spectrum: &crate::fourier::FourierExpansion, eps: f64) -> f64 {
    assert!((0.0..=1.0).contains(&eps));
    let rho = 1.0 - 2.0 * eps;
    let mut stab = 0.0;
    for (s, c) in spectrum.coefficients().iter().enumerate() {
        stab += rho.powi((s as u64).count_ones() as i32) * c * c;
    }
    0.5 - 0.5 * stab
}

/// The theoretical LTF noise-sensitivity scale `√ε` (Peres' theorem gives
/// `NS_ε(LTF) ≤ O(√ε)`; the constant is ≈ 0.8907 for the majority-like
/// worst case).
pub fn ltf_noise_sensitivity_bound(eps: f64) -> f64 {
    0.8907 * eps.sqrt()
}

/// The combiner bound of Klivans–O'Donnell–Servedio used by Corollary 1:
/// `NS_ε(g(f_1,…,f_k)) ≤ k·O(√ε)` for arbitrary `g` and LTFs `f_i`.
pub fn xor_ltf_noise_sensitivity_bound(k: usize, eps: f64) -> f64 {
    k as f64 * ltf_noise_sensitivity_bound(eps)
}

/// Estimates the influence of variable `i`:
/// `Inf_i(f) = Pr[f(x) ≠ f(x ⊕ e_i)]`.
pub fn influence<F, R>(f: &F, i: usize, samples: usize, rng: &mut R) -> f64
where
    F: BooleanFunction + ?Sized,
    R: Rng + ?Sized,
{
    assert!(samples > 0);
    let n = f.num_inputs();
    assert!(i < n, "variable index out of range");
    let mut flips = 0usize;
    for _ in 0..samples {
        let x = BitVec::random(n, rng);
        let y = x.with_flipped(i);
        if f.eval(&x) != f.eval(&y) {
            flips += 1;
        }
    }
    flips as f64 / samples as f64
}

/// Estimates the total influence `Σ_i Inf_i(f)` with `samples` pairs per
/// variable.
pub fn total_influence<F, R>(f: &F, samples: usize, rng: &mut R) -> f64
where
    F: BooleanFunction + ?Sized,
    R: Rng + ?Sized,
{
    (0..f.num_inputs())
        .map(|i| influence(f, i, samples, rng))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::TruthTable;
    use crate::function::FnFunction;
    use crate::ltf::LinearThreshold;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parity_noise_sensitivity_is_high() {
        let mut rng = StdRng::seed_from_u64(2);
        let parity = FnFunction::new(32, |x: &BitVec| x.count_ones() % 2 == 1);
        // NS_eps(parity_n) = (1-(1-2eps)^n)/2 -> 0.5 for large n.
        let ns = noise_sensitivity(&parity, 0.1, 20_000, &mut rng);
        let expect = 0.5 * (1.0 - (1.0f64 - 0.2).powi(32));
        assert!((ns - expect).abs() < 0.02, "ns {ns} expect {expect}");
    }

    #[test]
    fn ltf_noise_sensitivity_scales_like_sqrt_eps() {
        let mut rng = StdRng::seed_from_u64(3);
        let ltf = LinearThreshold::random(64, &mut rng);
        let ns_small = noise_sensitivity(&ltf, 0.01, 30_000, &mut rng);
        let ns_large = noise_sensitivity(&ltf, 0.16, 30_000, &mut rng);
        // sqrt scaling: ratio should be near sqrt(16) = 4, far from 16.
        let ratio = ns_large / ns_small.max(1e-9);
        assert!(ratio > 2.0 && ratio < 8.0, "ratio {ratio}");
        assert!(ns_small < ltf_noise_sensitivity_bound(0.01) * 2.0);
    }

    #[test]
    fn exact_matches_sampled_for_small_function() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = TruthTable::random(8, &mut rng);
        let exact = noise_sensitivity_exact(&t.fourier(), 0.1);
        let sampled = noise_sensitivity(&t, 0.1, 60_000, &mut rng);
        assert!(
            (exact - sampled).abs() < 0.02,
            "exact {exact} sampled {sampled}"
        );
    }

    #[test]
    fn exact_noise_sensitivity_of_dictator() {
        let t = TruthTable::from_fn(6, |x| x.get(3));
        // NS_eps(dictator) = eps exactly.
        let ns = noise_sensitivity_exact(&t.fourier(), 0.07);
        assert!((ns - 0.07).abs() < 1e-12);
    }

    #[test]
    fn influence_of_parity_is_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let parity = FnFunction::new(10, |x: &BitVec| x.count_ones() % 2 == 1);
        let inf = influence(&parity, 4, 2000, &mut rng);
        assert_eq!(inf, 1.0);
    }

    #[test]
    fn influence_of_irrelevant_variable_is_zero() {
        let mut rng = StdRng::seed_from_u64(6);
        let f = FnFunction::new(8, |x: &BitVec| x.get(0));
        assert_eq!(influence(&f, 5, 2000, &mut rng), 0.0);
        assert_eq!(influence(&f, 0, 2000, &mut rng), 1.0);
    }

    #[test]
    fn total_influence_of_dictator_is_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let f = FnFunction::new(6, |x: &BitVec| x.get(2));
        let ti = total_influence(&f, 3000, &mut rng);
        assert!((ti - 1.0).abs() < 1e-9);
    }

    #[test]
    fn xor_bound_grows_linearly_in_k() {
        let b1 = xor_ltf_noise_sensitivity_bound(1, 0.04);
        let b4 = xor_ltf_noise_sensitivity_bound(4, 0.04);
        assert!((b4 / b1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_noise_rate_never_flips() {
        let mut rng = StdRng::seed_from_u64(8);
        let ltf = LinearThreshold::random(16, &mut rng);
        assert_eq!(noise_sensitivity(&ltf, 0.0, 500, &mut rng), 0.0);
    }
}
