//! Property-based tests for the mlam-boolean invariants.

use mlam_boolean::{
    anf::Anf, dense::TruthTable, function::agreement_exact, ltf::ChowParameters,
    ltf::LinearThreshold, wht, BitVec, BooleanFunction,
};
use proptest::prelude::*;

proptest! {
    /// The WHT applied twice rescales by the length.
    #[test]
    fn wht_involution(vals in prop::collection::vec(-100i64..100, 16)) {
        let mut t = vals.clone();
        wht::walsh_hadamard_i64(&mut t);
        wht::walsh_hadamard_i64(&mut t);
        for (a, b) in t.iter().zip(&vals) {
            prop_assert_eq!(*a, b * 16);
        }
    }

    /// Parseval: the Fourier weight of any ±1 function is exactly 1.
    #[test]
    fn parseval(outputs in prop::collection::vec(any::<bool>(), 64)) {
        let t = TruthTable::from_outputs(outputs);
        let w = t.fourier().total_weight();
        prop_assert!((w - 1.0).abs() < 1e-9);
    }

    /// ANF round-trip: truth table -> ANF -> truth table is the identity.
    #[test]
    fn anf_round_trip(outputs in prop::collection::vec(any::<bool>(), 32)) {
        let t = TruthTable::from_outputs(outputs);
        let anf = Anf::from_truth_table(&t);
        prop_assert_eq!(anf.to_truth_table(), t);
    }

    /// BitVec u64 round-trip for any length <= 64.
    #[test]
    fn bitvec_u64_round_trip(v in any::<u64>(), extra in 0usize..63) {
        let len = extra + 1;
        let masked = if len == 64 { v } else { v & ((1u64 << len) - 1) };
        let bv = BitVec::from_u64(v, len);
        prop_assert_eq!(bv.to_u64(), masked);
        prop_assert_eq!(bv.len(), len);
    }

    /// XOR of two ANFs evaluates as pointwise XOR.
    #[test]
    fn anf_xor_is_pointwise(a in prop::collection::vec(any::<bool>(), 16),
                            b in prop::collection::vec(any::<bool>(), 16)) {
        let ta = TruthTable::from_outputs(a.clone());
        let tb = TruthTable::from_outputs(b.clone());
        let mut anf = Anf::from_truth_table(&ta);
        anf.xor_assign(&Anf::from_truth_table(&tb));
        for v in 0..16u64 {
            let x = BitVec::from_u64(v, 4);
            prop_assert_eq!(anf.eval(&x), ta.eval(&x) ^ tb.eval(&x));
        }
    }

    /// Chow reconstruction of a genuine LTF agrees with it on >= 90 % of
    /// the cube (Chow's theorem, robust version).
    #[test]
    fn chow_reconstruction_close(seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = LinearThreshold::random(8, &mut rng);
        let rec = ChowParameters::exact(&f).to_ltf();
        // n = 8 is small, so the Chow vector is a coarse approximation;
        // 0.85 still separates it sharply from chance (0.5).
        prop_assert!(agreement_exact(&f, &rec) >= 0.85);
    }

    /// Hamming distance is a metric: symmetric and satisfies identity.
    #[test]
    fn hamming_symmetry(a in prop::collection::vec(any::<bool>(), 70),
                        b in prop::collection::vec(any::<bool>(), 70)) {
        let va = BitVec::from_bools(&a);
        let vb = BitVec::from_bools(&b);
        prop_assert_eq!(va.hamming(&vb), vb.hamming(&va));
        prop_assert_eq!(va.hamming(&va), 0);
    }

    /// flip is an involution on BitVec.
    #[test]
    fn flip_involution(bits in prop::collection::vec(any::<bool>(), 1..100),
                       idx in any::<prop::sample::Index>()) {
        let mut v = BitVec::from_bools(&bits);
        let orig = v.clone();
        let i = idx.index(bits.len());
        v.flip(i);
        prop_assert_ne!(v.get(i), orig.get(i));
        v.flip(i);
        prop_assert_eq!(v, orig);
    }

    /// words() exposes exactly the bits read by get(), with a zero tail.
    #[test]
    fn words_agree_with_get(bits in prop::collection::vec(any::<bool>(), 0..200)) {
        let v = BitVec::from_bools(&bits);
        let words = v.words();
        prop_assert_eq!(words.len(), bits.len().div_ceil(64));
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!((words[i / 64] >> (i % 64)) & 1 == 1, b);
        }
        let rem = bits.len() % 64;
        if rem != 0 {
            prop_assert_eq!(words[words.len() - 1] >> rem, 0);
        }
    }

    /// suffix_parity_words matches the scalar suffix-XOR definition at
    /// every index, for any length (including non-multiple-of-64 tails).
    #[test]
    fn suffix_parity_words_match_scalar(bits in prop::collection::vec(any::<bool>(), 0..200)) {
        let v = BitVec::from_bools(&bits);
        let sp = v.suffix_parity_words();
        for i in 0..bits.len() {
            let scalar = bits[i..].iter().fold(false, |acc, &b| acc ^ b);
            prop_assert_eq!((sp[i / 64] >> (i % 64)) & 1 == 1, scalar);
        }
    }
}
