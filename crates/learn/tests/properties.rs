//! Property-based tests for the learning toolkit.

use mlam_boolean::{Anf, BitVec, BooleanFunction, FnFunction, LinearThreshold};
use mlam_learn::dataset::LabeledSet;
use mlam_learn::f2poly::learn_low_degree_anf;
use mlam_learn::features::{ArbiterPhiFeatures, FeatureMap, PlusMinusFeatures};
use mlam_learn::lstar::{lstar_learn, ExactDfaTeacher};
use mlam_learn::oracle::FunctionOracle;
use mlam_learn::perceptron::Perceptron;
use mlam_learn::Dfa;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The perceptron trained on separable data achieves zero training
    /// error (convergence theorem), regardless of the target.
    #[test]
    fn perceptron_converges_on_separable_data(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = LinearThreshold::random(10, &mut rng);
        let train = LabeledSet::sample(&target, 300, &mut rng);
        let out = Perceptron::new(500).train(&train);
        prop_assert!(out.training_accuracy >= 0.99, "{}", out.training_accuracy);
    }

    /// Möbius interpolation recovers every polynomial of degree <= 2
    /// exactly.
    #[test]
    fn f2_interpolation_exact(
        monomials in prop::collection::vec(0u64..64, 0..6),
        seed in any::<u64>(),
    ) {
        // Restrict monomials to degree <= 2 over 6 variables.
        let monos: Vec<u64> = monomials
            .into_iter()
            .filter(|m| m.count_ones() <= 2)
            .collect();
        let target = Anf::from_monomials(6, monos);
        let t2 = target.clone();
        let f = FnFunction::new(6, move |x: &BitVec| t2.eval(x));
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_low_degree_anf(&oracle, 2);
        prop_assert_eq!(out.hypothesis, target);
        let _ = seed;
    }

    /// Feature maps have consistent dimensions and ±1 ranges.
    #[test]
    fn feature_maps_wellformed(bits in prop::collection::vec(any::<bool>(), 1..30)) {
        let n = bits.len();
        let x = BitVec::from_bools(&bits);
        for features in [
            PlusMinusFeatures::new(n).features(&x),
            ArbiterPhiFeatures::new(n).features(&x),
        ] {
            prop_assert_eq!(features.len(), n + 1);
            prop_assert!(features.iter().all(|&v| v == 1.0 || v == -1.0));
            prop_assert_eq!(*features.last().expect("non-empty"), 1.0);
        }
    }

    /// L* always learns an equivalent, minimal DFA from an exact
    /// teacher, for arbitrary random machines.
    #[test]
    fn lstar_learns_random_dfas(
        seed in any::<u64>(),
        states in 1usize..7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let transitions: Vec<Vec<usize>> = (0..states)
            .map(|_| (0..2).map(|_| rand::Rng::gen_range(&mut rng, 0..states)).collect())
            .collect();
        let accepting: Vec<bool> = (0..states).map(|_| rand::Rng::gen(&mut rng)).collect();
        let target = Dfa::new(2, transitions, accepting);
        let mut teacher = ExactDfaTeacher::new(target.clone());
        let out = lstar_learn(&mut teacher, 500);
        prop_assert_eq!(out.dfa.shortest_disagreement(&target), None);
        prop_assert!(out.dfa.num_states() <= target.minimized().num_states());
    }

    /// Accuracy of a hypothesis plus accuracy of its complement is 1.
    #[test]
    fn accuracy_complement(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = LinearThreshold::random(8, &mut rng);
        let set = LabeledSet::sample(&target, 200, &mut rng);
        let h = LinearThreshold::random(8, &mut rng);
        let hw: Vec<f64> = h.weights().iter().map(|w| -w).collect();
        let h_neg = LinearThreshold::new(hw, -h.threshold());
        let a = set.accuracy_of(&h);
        let b = set.accuracy_of(&h_neg);
        // h_neg is the pointwise complement of h except on measure-zero
        // ties, which BitVec sampling avoids almost surely.
        prop_assert!((a + b - 1.0).abs() < 0.06, "{a} + {b}");
    }
}
