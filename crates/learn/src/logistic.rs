//! Logistic regression with Adam — the workhorse of empirical PUF
//! modeling attacks (Rührmair et al. \[8\] attacked Arbiter and XOR
//! Arbiter PUFs with exactly this model class over Φ features).

use crate::dataset::LabeledSet;
use crate::feature_matrix::FeatureMatrix;
use crate::features::{ArbiterPhiFeatures, FeatureMap};
use crate::perceptron::LinearModel;
use rand::Rng;

/// Hyperparameters for the logistic-regression trainer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogisticConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Adam step size.
    pub learning_rate: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            epochs: 60,
            learning_rate: 0.05,
            batch_size: 32,
            l2: 1e-5,
        }
    }
}

/// Outcome of a logistic-regression run.
#[derive(Clone, Debug)]
pub struct LogisticOutcome<M> {
    /// The trained model (sign of the logit).
    pub model: LinearModel<M>,
    /// Final mean training loss.
    pub final_loss: f64,
    /// Training accuracy of the final model.
    pub training_accuracy: f64,
}

/// Logistic-regression trainer.
///
/// # Example
///
/// ```
/// use mlam_learn::dataset::LabeledSet;
/// use mlam_learn::logistic::{LogisticConfig, LogisticRegression};
/// use mlam_boolean::LinearThreshold;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let target = LinearThreshold::random(16, &mut rng);
/// let train = LabeledSet::sample(&target, 800, &mut rng);
/// let out = LogisticRegression::new(LogisticConfig::default())
///     .train(&train, &mut rng);
/// assert!(out.training_accuracy > 0.95);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LogisticRegression {
    config: LogisticConfig,
}

impl LogisticRegression {
    /// Creates a trainer with the given hyperparameters.
    pub fn new(config: LogisticConfig) -> Self {
        assert!(config.epochs > 0 && config.batch_size > 0);
        assert!(config.learning_rate > 0.0 && config.l2 >= 0.0);
        LogisticRegression { config }
    }

    /// Trains over the ±1 bit features.
    pub fn train<R: Rng + ?Sized>(
        &self,
        data: &LabeledSet,
        rng: &mut R,
    ) -> LogisticOutcome<crate::features::PlusMinusFeatures> {
        self.train_with(
            crate::features::PlusMinusFeatures::new(data.num_inputs()),
            data,
            rng,
        )
    }

    /// Trains over the arbiter Φ features — the standard modeling attack
    /// on (XOR) Arbiter PUFs.
    pub fn train_phi<R: Rng + ?Sized>(
        &self,
        data: &LabeledSet,
        rng: &mut R,
    ) -> LogisticOutcome<ArbiterPhiFeatures> {
        self.train_with(ArbiterPhiFeatures::new(data.num_inputs()), data, rng)
    }

    /// Trains over an arbitrary feature map with Adam on the logistic
    /// loss `ln(1 + e^{−t·w·φ(x)})` (`t = ±1`).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or arities mismatch.
    pub fn train_with<M: FeatureMap + Clone, R: Rng + ?Sized>(
        &self,
        map: M,
        data: &LabeledSet,
        rng: &mut R,
    ) -> LogisticOutcome<M> {
        assert!(!data.is_empty(), "cannot train on an empty set");
        assert_eq!(map.num_inputs(), data.num_inputs(), "feature map arity");
        let d = map.dimension();
        // One cached feature matrix shared by every epoch, minibatch,
        // and the final loss scan.
        let fm = FeatureMatrix::build(&map, data);

        let mut w = vec![0.0f64; d];
        let mut m1 = vec![0.0f64; d];
        let mut m2 = vec![0.0f64; d];
        let (b1, b2, eps) = (0.9, 0.999, 1e-8);
        let mut step = 0usize;

        let mut order: Vec<usize> = (0..fm.examples()).collect();
        for epoch in 1..=self.config.epochs {
            // Shuffle the visit order each epoch.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for batch in order.chunks(self.config.batch_size) {
                step += 1;
                let mut grad = vec![0.0f64; d];
                for &idx in batch {
                    let t = fm.label(idx);
                    let s = fm.dot(idx, &w);
                    // d/dw ln(1+e^{-t s}) = -t f σ(-t s)
                    let sigma = 1.0 / (1.0 + (t * s).exp());
                    fm.grad_sub(idx, t, sigma, &mut grad);
                }
                let scale = 1.0 / batch.len() as f64;
                for ((wi, g), (mi, vi)) in w
                    .iter_mut()
                    .zip(&grad)
                    .zip(m1.iter_mut().zip(m2.iter_mut()))
                {
                    let g = g * scale + self.config.l2 * *wi;
                    *mi = b1 * *mi + (1.0 - b1) * g;
                    *vi = b2 * *vi + (1.0 - b2) * g * g;
                    let mhat = *mi / (1.0 - b1.powi(step as i32));
                    let vhat = *vi / (1.0 - b2.powi(step as i32));
                    *wi -= self.config.learning_rate * mhat / (vhat.sqrt() + eps);
                }
            }
            // Learning-curve checkpoint at log-spaced epochs. The
            // accuracy scan is recording-only and consumes no RNG, so
            // the training trajectory is untouched.
            if mlam_telemetry::curves::recording()
                && mlam_telemetry::curves::should_checkpoint(
                    epoch as u64,
                    self.config.epochs as u64,
                )
            {
                let mut correct = 0usize;
                for row in 0..fm.examples() {
                    if fm.dot(row, &w) * fm.label(row) > 0.0 {
                        correct += 1;
                    }
                }
                mlam_telemetry::curves::checkpoint(
                    "logistic",
                    epoch as u64,
                    correct as f64 / fm.examples() as f64,
                    None,
                );
            }
        }

        let mut loss = 0.0;
        let mut correct = 0usize;
        for row in 0..fm.examples() {
            let t = fm.label(row);
            let s = fm.dot(row, &w);
            loss += ln_1p_exp(-t * s);
            if s * t > 0.0 {
                correct += 1;
            }
        }
        let model = LinearModel::new(map, w);
        LogisticOutcome {
            model,
            final_loss: loss / fm.examples() as f64,
            training_accuracy: correct as f64 / fm.examples() as f64,
        }
    }
}

/// Numerically stable `ln(1 + e^z)`.
fn ln_1p_exp(z: f64) -> f64 {
    if z > 30.0 {
        z
    } else if z < -30.0 {
        0.0
    } else {
        (1.0 + z.exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_boolean::{BitVec, FnFunction, LinearThreshold};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fits_random_ltf() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = LinearThreshold::random(20, &mut rng);
        let train = LabeledSet::sample(&target, 2000, &mut rng);
        let test = LabeledSet::sample(&target, 1000, &mut rng);
        let out = LogisticRegression::new(LogisticConfig::default()).train(&train, &mut rng);
        assert!(out.training_accuracy > 0.97, "{}", out.training_accuracy);
        assert!(test.accuracy_of(&out.model) > 0.93);
        assert!(out.final_loss < 0.3);
    }

    #[test]
    fn phi_training_beats_raw_on_arbiter_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 24;
        let weights: Vec<f64> = (0..=n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let w = weights.clone();
        let target = FnFunction::new(n, move |x: &BitVec| {
            let phi = ArbiterPhiFeatures::new(n).features(x);
            phi.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() <= 0.0
        });
        let train = LabeledSet::sample(&target, 3000, &mut rng);
        let test = LabeledSet::sample(&target, 1500, &mut rng);
        let cfg = LogisticConfig::default();
        let phi = LogisticRegression::new(cfg).train_phi(&train, &mut rng);
        let raw = LogisticRegression::new(cfg).train(&train, &mut rng);
        let phi_acc = test.accuracy_of(&phi.model);
        let raw_acc = test.accuracy_of(&raw.model);
        assert!(phi_acc > 0.95, "phi accuracy {phi_acc}");
        assert!(phi_acc > raw_acc, "phi {phi_acc} vs raw {raw_acc}");
    }

    #[test]
    fn tolerates_label_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let target = LinearThreshold::random(16, &mut rng);
        let clean = LabeledSet::sample(&target, 3000, &mut rng);
        // Flip 10 % of labels.
        let noisy_pairs: Vec<(BitVec, bool)> = clean
            .pairs()
            .iter()
            .map(|(x, y)| {
                let flip = rng.gen_bool(0.1);
                (x.clone(), *y != flip)
            })
            .collect();
        let noisy = LabeledSet::from_pairs(16, noisy_pairs);
        let test = LabeledSet::sample(&target, 1500, &mut rng);
        let out = LogisticRegression::new(LogisticConfig::default()).train(&noisy, &mut rng);
        // Unlike the vanilla perceptron, LR still recovers the concept.
        assert!(test.accuracy_of(&out.model) > 0.9);
    }

    #[test]
    fn stable_log1pexp() {
        assert_eq!(ln_1p_exp(100.0), 100.0);
        assert_eq!(ln_1p_exp(-100.0), 0.0);
        assert!((ln_1p_exp(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
