//! Evaluation harness: learning curves, cross-validation and empirical
//! sample complexity.
//!
//! Table I gives analytic CRP bounds; the benchmark harness also
//! *measures* how many CRPs each learner empirically needs to reach a
//! target accuracy. [`learning_curve`] and [`crps_to_accuracy`] provide
//! those measurements for any learner expressible as a closure from a
//! training set to a hypothesis, and [`k_fold_accuracy`] estimates
//! generalization by deterministic k-fold cross-validation with the
//! folds trained across `MLAM_THREADS` worker threads.

use crate::dataset::LabeledSet;
use mlam_boolean::BooleanFunction;
use rand::Rng;

/// One point of a learning curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// Training-set size used.
    pub train_size: usize,
    /// Test accuracy reached.
    pub test_accuracy: f64,
}

/// Sweeps training-set sizes and records test accuracy.
///
/// `learner` maps a training set to a hypothesis. The same test set is
/// used for every point; training sets are nested prefixes of one large
/// sample, so the curve is monotone in expectation.
///
/// # Panics
///
/// Panics if `sizes` is empty or its maximum exceeds the sampled pool.
pub fn learning_curve<F, L, H, R>(
    target: &F,
    sizes: &[usize],
    test_size: usize,
    learner: L,
    rng: &mut R,
) -> Vec<CurvePoint>
where
    F: BooleanFunction + ?Sized,
    L: Fn(&LabeledSet) -> H,
    H: BooleanFunction,
    R: Rng + ?Sized,
{
    assert!(!sizes.is_empty(), "need at least one size");
    let max = *sizes.iter().max().expect("non-empty");
    let pool = LabeledSet::sample(target, max, rng);
    let test = LabeledSet::sample(target, test_size, rng);
    sizes
        .iter()
        .map(|&m| {
            let train = pool.take(m);
            let h = learner(&train);
            CurvePoint {
                train_size: m,
                test_accuracy: test.accuracy_of(&h),
            }
        })
        .collect()
}

/// Deterministic k-fold cross-validation: returns one held-out accuracy
/// per fold, in fold order.
///
/// Fold `i` holds out the `i`-th of `k` contiguous index ranges of
/// `data` (the caller shuffles beforehand if the order is meaningful)
/// and trains `learner` on the remainder. Fold boundaries depend only on
/// `data.len()` and `k`, and the folds are trained and scored across
/// `MLAM_THREADS` workers with results assembled in fold order — the
/// returned accuracies are bit-identical at any thread count.
///
/// # Panics
///
/// Panics if `k < 2` or `data.len() < k`.
pub fn k_fold_accuracy<L, H>(data: &LabeledSet, k: usize, learner: L) -> Vec<f64>
where
    L: Fn(&LabeledSet) -> H + Sync,
    H: BooleanFunction + Send,
{
    assert!(k >= 2, "k-fold needs at least 2 folds");
    assert!(data.len() >= k, "need at least one example per fold");
    let n = data.num_inputs();
    let pairs = data.pairs();
    mlam_par::par_map_index(k, |i| {
        let lo = i * pairs.len() / k;
        let hi = (i + 1) * pairs.len() / k;
        let test = LabeledSet::from_pairs(n, pairs[lo..hi].to_vec());
        let mut train_pairs = Vec::with_capacity(pairs.len() - (hi - lo));
        train_pairs.extend_from_slice(&pairs[..lo]);
        train_pairs.extend_from_slice(&pairs[hi..]);
        let train = LabeledSet::from_pairs(n, train_pairs);
        let h = learner(&train);
        test.accuracy_of(&h)
    })
}

/// Finds (by doubling search) the smallest training-set size at which
/// `learner` reaches `target_accuracy`, up to `max_size`. Returns
/// `None` if the budget is insufficient.
pub fn crps_to_accuracy<F, L, H, R>(
    target: &F,
    target_accuracy: f64,
    start_size: usize,
    max_size: usize,
    test_size: usize,
    learner: L,
    rng: &mut R,
) -> Option<usize>
where
    F: BooleanFunction + ?Sized,
    L: Fn(&LabeledSet) -> H,
    H: BooleanFunction,
    R: Rng + ?Sized,
{
    assert!(start_size > 0 && start_size <= max_size);
    assert!((0.5..=1.0).contains(&target_accuracy));
    let test = LabeledSet::sample(target, test_size, rng);
    let mut m = start_size;
    loop {
        let train = LabeledSet::sample(target, m, rng);
        let h = learner(&train);
        if test.accuracy_of(&h) >= target_accuracy {
            return Some(m);
        }
        if m >= max_size {
            return None;
        }
        m = (m * 2).min(max_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perceptron::Perceptron;
    use mlam_boolean::{BitVec, FnFunction, LinearThreshold};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn curve_improves_with_data_for_ltf() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = LinearThreshold::random(16, &mut rng);
        let curve = learning_curve(
            &target,
            &[50, 200, 2000],
            2000,
            |train| Perceptron::new(60).train(train).model,
            &mut rng,
        );
        assert_eq!(curve.len(), 3);
        assert!(curve[2].test_accuracy > curve[0].test_accuracy, "{curve:?}");
        assert!(curve[2].test_accuracy > 0.9);
    }

    #[test]
    fn crps_to_accuracy_finds_a_budget_for_easy_targets() {
        let mut rng = StdRng::seed_from_u64(2);
        let target = LinearThreshold::random(12, &mut rng);
        let m = crps_to_accuracy(
            &target,
            0.9,
            25,
            10_000,
            2000,
            |train| Perceptron::new(60).train(train).model,
            &mut rng,
        );
        assert!(m.is_some());
        assert!(m.expect("found") <= 10_000);
    }

    #[test]
    fn k_fold_is_deterministic_and_sane_for_ltf() {
        let mut rng = StdRng::seed_from_u64(7);
        let target = LinearThreshold::random(14, &mut rng);
        let data = LabeledSet::sample(&target, 2000, &mut rng);
        let learner = |train: &LabeledSet| Perceptron::new(40).train(train).model;
        let a = k_fold_accuracy(&data, 5, learner);
        let b = k_fold_accuracy(&data, 5, learner);
        assert_eq!(a, b, "k-fold must be deterministic");
        assert_eq!(a.len(), 5);
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!(mean > 0.8, "folds: {a:?}");
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn k_fold_rejects_single_fold() {
        let data = LabeledSet::sample(
            &LinearThreshold::random(4, &mut StdRng::seed_from_u64(1)),
            10,
            &mut StdRng::seed_from_u64(2),
        );
        let _ = k_fold_accuracy(&data, 1, |train: &LabeledSet| {
            Perceptron::new(1).train(train).model
        });
    }

    #[test]
    fn crps_to_accuracy_gives_up_on_parity() {
        let mut rng = StdRng::seed_from_u64(3);
        let target = FnFunction::new(14, |x: &BitVec| x.count_ones() % 2 == 1);
        let m = crps_to_accuracy(
            &target,
            0.9,
            100,
            2000,
            1500,
            |train| Perceptron::new(20).train(train).model,
            &mut rng,
        );
        assert_eq!(m, None, "an LTF learner cannot reach 90 % on parity");
    }
}
