//! Chow-parameter LTF reconstruction — the paper's Table II procedure.
//!
//! Section V-A.1: *if* BR PUFs were (close to) LTFs, then by the
//! Chow-parameters theorem of De–Diakonikolas–Feldman–Servedio \[25\] an
//! LTF `f′` built from approximated Chow parameters would approximate
//! the device arbitrarily well. The paper constructs `f′` from CRPs,
//! relabels the challenges with `f′`, trains a Perceptron on the result
//! and measures accuracy against the device — the plateau in Table II
//! falsifies the LTF hypothesis.
//!
//! [`ChowReconstruction`] implements the construction of `f′` (Chow
//! estimates, plus an optional boosting-style reweighting refinement in
//! the spirit of \[25\]), and [`table_ii_procedure`] packages the paper's
//! full experiment step.

use crate::dataset::LabeledSet;
use crate::perceptron::{Perceptron, PerceptronOutcome};
use mlam_boolean::ltf::{ChowParameters, LinearThreshold};
use mlam_boolean::{BitVec, BooleanFunction};

/// Configuration for Chow-parameter LTF reconstruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChowConfig {
    /// Rounds of multiplicative reweighting refinement (0 = plain Chow).
    pub refine_rounds: usize,
    /// Step size of the refinement.
    pub refine_step: f64,
}

impl Default for ChowConfig {
    fn default() -> Self {
        ChowConfig {
            refine_rounds: 8,
            refine_step: 0.5,
        }
    }
}

/// Chow-parameter LTF reconstruction from labeled examples.
#[derive(Clone, Debug, Default)]
pub struct ChowReconstruction {
    config: ChowConfig,
}

impl ChowReconstruction {
    /// Creates a reconstructor.
    pub fn new(config: ChowConfig) -> Self {
        ChowReconstruction { config }
    }

    /// Builds the surrogate LTF `f′` from a labeled sample.
    ///
    /// Starts from the raw Chow vector (`weights = f̂({i})`,
    /// `θ = −f̂(∅)`) and then runs a few rounds of the
    /// reweighting scheme of \[25\] (adjust weights toward the
    /// chow-parameter mismatch of the current candidate), which provably
    /// converges to an ε-close LTF when the source *is* an LTF.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn reconstruct(&self, data: &LabeledSet) -> LinearThreshold {
        assert!(!data.is_empty(), "cannot reconstruct from an empty sample");
        let n = data.num_inputs();
        let target_chow = ChowParameters::from_data(n, data.pairs());
        let mut weights = target_chow.degree_one.clone();
        let mut theta = -target_chow.constant;

        for round in 0..self.config.refine_rounds {
            let candidate = LinearThreshold::new(weights.clone(), theta);
            // Chow parameters of the candidate over the same sample's
            // challenges (self-labelled).
            let relabeled: Vec<(BitVec, bool)> = data
                .pairs()
                .iter()
                .map(|(x, _)| (x.clone(), candidate.eval(x)))
                .collect();
            let cand_chow = ChowParameters::from_data(n, &relabeled);
            // Move the parameters toward the target's Chow vector.
            let mut max_gap = 0.0f64;
            for (i, w) in weights.iter_mut().enumerate() {
                let gap = target_chow.degree_one[i] - cand_chow.degree_one[i];
                *w += self.config.refine_step * gap;
                max_gap = max_gap.max(gap.abs());
            }
            let gap0 = target_chow.constant - cand_chow.constant;
            theta -= self.config.refine_step * gap0;
            // Learning-curve checkpoint at log-spaced refinement
            // rounds: accuracy of the just-updated surrogate against
            // the device labels (recording runs only).
            if mlam_telemetry::curves::recording()
                && mlam_telemetry::curves::should_checkpoint(
                    round as u64 + 1,
                    self.config.refine_rounds as u64,
                )
            {
                let refined = LinearThreshold::new(weights.clone(), theta);
                mlam_telemetry::curves::checkpoint(
                    "chow",
                    round as u64 + 1,
                    data.accuracy_of(&refined),
                    None,
                );
            }
            if max_gap.max(gap0.abs()) < 1e-3 {
                break;
            }
        }
        LinearThreshold::new(weights, theta)
    }
}

/// Result of the Table II procedure for one `(n, #CRP)` cell.
#[derive(Clone, Debug)]
pub struct TableIiCell {
    /// The surrogate LTF `f′` built from the Chow parameters.
    pub surrogate: LinearThreshold,
    /// Perceptron outcome on the `f′`-relabeled training set.
    pub perceptron: PerceptronOutcome<crate::features::PlusMinusFeatures>,
    /// Accuracy of the trained model on the held-out *device* CRPs —
    /// the number reported in Table II.
    pub test_accuracy: f64,
}

/// Runs one cell of the paper's Table II experiment:
///
/// 1. approximate the Chow parameters from `train` (device CRPs),
/// 2. construct `f′`,
/// 3. relabel the training challenges with `f′`,
/// 4. train a Perceptron on the relabeled set,
/// 5. evaluate on the held-out device CRPs `test`.
///
/// If the device were an LTF, step 5 would approach 100 % as the CRP
/// budget grows; a plateau is the paper's evidence of representation
/// mismatch.
///
/// # Panics
///
/// Panics if either set is empty or arities differ.
pub fn table_ii_procedure(
    train: &LabeledSet,
    test: &LabeledSet,
    config: ChowConfig,
    perceptron_epochs: usize,
) -> TableIiCell {
    assert_eq!(train.num_inputs(), test.num_inputs(), "arity mismatch");
    assert!(!test.is_empty(), "empty test set");
    let surrogate = ChowReconstruction::new(config).reconstruct(train);
    let relabeled = train.relabeled_by(&surrogate);
    let perceptron = Perceptron::new(perceptron_epochs).train(&relabeled);
    let test_accuracy = test.accuracy_of(&perceptron.model);
    TableIiCell {
        surrogate,
        perceptron,
        test_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_boolean::FnFunction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reconstructs_a_genuine_ltf_to_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = LinearThreshold::random(16, &mut rng);
        let train = LabeledSet::sample(&target, 5000, &mut rng);
        let test = LabeledSet::sample(&target, 3000, &mut rng);
        let f_prime = ChowReconstruction::default().reconstruct(&train);
        let acc = test.accuracy_of(&f_prime);
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn refinement_improves_over_raw_chow() {
        let mut rng = StdRng::seed_from_u64(2);
        // Biased LTF: raw Chow is a coarse fit, refinement helps.
        let target = LinearThreshold::new(
            (0..16).map(|i| if i == 0 { 4.0 } else { 0.3 }).collect(),
            1.5,
        );
        let train = LabeledSet::sample(&target, 6000, &mut rng);
        let test = LabeledSet::sample(&target, 3000, &mut rng);
        let raw = ChowReconstruction::new(ChowConfig {
            refine_rounds: 0,
            ..Default::default()
        })
        .reconstruct(&train);
        let refined = ChowReconstruction::default().reconstruct(&train);
        let raw_acc = test.accuracy_of(&raw);
        let refined_acc = test.accuracy_of(&refined);
        assert!(
            refined_acc >= raw_acc - 0.01,
            "refined {refined_acc} vs raw {raw_acc}"
        );
        assert!(refined_acc > 0.9);
    }

    #[test]
    fn table_ii_cell_on_ltf_reaches_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(3);
        let target = LinearThreshold::random(16, &mut rng);
        let train = LabeledSet::sample(&target, 4000, &mut rng);
        let test = LabeledSet::sample(&target, 3000, &mut rng);
        let cell = table_ii_procedure(&train, &test, ChowConfig::default(), 60);
        assert!(cell.test_accuracy > 0.9, "{}", cell.test_accuracy);
    }

    #[test]
    fn table_ii_cell_on_parity_plateaus_at_chance() {
        let mut rng = StdRng::seed_from_u64(4);
        let target = FnFunction::new(12, |x: &BitVec| x.count_ones() % 2 == 1);
        let small = LabeledSet::sample(&target, 1000, &mut rng);
        let large = LabeledSet::sample(&target, 8000, &mut rng);
        let test = LabeledSet::sample(&target, 4000, &mut rng);
        let acc_small = table_ii_procedure(&small, &test, ChowConfig::default(), 30).test_accuracy;
        let acc_large = table_ii_procedure(&large, &test, ChowConfig::default(), 30).test_accuracy;
        // More CRPs do NOT unlock parity for an LTF surrogate.
        assert!(
            acc_small < 0.6 && acc_large < 0.6,
            "{acc_small} {acc_large}"
        );
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        ChowReconstruction::default().reconstruct(&LabeledSet::new(4));
    }
}
