//! Cached feature matrices — the learning-side half of the batched hot
//! path.
//!
//! Every iterative learner in this crate walks the same `m × d` feature
//! matrix many times (epochs, boosting rounds, CMA-ES population
//! members, k-fold splits). Before this module each walk either
//! re-derived features from the challenges or chased `Vec<Vec<f64>>`
//! pointers; a [`FeatureMatrix`] computes the features **once** per
//! `(LabeledSet, FeatureMap)` pair and stores them struct-of-arrays:
//!
//! * **Packed signs** — when the map is
//!   [sign-valued](crate::features::FeatureMap::is_sign_valued) (all
//!   three built-in maps are), each feature is one *bit* (set ⇔ the
//!   feature is `−1.0`), so a row of 65 Φ features costs 16 bytes
//!   instead of 520 and whole training sets fit in cache.
//! * **Dense values** — any other map falls back to a contiguous
//!   row-major `Vec<f64>`.
//!
//! Every kernel reproduces the scalar reduction **bit for bit**: a
//! sign-valued feature `f ∈ {+1, −1}` turns `w·f` into an IEEE-exact
//! sign-bit flip of `w`, and each kernel accumulates in the same index
//! order as the scalar `zip`-fold it replaces, so trained weights,
//! mistake counts, and accuracies are unchanged — the determinism
//! contract of `mlam-par` extends through the learners.

use crate::dataset::LabeledSet;
use crate::features::FeatureMap;
use mlam_boolean::to_pm;

/// Flips the sign of `w` when `bit` is 1 — the IEEE-exact equivalent of
/// `w * (if bit == 1 { -1.0 } else { 1.0 })`.
#[inline(always)]
fn sign_select(w: f64, bit: u64) -> f64 {
    f64::from_bits(w.to_bits() ^ (bit << 63))
}

/// Row-major feature storage: packed sign bits or dense values.
#[derive(Clone, Debug)]
enum Storage {
    /// One bit per feature, set ⇔ the feature is `−1.0`; each row is
    /// `words_per_row` consecutive `u64`s.
    Signs {
        words_per_row: usize,
        words: Vec<u64>,
    },
    /// Row-major `f64` values for maps that are not sign-valued.
    Dense { values: Vec<f64> },
}

/// A feature matrix cached once per `(LabeledSet, FeatureMap)` pair,
/// shared across training epochs, boosting rounds, and CMA-ES
/// population scoring.
///
/// # Example
///
/// ```
/// use mlam_boolean::LinearThreshold;
/// use mlam_learn::dataset::LabeledSet;
/// use mlam_learn::feature_matrix::FeatureMatrix;
/// use mlam_learn::features::PlusMinusFeatures;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let target = LinearThreshold::random(8, &mut rng);
/// let data = LabeledSet::sample(&target, 100, &mut rng);
/// let fm = FeatureMatrix::build(&PlusMinusFeatures::new(8), &data);
/// assert_eq!(fm.examples(), 100);
/// assert_eq!(fm.dimension(), 9);
/// let w = vec![0.25; fm.dimension()];
/// let _score = fm.dot(0, &w);
/// ```
#[derive(Clone, Debug)]
pub struct FeatureMatrix {
    examples: usize,
    dim: usize,
    /// ±1 labels, `to_pm` encoding (logic 1 ⇔ −1.0).
    labels: Vec<f64>,
    storage: Storage,
}

impl FeatureMatrix {
    /// Computes the features of every example in `data` under `map`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or the map's arity differs from the
    /// data's.
    pub fn build<M: FeatureMap + ?Sized>(map: &M, data: &LabeledSet) -> Self {
        assert!(!data.is_empty(), "cannot build from an empty set");
        assert_eq!(map.num_inputs(), data.num_inputs(), "feature map arity");
        let m = data.len();
        let d = map.dimension();
        let labels: Vec<f64> = data.pairs().iter().map(|(_, y)| to_pm(*y)).collect();
        let mut buf = Vec::with_capacity(d);
        let storage = if map.is_sign_valued() {
            let words_per_row = d.div_ceil(64);
            let mut words = vec![0u64; m * words_per_row];
            for (row, (x, _)) in data.pairs().iter().enumerate() {
                map.features_into(x, &mut buf);
                let base = row * words_per_row;
                for (j, &v) in buf.iter().enumerate() {
                    debug_assert!(v == 1.0 || v == -1.0, "sign-valued map produced {v}");
                    words[base + j / 64] |= (v.to_bits() >> 63) << (j % 64);
                }
            }
            Storage::Signs {
                words_per_row,
                words,
            }
        } else {
            let mut values = Vec::with_capacity(m * d);
            for (x, _) in data.pairs() {
                map.features_into(x, &mut buf);
                values.extend_from_slice(&buf);
            }
            Storage::Dense { values }
        };
        FeatureMatrix {
            examples: m,
            dim: d,
            labels,
            storage,
        }
    }

    /// Number of examples (rows).
    pub fn examples(&self) -> usize {
        self.examples
    }

    /// Feature dimension (columns).
    pub fn dimension(&self) -> usize {
        self.dim
    }

    /// Whether the rows are stored as packed sign bits.
    pub fn is_packed(&self) -> bool {
        matches!(self.storage, Storage::Signs { .. })
    }

    /// The ±1 labels in example order.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// The ±1 label of example `row`.
    #[inline]
    pub fn label(&self, row: usize) -> f64 {
        self.labels[row]
    }

    /// The dot product `w · φ(x_row)`, bit-identical to the scalar
    /// `features.iter().zip(w).map(|(f, w)| f * w).sum()`.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != self.dimension()` or `row` is out of range.
    #[inline]
    pub fn dot(&self, row: usize, w: &[f64]) -> f64 {
        assert_eq!(w.len(), self.dim, "weight dimension mismatch");
        match &self.storage {
            Storage::Signs {
                words_per_row,
                words,
            } => {
                let signs = &words[row * words_per_row..(row + 1) * words_per_row];
                let mut s = 0.0f64;
                for (j, &wj) in w.iter().enumerate() {
                    s += sign_select(wj, (signs[j / 64] >> (j % 64)) & 1);
                }
                s
            }
            Storage::Dense { values } => {
                let f = &values[row * self.dim..(row + 1) * self.dim];
                let mut s = 0.0f64;
                for (&fj, &wj) in f.iter().zip(w) {
                    s += fj * wj;
                }
                s
            }
        }
    }

    /// The Perceptron update `w[j] += t * φ(x_row)[j]`, bit-identical to
    /// the scalar loop.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != self.dimension()` or `row` is out of range.
    #[inline]
    pub fn add_signed(&self, row: usize, t: f64, w: &mut [f64]) {
        assert_eq!(w.len(), self.dim, "weight dimension mismatch");
        match &self.storage {
            Storage::Signs {
                words_per_row,
                words,
            } => {
                let signs = &words[row * words_per_row..(row + 1) * words_per_row];
                for (j, wj) in w.iter_mut().enumerate() {
                    *wj += sign_select(t, (signs[j / 64] >> (j % 64)) & 1);
                }
            }
            Storage::Dense { values } => {
                let f = &values[row * self.dim..(row + 1) * self.dim];
                for (wj, &fj) in w.iter_mut().zip(f) {
                    *wj += t * fj;
                }
            }
        }
    }

    /// The logistic-gradient update `g[j] -= t * φ(x_row)[j] * sigma`,
    /// bit-identical to the scalar loop (for a sign-valued feature the
    /// scalar product `(t * ±1) * sigma` is exactly `±(t * sigma)`).
    ///
    /// # Panics
    ///
    /// Panics if `g.len() != self.dimension()` or `row` is out of range.
    #[inline]
    pub fn grad_sub(&self, row: usize, t: f64, sigma: f64, g: &mut [f64]) {
        assert_eq!(g.len(), self.dim, "gradient dimension mismatch");
        match &self.storage {
            Storage::Signs {
                words_per_row,
                words,
            } => {
                let signs = &words[row * words_per_row..(row + 1) * words_per_row];
                let c = t * sigma;
                for (j, gj) in g.iter_mut().enumerate() {
                    *gj -= sign_select(c, (signs[j / 64] >> (j % 64)) & 1);
                }
            }
            Storage::Dense { values } => {
                let f = &values[row * self.dim..(row + 1) * self.dim];
                for (gj, &fj) in g.iter_mut().zip(f) {
                    *gj -= t * fj * sigma;
                }
            }
        }
    }

    /// Number of examples `w` misclassifies (`score · label ≤ 0`), the
    /// Perceptron's pocket criterion.
    pub fn error_count(&self, w: &[f64]) -> usize {
        (0..self.examples)
            .filter(|&row| self.dot(row, w) * self.labels[row] <= 0.0)
            .count()
    }
}

/// Packs a sequence of sign bits (`true` ⇔ the value is `−1.0`) into
/// little-endian 64-bit words — the layout [`FeatureMatrix`] and the
/// boosting round cache share.
pub fn pack_sign_bits(bits: impl Iterator<Item = bool>) -> Vec<u64> {
    let mut words = Vec::new();
    for (i, b) in bits.enumerate() {
        if i % 64 == 0 {
            words.push(0u64);
        }
        if b {
            *words.last_mut().expect("pushed above") |= 1u64 << (i % 64);
        }
    }
    words
}

/// Calls `f(index)` for every set bit in `words[..]`, restricted to the
/// first `len` bits, in ascending index order — so reductions over the
/// selected examples keep the scalar accumulation order.
pub fn for_each_set_bit(words: &[u64], len: usize, mut f: impl FnMut(usize)) {
    for (g, &word) in words.iter().enumerate() {
        let base = g * 64;
        let mut w = if base + 64 <= len {
            word
        } else if base >= len {
            0
        } else {
            word & ((1u64 << (len - base)) - 1)
        };
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            f(base + bit);
            w &= w - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{ArbiterPhiFeatures, LowDegreeFeatures, PlusMinusFeatures};
    use mlam_boolean::{BitVec, LinearThreshold};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A deliberately non-sign-valued map to exercise the dense path.
    struct ScaledBits {
        n: usize,
    }

    impl FeatureMap for ScaledBits {
        fn num_inputs(&self) -> usize {
            self.n
        }
        fn dimension(&self) -> usize {
            self.n + 1
        }
        fn features(&self, x: &BitVec) -> Vec<f64> {
            let mut v: Vec<f64> = (0..self.n).map(|i| 0.5 * x.pm(i)).collect();
            v.push(0.25);
            v
        }
    }

    fn sample_set(n: usize, m: usize, seed: u64) -> LabeledSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = LinearThreshold::random(n, &mut rng);
        LabeledSet::sample(&target, m, &mut rng)
    }

    fn random_weights(d: usize, rng: &mut StdRng) -> Vec<f64> {
        (0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    #[test]
    fn packed_dot_is_bit_identical_to_scalar() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [5usize, 13, 63, 64] {
            let data = sample_set(n.min(40), 80, n as u64);
            let n = data.num_inputs();
            let maps: Vec<Box<dyn FeatureMap>> = vec![
                Box::new(PlusMinusFeatures::new(n)),
                Box::new(ArbiterPhiFeatures::new(n)),
                Box::new(LowDegreeFeatures::new(n, 2)),
            ];
            for map in &maps {
                let fm = FeatureMatrix::build(map.as_ref(), &data);
                assert!(fm.is_packed());
                let w = random_weights(fm.dimension(), &mut rng);
                for (row, (x, y)) in data.pairs().iter().enumerate() {
                    let scalar: f64 = map.features(x).iter().zip(&w).map(|(f, w)| f * w).sum();
                    assert_eq!(fm.dot(row, &w).to_bits(), scalar.to_bits(), "row {row}");
                    assert_eq!(fm.label(row), to_pm(*y));
                }
            }
        }
    }

    #[test]
    fn dense_fallback_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = sample_set(10, 60, 3);
        let map = ScaledBits { n: 10 };
        let fm = FeatureMatrix::build(&map, &data);
        assert!(!fm.is_packed());
        let w = random_weights(fm.dimension(), &mut rng);
        for (row, (x, _)) in data.pairs().iter().enumerate() {
            let scalar: f64 = map.features(x).iter().zip(&w).map(|(f, w)| f * w).sum();
            assert_eq!(fm.dot(row, &w).to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn add_signed_matches_scalar_update() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = sample_set(17, 50, 4);
        let map = ArbiterPhiFeatures::new(17);
        let fm = FeatureMatrix::build(&map, &data);
        let mut w_fast = random_weights(fm.dimension(), &mut rng);
        let mut w_ref = w_fast.clone();
        for (row, (x, y)) in data.pairs().iter().enumerate() {
            let t = to_pm(*y);
            fm.add_signed(row, t, &mut w_fast);
            for (wi, fi) in w_ref.iter_mut().zip(map.features(x)) {
                *wi += t * fi;
            }
        }
        for (a, b) in w_fast.iter().zip(&w_ref) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn grad_sub_matches_scalar_update() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = sample_set(9, 40, 5);
        let map = PlusMinusFeatures::new(9);
        let fm = FeatureMatrix::build(&map, &data);
        let mut g_fast = vec![0.0; fm.dimension()];
        let mut g_ref = g_fast.clone();
        for (row, (x, y)) in data.pairs().iter().enumerate() {
            let t = to_pm(*y);
            let sigma: f64 = rng.gen_range(0.0..1.0);
            fm.grad_sub(row, t, sigma, &mut g_fast);
            for (gi, fi) in g_ref.iter_mut().zip(map.features(x)) {
                *gi -= t * fi * sigma;
            }
        }
        for (a, b) in g_fast.iter().zip(&g_ref) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn error_count_matches_scalar_filter() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = sample_set(12, 70, 6);
        let map = PlusMinusFeatures::new(12);
        let fm = FeatureMatrix::build(&map, &data);
        let w = random_weights(fm.dimension(), &mut rng);
        let scalar = data
            .pairs()
            .iter()
            .filter(|(x, y)| {
                let s: f64 = map.features(x).iter().zip(&w).map(|(f, w)| f * w).sum();
                s * to_pm(*y) <= 0.0
            })
            .count();
        assert_eq!(fm.error_count(&w), scalar);
    }

    #[test]
    fn pack_and_iterate_round_trip() {
        let mut rng = StdRng::seed_from_u64(6);
        for len in [0usize, 1, 63, 64, 65, 130] {
            let bits: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.4)).collect();
            let words = pack_sign_bits(bits.iter().copied());
            assert_eq!(words.len(), len.div_ceil(64));
            let mut seen = Vec::new();
            for_each_set_bit(&words, len, |i| seen.push(i));
            let expected: Vec<usize> = (0..len).filter(|&i| bits[i]).collect();
            assert_eq!(seen, expected, "len {len}");
        }
    }

    #[test]
    fn for_each_set_bit_respects_len_cap() {
        // All-ones words, but only the first 70 bits are in range.
        let words = vec![u64::MAX, u64::MAX];
        let mut count = 0usize;
        for_each_set_bit(&words, 70, |_| count += 1);
        assert_eq!(count, 70);
    }
}
