//! Exact learning of low-degree sparse F₂ polynomials with membership
//! queries — the algorithmic substance of the paper's Corollary 2.
//!
//! The paper's argument: an Arbiter PUF (an LTF of low noise
//! sensitivity) is close to a small junta (Bourgain), every `r`-junta is
//! an `r`-XT (XOR of terms of size ≤ r), so a `k`-XOR of Arbiter PUFs is
//! a sparse multivariate polynomial of low degree over F₂ — and such
//! polynomials are exactly learnable in polynomial time *when membership
//! queries are available* (Schapire–Sellie \[21\]).
//!
//! [`learn_low_degree_anf`] implements the core primitive: Möbius
//! interpolation over the weight-≤r subcube. The coefficient of monomial
//! `S` in the ANF is `⊕_{T ⊆ S} f(1_T)`, so querying `f` on all inputs
//! of Hamming weight ≤ r (that is `Σ_{j≤r} C(n,j)` = poly(n) membership
//! queries for constant r) determines every coefficient of degree ≤ r.
//! [`learn_anf_adaptive`] wraps it in a Schapire–Sellie-style loop that
//! raises the degree until a (simulated) equivalence query accepts.

use crate::oracle::{simulate_equivalence, EquivalenceResult, ExampleOracle, MembershipOracle};
use mlam_boolean::{Anf, BitVec, SubsetsUpTo};
use rand::Rng;
use std::collections::HashMap;

/// Outcome of an F₂ interpolation run.
#[derive(Clone, Debug)]
pub struct F2PolyOutcome {
    /// The learned polynomial.
    pub hypothesis: Anf,
    /// Membership queries consumed.
    pub membership_queries: usize,
    /// The degree interpolated up to.
    pub degree: usize,
}

/// Learns the degree-≤`r` part of the target's ANF exactly, using
/// `Σ_{j≤r} C(n,j)` membership queries.
///
/// If the target has algebraic degree ≤ `r`, the returned polynomial is
/// **exactly** the target — this is the "uniform PAC + membership ⇒
/// exact learning" conversion the paper stresses in Section IV-A.
///
/// # Panics
///
/// Panics if `n > 63` or the query count would exceed 10⁷.
///
/// # Example
///
/// ```
/// use mlam_boolean::{Anf, BitVec, BooleanFunction, FnFunction};
/// use mlam_learn::f2poly::learn_low_degree_anf;
/// use mlam_learn::FunctionOracle;
///
/// // f = x0·x1 ⊕ x2 (degree 2).
/// let f = FnFunction::new(8, |x: &BitVec| (x.get(0) & x.get(1)) ^ x.get(2));
/// let oracle = FunctionOracle::uniform(&f);
/// let out = learn_low_degree_anf(&oracle, 2);
/// assert_eq!(out.hypothesis, Anf::from_monomials(8, [0b011, 0b100]));
/// ```
pub fn learn_low_degree_anf<O: MembershipOracle>(oracle: &O, r: usize) -> F2PolyOutcome {
    let n = oracle.num_inputs();
    assert!(n <= 63, "F2 interpolation limited to n <= 63");
    let query_count = SubsetsUpTo::count_total(n, r);
    assert!(
        query_count <= 10_000_000,
        "degree {r} over n={n} needs {query_count} membership queries"
    );

    // Query f at every input of Hamming weight <= r.
    let mut values: HashMap<u64, bool> = HashMap::with_capacity(query_count as usize);
    let mut membership_queries = 0usize;
    for mask in SubsetsUpTo::new(n, r) {
        let x = BitVec::from_u64(mask, n);
        values.insert(mask, oracle.query(&x));
        membership_queries += 1;
    }

    // Möbius inversion in increasing mask-size order:
    // a_S = f(1_S) ⊕ ⊕_{T ⊊ S} a_T, accumulated bottom-up.
    let mut coeffs: HashMap<u64, bool> = HashMap::with_capacity(values.len());
    let mut monomials = Vec::new();
    for mask in SubsetsUpTo::new(n, r) {
        let mut a = values[&mask];
        // XOR of all strictly-smaller subset coefficients.
        let mut sub = (mask.wrapping_sub(1)) & mask;
        if mask != 0 {
            loop {
                if coeffs.get(&sub).copied().unwrap_or(false) {
                    a = !a;
                }
                if sub == 0 {
                    break;
                }
                sub = (sub.wrapping_sub(1)) & mask;
            }
        }
        coeffs.insert(mask, a);
        if a {
            monomials.push(mask);
        }
    }

    F2PolyOutcome {
        hypothesis: Anf::from_monomials(n, monomials),
        membership_queries,
        degree: r,
    }
}

/// Outcome of the adaptive (Schapire–Sellie-style) learner.
#[derive(Clone, Debug)]
pub struct AdaptiveF2Outcome {
    /// The accepted hypothesis.
    pub hypothesis: Anf,
    /// Membership queries consumed (all rounds).
    pub membership_queries: usize,
    /// Equivalence queries issued (simulated from random examples).
    pub equivalence_queries: usize,
    /// Whether the final equivalence simulation accepted.
    pub accepted: bool,
    /// The final interpolation degree.
    pub degree: usize,
}

/// Adaptive exact learner: interpolates at degree `r = 1, 2, …,
/// max_degree`, after each round issuing a simulated equivalence query
/// (Angluin's conversion from random examples). Stops at the first
/// accepted hypothesis.
///
/// For a target of true degree `r*`, the learner halts at `r = r*` with
/// the *exact* ANF, using `poly(n)` membership queries — Corollary 2's
/// claim, executable.
pub fn learn_anf_adaptive<O, R>(
    oracle: &O,
    max_degree: usize,
    eq_budget: usize,
    rng: &mut R,
) -> AdaptiveF2Outcome
where
    O: MembershipOracle + ExampleOracle,
    R: Rng + ?Sized,
{
    let mut membership_queries = 0usize;
    let mut equivalence_queries = 0usize;
    let mut last = F2PolyOutcome {
        hypothesis: Anf::zero(MembershipOracle::num_inputs(oracle)),
        membership_queries: 0,
        degree: 0,
    };
    for r in 0..=max_degree {
        last = learn_low_degree_anf(oracle, r);
        membership_queries += last.membership_queries;
        equivalence_queries += 1;
        match simulate_equivalence(oracle, &last.hypothesis, eq_budget, rng) {
            EquivalenceResult::Equivalent => {
                return AdaptiveF2Outcome {
                    hypothesis: last.hypothesis,
                    membership_queries,
                    equivalence_queries,
                    accepted: true,
                    degree: r,
                };
            }
            EquivalenceResult::Counterexample(_) => continue,
        }
    }
    AdaptiveF2Outcome {
        hypothesis: last.hypothesis,
        membership_queries,
        equivalence_queries,
        accepted: false,
        degree: max_degree,
    }
}

/// Membership-query budget of the interpolation at degree `r`:
/// `Σ_{j≤r} C(n,j)`.
pub fn membership_budget(n: usize, r: usize) -> u128 {
    SubsetsUpTo::count_total(n, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FunctionOracle;
    use mlam_boolean::{BooleanFunction, FnFunction, TruthTable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interpolates_exact_degree_two_polynomial() {
        // f = 1 ⊕ x1 ⊕ x0x3
        let target = Anf::from_monomials(6, [0b000000, 0b000010, 0b001001]);
        let t2 = target.clone();
        let f = FnFunction::new(6, move |x: &BitVec| t2.eval(x));
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_low_degree_anf(&oracle, 2);
        assert_eq!(out.hypothesis, target);
        assert_eq!(out.membership_queries, 1 + 6 + 15);
    }

    #[test]
    fn interpolation_matches_truth_table_anf_for_full_degree() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = TruthTable::random(6, &mut rng);
        let expected = Anf::from_truth_table(&t);
        let oracle = FunctionOracle::uniform(&t);
        let out = learn_low_degree_anf(&oracle, 6);
        assert_eq!(out.hypothesis, expected);
    }

    #[test]
    fn adaptive_learner_stops_at_true_degree() {
        let mut rng = StdRng::seed_from_u64(2);
        // Degree-3 target on 10 variables.
        let target = Anf::from_monomials(10, [0b0000000111, 0b0000011000, 0b1000000000]);
        let t2 = target.clone();
        let f = FnFunction::new(10, move |x: &BitVec| t2.eval(x));
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_anf_adaptive(&oracle, 6, 300, &mut rng);
        assert!(out.accepted);
        assert_eq!(out.degree, 3);
        assert_eq!(out.hypothesis, target);
    }

    #[test]
    fn adaptive_learner_exact_on_xor_of_small_juntas() {
        // The Corollary 2 scenario in miniature: XOR of k=3 "junta
        // PUFs", each an AND of <= 2 variables.
        let mut rng = StdRng::seed_from_u64(3);
        let f = FnFunction::new(16, |x: &BitVec| {
            (x.get(0) & x.get(5)) ^ (x.get(7) & x.get(11)) ^ x.get(15)
        });
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_anf_adaptive(&oracle, 4, 400, &mut rng);
        assert!(out.accepted);
        assert_eq!(out.degree, 2);
        // Exact recovery: check on random points.
        for _ in 0..200 {
            let x = BitVec::random(16, &mut rng);
            assert_eq!(out.hypothesis.eval(&x), f.eval(&x));
        }
    }

    #[test]
    fn budget_is_polynomial_for_constant_degree() {
        assert_eq!(membership_budget(64, 0), 1);
        assert_eq!(membership_budget(64, 1), 65);
        assert_eq!(membership_budget(64, 2), 1 + 64 + (64 * 63) / 2);
        // Degree-2 over n=64 is ~2k queries, vs 2^64 total inputs.
        assert!(membership_budget(64, 2) < 3000);
    }

    #[test]
    fn zero_degree_learns_constants() {
        let f_true = FnFunction::new(8, |_: &BitVec| true);
        let oracle = FunctionOracle::uniform(&f_true);
        let out = learn_low_degree_anf(&oracle, 0);
        assert_eq!(out.hypothesis, Anf::one(8));
        let f_false = FnFunction::new(8, |_: &BitVec| false);
        let oracle = FunctionOracle::uniform(&f_false);
        let out = learn_low_degree_anf(&oracle, 0);
        assert!(out.hypothesis.is_zero());
    }

    #[test]
    fn parity_is_anf_degree_one() {
        // Parity looks maximally hard in the Fourier world but its ANF
        // degree is 1 — membership-query interpolation nails it
        // immediately. (Representation choice strikes again.)
        let mut rng = StdRng::seed_from_u64(5);
        let f = FnFunction::new(12, |x: &BitVec| x.count_ones() % 2 == 1);
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_anf_adaptive(&oracle, 3, 200, &mut rng);
        assert!(out.accepted);
        assert_eq!(out.degree, 1);
        assert_eq!(out.hypothesis.num_monomials(), 12);
    }

    #[test]
    fn high_degree_target_rejected_at_low_degree() {
        let mut rng = StdRng::seed_from_u64(4);
        // x0·x1·x2·x3·x4 ⊕ x5 has ANF degree 5; the degree-5 monomial
        // fires on 1/32 of inputs, so a 400-sample equivalence
        // simulation catches the mismatch with overwhelming probability.
        let f = FnFunction::new(12, |x: &BitVec| {
            (x.get(0) & x.get(1) & x.get(2) & x.get(3) & x.get(4)) ^ x.get(5)
        });
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_anf_adaptive(&oracle, 3, 400, &mut rng);
        assert!(
            !out.accepted,
            "degree-5 target must be rejected at degree <= 3"
        );
    }
}
