//! Labeled example sets.

use crate::oracle::ExampleOracle;
use mlam_boolean::{BitVec, BooleanFunction};
use rand::Rng;

/// A set of labeled examples `(x, y)` with `x ∈ {0,1}^n`, `y ∈ {0,1}`.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, FnFunction};
/// use mlam_learn::dataset::LabeledSet;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let target = FnFunction::new(6, |x: &BitVec| x.get(0));
/// let set = LabeledSet::sample(&target, 100, &mut rng);
/// assert_eq!(set.len(), 100);
/// assert_eq!(set.accuracy_of(&target), 1.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LabeledSet {
    n: usize,
    items: Vec<(BitVec, bool)>,
}

impl LabeledSet {
    /// Creates an empty set over `n`-bit inputs.
    pub fn new(n: usize) -> Self {
        LabeledSet {
            n,
            items: Vec::new(),
        }
    }

    /// Wraps existing labeled pairs.
    ///
    /// # Panics
    ///
    /// Panics if any input length differs from `n`.
    pub fn from_pairs(n: usize, items: Vec<(BitVec, bool)>) -> Self {
        for (x, _) in &items {
            assert_eq!(x.len(), n, "input length mismatch");
        }
        LabeledSet { n, items }
    }

    /// Samples `count` uniform random examples labeled by `f`.
    pub fn sample<F, R>(f: &F, count: usize, rng: &mut R) -> Self
    where
        F: BooleanFunction + ?Sized,
        R: Rng + ?Sized,
    {
        let n = f.num_inputs();
        let items = (0..count)
            .map(|_| {
                let x = BitVec::random(n, rng);
                let y = f.eval(&x);
                (x, y)
            })
            .collect();
        LabeledSet { n, items }
    }

    /// Samples `count` uniform random examples labeled by `f`, with the
    /// labeling fanned out across `MLAM_THREADS` worker threads.
    ///
    /// The challenges are drawn sequentially from `rng` — the stream is
    /// identical to [`LabeledSet::sample`] — and labeling a challenge is
    /// a pure function of `f`, so the returned set is bit-identical to
    /// the sequential one at any thread count.
    pub fn sample_par<F, R>(f: &F, count: usize, rng: &mut R) -> Self
    where
        F: BooleanFunction + Sync + ?Sized,
        R: Rng + ?Sized,
    {
        let n = f.num_inputs();
        let xs: Vec<BitVec> = (0..count).map(|_| BitVec::random(n, rng)).collect();
        let labels = mlam_par::par_map(&xs, |x| f.eval(x));
        LabeledSet {
            n,
            items: xs.into_iter().zip(labels).collect(),
        }
    }

    /// Draws `count` examples from an [`ExampleOracle`].
    pub fn from_oracle<O, R>(oracle: &O, count: usize, rng: &mut R) -> Self
    where
        O: ExampleOracle,
        R: Rng + ?Sized,
    {
        LabeledSet {
            n: oracle.num_inputs(),
            items: oracle.examples(count, rng),
        }
    }

    /// Input length.
    pub fn num_inputs(&self) -> usize {
        self.n
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The underlying pairs.
    pub fn pairs(&self) -> &[(BitVec, bool)] {
        &self.items
    }

    /// Appends an example.
    ///
    /// # Panics
    ///
    /// Panics if the input length differs from the set's.
    pub fn push(&mut self, x: BitVec, y: bool) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        self.items.push((x, y));
    }

    /// Fraction of examples a hypothesis labels correctly.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn accuracy_of<H: BooleanFunction + ?Sized>(&self, h: &H) -> f64 {
        assert!(!self.is_empty(), "accuracy over an empty set");
        let correct = self.items.iter().filter(|(x, y)| h.eval(x) == *y).count();
        correct as f64 / self.items.len() as f64
    }

    /// Fraction of examples a hypothesis labels correctly, with the
    /// evaluation sweep fanned out across `MLAM_THREADS` workers.
    ///
    /// Correct-count accumulation is integer arithmetic, so the result
    /// equals [`LabeledSet::accuracy_of`] exactly at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn accuracy_of_par<H: BooleanFunction + Sync + ?Sized>(&self, h: &H) -> f64 {
        assert!(!self.is_empty(), "accuracy over an empty set");
        let partials = mlam_par::par_chunk_map(
            &self.items,
            mlam_par::DEFAULT_CHUNK,
            |_, chunk: &[(BitVec, bool)]| chunk.iter().filter(|(x, y)| h.eval(x) == *y).count(),
        );
        partials.into_iter().sum::<usize>() as f64 / self.items.len() as f64
    }

    /// Relabels every example with a new function (used by Table II:
    /// CRP challenges relabeled by the Chow surrogate `f′`).
    pub fn relabeled_by<F: BooleanFunction + ?Sized>(&self, f: &F) -> LabeledSet {
        assert_eq!(f.num_inputs(), self.n, "arity mismatch");
        LabeledSet {
            n: self.n,
            items: self
                .items
                .iter()
                .map(|(x, _)| (x.clone(), f.eval(x)))
                .collect(),
        }
    }

    /// The first `count` examples as a new set.
    pub fn take(&self, count: usize) -> LabeledSet {
        LabeledSet {
            n: self.n,
            items: self.items.iter().take(count).cloned().collect(),
        }
    }

    /// Randomly splits into `(train, test)`.
    pub fn split<R: Rng + ?Sized>(
        &self,
        train_fraction: f64,
        rng: &mut R,
    ) -> (LabeledSet, LabeledSet) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let mut idx: Vec<usize> = (0..self.items.len()).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let cut = (self.items.len() as f64 * train_fraction).round() as usize;
        let train = idx[..cut].iter().map(|&i| self.items[i].clone()).collect();
        let test = idx[cut..].iter().map(|&i| self.items[i].clone()).collect();
        (
            LabeledSet {
                n: self.n,
                items: train,
            },
            LabeledSet {
                n: self.n,
                items: test,
            },
        )
    }

    /// Fraction of positive labels.
    pub fn positive_fraction(&self) -> f64 {
        if self.items.is_empty() {
            return 0.0;
        }
        self.items.iter().filter(|(_, y)| *y).count() as f64 / self.items.len() as f64
    }
}

impl Extend<(BitVec, bool)> for LabeledSet {
    fn extend<T: IntoIterator<Item = (BitVec, bool)>>(&mut self, iter: T) {
        for (x, y) in iter {
            self.push(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_boolean::FnFunction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_and_accuracy() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = FnFunction::new(8, |x: &BitVec| x.count_ones().is_multiple_of(2));
        let set = LabeledSet::sample(&f, 300, &mut rng);
        assert_eq!(set.accuracy_of(&f), 1.0);
        let g = FnFunction::new(8, |x: &BitVec| x.count_ones() % 2 == 1);
        assert_eq!(set.accuracy_of(&g), 0.0);
    }

    #[test]
    fn relabeled_by_changes_labels_not_inputs() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = FnFunction::new(4, |x: &BitVec| x.get(0));
        let g = FnFunction::new(4, |x: &BitVec| !x.get(0));
        let set = LabeledSet::sample(&f, 50, &mut rng);
        let relabeled = set.relabeled_by(&g);
        assert_eq!(relabeled.accuracy_of(&g), 1.0);
        assert_eq!(relabeled.accuracy_of(&f), 0.0);
        for ((a, _), (b, _)) in set.pairs().iter().zip(relabeled.pairs()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn split_sizes() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = FnFunction::new(4, |x: &BitVec| x.get(3));
        let set = LabeledSet::sample(&f, 100, &mut rng);
        let (tr, te) = set.split(0.8, &mut rng);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
    }

    #[test]
    fn take_and_push() {
        let mut set = LabeledSet::new(3);
        set.push(BitVec::zeros(3), true);
        set.push(BitVec::ones(3), false);
        assert_eq!(set.take(1).len(), 1);
        assert_eq!(set.positive_fraction(), 0.5);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn push_wrong_length_panics() {
        LabeledSet::new(3).push(BitVec::zeros(4), true);
    }

    #[test]
    fn sample_par_matches_sequential_sample() {
        // Same seed -> same challenge stream -> identical sets, whatever
        // MLAM_THREADS happens to be.
        let f = FnFunction::new(10, |x: &BitVec| x.count_ones() >= 5);
        let seq = LabeledSet::sample(&f, 500, &mut StdRng::seed_from_u64(9));
        let par = LabeledSet::sample_par(&f, 500, &mut StdRng::seed_from_u64(9));
        assert_eq!(seq, par);
    }

    #[test]
    fn accuracy_of_par_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(10);
        let f = FnFunction::new(8, |x: &BitVec| x.get(2));
        let g = FnFunction::new(8, |x: &BitVec| x.get(2) ^ x.get(5));
        let set = LabeledSet::sample(&f, 3000, &mut rng);
        assert_eq!(set.accuracy_of(&g), set.accuracy_of_par(&g));
        assert_eq!(set.accuracy_of_par(&f), 1.0);
    }
}
