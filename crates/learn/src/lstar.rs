//! Angluin's L* algorithm for learning DFAs from membership and
//! equivalence queries (Angluin \[22\]; paper, Sections IV and V-B).
//!
//! The learner maintains an observation table over access strings `S`
//! and experiments `E`, closes and... consistency-checks it, conjectures
//! a DFA, and refines on counterexamples. Against a sequential locking
//! scheme, the "teacher" is the locked FSM itself: membership = run the
//! device on an input word and observe the output, equivalence =
//! Angluin's random-sampling simulation.

use crate::automata::Dfa;
use std::collections::HashMap;

/// The teacher interface for L*: answers word-membership and
/// equivalence queries.
pub trait DfaTeacher {
    /// Alphabet size.
    fn alphabet_size(&self) -> usize;

    /// Whether the target accepts `word`.
    fn member(&mut self, word: &[usize]) -> bool;

    /// Either accepts the hypothesis or returns a counterexample word.
    fn equivalent(&mut self, hypothesis: &Dfa) -> Option<Vec<usize>>;
}

/// A teacher wrapping a known [`Dfa`] (useful for tests and for the
/// locking attacks, where the device FSM is available as a simulator
/// but treated as a black box). Equivalence is answered *exactly* via
/// the product construction, and queries are counted.
#[derive(Clone, Debug)]
pub struct ExactDfaTeacher {
    target: Dfa,
    /// Membership queries answered.
    pub membership_queries: usize,
    /// Equivalence queries answered.
    pub equivalence_queries: usize,
}

impl ExactDfaTeacher {
    /// Wraps a target DFA.
    pub fn new(target: Dfa) -> Self {
        ExactDfaTeacher {
            target,
            membership_queries: 0,
            equivalence_queries: 0,
        }
    }

    /// The wrapped target.
    pub fn target(&self) -> &Dfa {
        &self.target
    }
}

impl DfaTeacher for ExactDfaTeacher {
    fn alphabet_size(&self) -> usize {
        self.target.alphabet_size()
    }

    fn member(&mut self, word: &[usize]) -> bool {
        self.membership_queries += 1;
        self.target.accepts(word)
    }

    fn equivalent(&mut self, hypothesis: &Dfa) -> Option<Vec<usize>> {
        self.equivalence_queries += 1;
        self.target.shortest_disagreement(hypothesis)
    }
}

/// Outcome of an L* run.
#[derive(Clone, Debug)]
pub struct LstarOutcome {
    /// The learned DFA (minimal for the target language).
    pub dfa: Dfa,
    /// Equivalence queries used.
    pub equivalence_queries: usize,
    /// Counterexamples processed.
    pub counterexamples: usize,
}

/// Runs Angluin's L* against a teacher.
///
/// # Panics
///
/// Panics if the teacher's alphabet is empty or `max_rounds` is
/// exhausted before convergence (indicating a buggy/inconsistent
/// teacher).
///
/// # Example
///
/// ```
/// use mlam_learn::automata::Dfa;
/// use mlam_learn::lstar::{lstar_learn, ExactDfaTeacher};
///
/// // Target: odd number of 1s.
/// let target = Dfa::new(2, vec![vec![0, 1], vec![1, 0]], vec![false, true]);
/// let mut teacher = ExactDfaTeacher::new(target.clone());
/// let outcome = lstar_learn(&mut teacher, 100);
/// assert_eq!(outcome.dfa.shortest_disagreement(&target), None);
/// assert_eq!(outcome.dfa.num_states(), 2);
/// ```
pub fn lstar_learn<T: DfaTeacher>(teacher: &mut T, max_rounds: usize) -> LstarOutcome {
    let k = teacher.alphabet_size();
    assert!(k > 0, "alphabet must be non-empty");

    // Observation table: rows = access strings (S and S·Σ),
    // columns = experiments E; entry = membership of row·col.
    let mut s: Vec<Vec<usize>> = vec![Vec::new()];
    let mut e: Vec<Vec<usize>> = vec![Vec::new()];
    let mut table: HashMap<Vec<usize>, Vec<bool>> = HashMap::new();

    let mut equivalence_queries = 0usize;
    let mut counterexamples = 0usize;

    fn fill_row<T: DfaTeacher>(
        teacher: &mut T,
        table: &mut HashMap<Vec<usize>, Vec<bool>>,
        row: &[usize],
        e: &[Vec<usize>],
    ) {
        let entry = table.entry(row.to_vec()).or_default();
        while entry.len() < e.len() {
            let col = &e[entry.len()];
            let mut w = row.to_vec();
            w.extend_from_slice(col);
            let v = teacher.member(&w);
            mlam_telemetry::counter!("learn.lstar.membership_queries", 1);
            entry.push(v);
        }
    }

    for _round in 0..max_rounds {
        // Fill all rows for S and S·Σ.
        let mut all_rows: Vec<Vec<usize>> = Vec::new();
        for base in &s {
            all_rows.push(base.clone());
            for sym in 0..k {
                let mut w = base.clone();
                w.push(sym);
                all_rows.push(w);
            }
        }
        for row in &all_rows {
            fill_row(teacher, &mut table, row, &e);
        }

        // Closedness: every S·Σ row signature must appear among S rows.
        let s_sigs: Vec<Vec<bool>> = s.iter().map(|r| table[r].clone()).collect();
        let mut closed = true;
        'close: for base in &s.clone() {
            for sym in 0..k {
                let mut w = base.clone();
                w.push(sym);
                let sig = &table[&w];
                if !s_sigs.contains(sig) {
                    s.push(w);
                    closed = false;
                    break 'close;
                }
            }
        }
        if !closed {
            continue;
        }

        // Consistency: equal S-row signatures must stay equal after any
        // symbol; otherwise extend E with the separating experiment.
        let mut consistent = true;
        'cons: for i in 0..s.len() {
            for j in (i + 1)..s.len() {
                if table[&s[i]] != table[&s[j]] {
                    continue;
                }
                for sym in 0..k {
                    let mut wi = s[i].clone();
                    wi.push(sym);
                    let mut wj = s[j].clone();
                    wj.push(sym);
                    fill_row(teacher, &mut table, &wi, &e);
                    fill_row(teacher, &mut table, &wj, &e);
                    if table[&wi] != table[&wj] {
                        // Find the separating column.
                        let col_idx = table[&wi]
                            .iter()
                            .zip(&table[&wj])
                            .position(|(a, b)| a != b)
                            .expect("signatures differ");
                        let mut new_exp = vec![sym];
                        new_exp.extend_from_slice(&e[col_idx]);
                        e.push(new_exp);
                        consistent = false;
                        break 'cons;
                    }
                }
            }
        }
        if !consistent {
            continue;
        }

        // Conjecture a DFA: states = distinct S-row signatures.
        let mut sig_to_state: HashMap<Vec<bool>, usize> = HashMap::new();
        let mut reps: Vec<Vec<usize>> = Vec::new();
        // Ensure the empty string's signature gets state 0.
        let empty_sig = table[&Vec::new()].clone();
        sig_to_state.insert(empty_sig, 0);
        reps.push(Vec::new());
        for base in &s {
            let sig = table[base].clone();
            if let std::collections::hash_map::Entry::Vacant(e) = sig_to_state.entry(sig) {
                e.insert(reps.len());
                reps.push(base.clone());
            }
        }
        let mut transitions = vec![vec![0usize; k]; reps.len()];
        let mut accepting = vec![false; reps.len()];
        for (state, rep) in reps.iter().enumerate() {
            accepting[state] = table[rep][0]; // E[0] is the empty experiment
            #[allow(clippy::needless_range_loop)]
            for sym in 0..k {
                let mut w = rep.clone();
                w.push(sym);
                fill_row(teacher, &mut table, &w, &e);
                let sig = &table[&w];
                let target = *sig_to_state
                    .get(sig)
                    .expect("closed table: successor signature present");
                transitions[state][sym] = target;
            }
        }
        let hypothesis = Dfa::new(k, transitions, accepting);

        equivalence_queries += 1;
        mlam_telemetry::counter!("learn.lstar.equivalence_queries", 1);
        match teacher.equivalent(&hypothesis) {
            None => {
                return LstarOutcome {
                    dfa: hypothesis,
                    equivalence_queries,
                    counterexamples,
                };
            }
            Some(cex) => {
                counterexamples += 1;
                // Angluin: add all prefixes of the counterexample to S.
                for len in 1..=cex.len() {
                    let prefix = cex[..len].to_vec();
                    if !s.contains(&prefix) {
                        s.push(prefix);
                    }
                }
            }
        }
    }
    panic!("L* did not converge within {max_rounds} rounds");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn learn(target: Dfa) -> (LstarOutcome, ExactDfaTeacher) {
        let mut teacher = ExactDfaTeacher::new(target);
        let out = lstar_learn(&mut teacher, 200);
        (out, teacher)
    }

    #[test]
    fn learns_parity() {
        let target = Dfa::new(2, vec![vec![0, 1], vec![1, 0]], vec![false, true]);
        let (out, _) = learn(target.clone());
        assert_eq!(out.dfa.shortest_disagreement(&target), None);
        assert_eq!(out.dfa.num_states(), 2);
    }

    #[test]
    fn learns_mod3_counter() {
        // Accept words whose number of 1s is divisible by 3.
        let target = Dfa::new(
            2,
            vec![vec![0, 1], vec![1, 2], vec![2, 0]],
            vec![true, false, false],
        );
        let (out, teacher) = learn(target.clone());
        assert_eq!(out.dfa.shortest_disagreement(&target), None);
        assert_eq!(out.dfa.num_states(), 3);
        assert!(teacher.membership_queries > 0);
    }

    #[test]
    fn learns_pattern_matcher() {
        // Accept words containing the substring "101" (alphabet {0,1}).
        // States track the longest matched prefix: 0, "1", "10", done.
        let target = Dfa::new(
            2,
            vec![
                vec![0, 1], // saw nothing
                vec![2, 1], // saw "1"
                vec![0, 3], // saw "10"
                vec![3, 3], // matched
            ],
            vec![false, false, false, true],
        );
        let (out, _) = learn(target.clone());
        assert_eq!(out.dfa.shortest_disagreement(&target), None);
        assert_eq!(out.dfa.num_states(), 4);
    }

    #[test]
    fn learns_unlock_sequence_machine() {
        // The HARPOON-style scenario: the machine reaches the accepting
        // "functional" state only after the exact unlock word 2,0,1 over
        // a 3-symbol alphabet; any deviation traps it in a reset loop.
        //
        // states: 0=start, 1=saw 2, 2=saw 2,0, 3=unlocked(sink).
        let target = Dfa::new(
            3,
            vec![vec![0, 0, 1], vec![2, 0, 1], vec![0, 3, 1], vec![3, 3, 3]],
            vec![false, false, false, true],
        );
        let (out, teacher) = learn(target.clone());
        assert_eq!(out.dfa.shortest_disagreement(&target), None);
        assert!(out.dfa.accepts(&[2, 0, 1]));
        assert!(!out.dfa.accepts(&[2, 0, 0]));
        // Query complexity stays modest (polynomial in states).
        assert!(teacher.membership_queries < 2000);
    }

    #[test]
    fn learns_trivial_machines() {
        let all = Dfa::new(2, vec![vec![0, 0]], vec![true]);
        let (out, _) = learn(all.clone());
        assert_eq!(out.dfa.num_states(), 1);
        assert!(out.dfa.accepts(&[0, 1, 0]));

        let none = Dfa::new(2, vec![vec![0, 0]], vec![false]);
        let (out, _) = learn(none.clone());
        assert_eq!(out.dfa.num_states(), 1);
        assert!(!out.dfa.accepts(&[]));
    }

    #[test]
    fn learned_machine_is_minimal() {
        // Redundant 4-state encoding of parity: L* must output 2 states.
        let target = Dfa::new(
            2,
            vec![vec![2, 1], vec![3, 0], vec![0, 3], vec![1, 2]],
            vec![false, true, false, true],
        );
        let (out, _) = learn(target);
        assert_eq!(out.dfa.num_states(), 2);
    }
}
