//! The LMN low-degree algorithm (Linial–Mansour–Nisan \[16\]).
//!
//! The algorithm estimates every Fourier coefficient of degree ≤ `d`
//! from uniform random examples and outputs the sign of the truncated
//! expansion. It is
//!
//! - **uniform-distribution**: the estimates are expectations under the
//!   uniform measure (Section III of the paper),
//! - **improper**: the hypothesis is a sparse polynomial threshold, not
//!   a member of the target class (Section V-B),
//! - **noise-tolerant**: attribute noise merely attenuates the
//!   high-degree spectrum the algorithm ignores anyway.
//!
//! Corollary 1 of the paper instantiates the LMN sample bound for XOR
//! Arbiter PUFs via their noise sensitivity `O(k√ε)`; the function
//! [`lmn_degree_for_xor_ltf`] computes the degree that analysis
//! dictates.

use crate::dataset::LabeledSet;
use mlam_boolean::fourier::estimate_coefficients_from_data;
use mlam_boolean::{SparseFourier, SubsetsUpTo};

/// Configuration of an LMN run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LmnConfig {
    /// Maximum degree `d` of estimated coefficients.
    pub degree: usize,
    /// Guard: refuse to enumerate more than this many coefficients.
    pub max_coefficients: usize,
}

impl LmnConfig {
    /// Creates a configuration for degree `d` with the default guard of
    /// 2 million coefficients.
    pub fn new(degree: usize) -> Self {
        LmnConfig {
            degree,
            max_coefficients: 2_000_000,
        }
    }
}

/// Outcome of an LMN run.
#[derive(Clone, Debug)]
pub struct LmnOutcome {
    /// The (improper) hypothesis: sign of the estimated low-degree
    /// expansion.
    pub hypothesis: SparseFourier,
    /// Number of coefficients estimated.
    pub coefficients_estimated: usize,
    /// Squared weight captured by the estimated coefficients (an
    /// estimate of `Σ_{|S|≤d} f̂(S)²`; close to 1 means the target is
    /// low-degree concentrated and the hypothesis will be accurate).
    pub captured_weight: f64,
    /// Training accuracy of the hypothesis.
    pub training_accuracy: f64,
}

/// Runs the LMN low-degree algorithm on a uniform labeled sample.
///
/// # Panics
///
/// Panics if `data` is empty, `n > 63`, or the coefficient count
/// exceeds the configured guard.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, FnFunction};
/// use mlam_learn::dataset::LabeledSet;
/// use mlam_learn::lmn::{lmn_learn, LmnConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// // Majority is degree-1 concentrated.
/// let target = FnFunction::new(9, |x: &BitVec| x.count_ones() >= 5);
/// let train = LabeledSet::sample(&target, 4000, &mut rng);
/// let out = lmn_learn(&train, LmnConfig::new(1));
/// assert!(out.training_accuracy > 0.9);
/// ```
pub fn lmn_learn(data: &LabeledSet, config: LmnConfig) -> LmnOutcome {
    assert!(!data.is_empty(), "LMN needs at least one example");
    let n = data.num_inputs();
    assert!(n <= 63, "LMN implementation limited to n <= 63");
    let count = SubsetsUpTo::count_total(n, config.degree);
    assert!(
        count <= config.max_coefficients as u128,
        "degree {} over n={} needs {} coefficients (> guard {})",
        config.degree,
        n,
        count,
        config.max_coefficients
    );
    let masks: Vec<u64> = SubsetsUpTo::new(n, config.degree).collect();
    let coeffs = estimate_coefficients_from_data(n, data.pairs(), &masks);
    let captured_weight: f64 = coeffs.iter().map(|c| c * c).sum();
    let hypothesis = SparseFourier::new(
        n,
        masks.into_iter().zip(coeffs).collect::<Vec<(u64, f64)>>(),
    );
    let training_accuracy = data.accuracy_of(&hypothesis);
    // LMN is single-shot (one batch estimate, no iterations), so its
    // learning curve is the one point the run ends on.
    if mlam_telemetry::curves::recording() {
        mlam_telemetry::curves::checkpoint("lmn", 1, training_accuracy, None);
    }
    LmnOutcome {
        coefficients_estimated: hypothesis.len(),
        captured_weight,
        training_accuracy,
        hypothesis,
    }
}

/// The degree the LMN theorem requires to ε-approximate a `k`-XOR of
/// LTFs: from `NS_γ(h) ≤ k·√γ` and the Fourier-concentration lemma
/// (`Σ_{|S|≥m} f̂(S)² ≤ ε` at `m = 1/γ` for `γ` with `α(γ) = ε/2.32`),
/// the paper's proof of Corollary 1 yields `m = ⌈2.32·k²/ε²⌉`.
pub fn lmn_degree_for_xor_ltf(k: usize, eps: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    (2.32 * (k * k) as f64 / (eps * eps)).ceil() as usize
}

/// The LMN example budget `n^{O(m)}·ln(1/δ)` for degree `m` — the bound
/// in Table I row 3 (Corollary 1). Returned as `log₂` of the count to
/// stay representable; the exact count overflows for every interesting
/// parameter choice, which *is* the paper's point.
pub fn lmn_sample_budget_log2(n: usize, degree: usize, delta: f64) -> f64 {
    assert!(n > 0 && delta > 0.0 && delta < 1.0);
    degree as f64 * (n as f64).log2() + (1.0 / delta).ln().log2().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_boolean::{BitVec, BooleanFunction, FnFunction, LinearThreshold};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_majority_with_degree_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = FnFunction::new(11, |x: &BitVec| x.count_ones() >= 6);
        let train = LabeledSet::sample(&target, 8000, &mut rng);
        let test = LabeledSet::sample(&target, 3000, &mut rng);
        let out = lmn_learn(&train, LmnConfig::new(1));
        assert!(out.training_accuracy > 0.93, "{}", out.training_accuracy);
        assert!(test.accuracy_of(&out.hypothesis) > 0.9);
        assert_eq!(out.coefficients_estimated, 12);
    }

    #[test]
    fn learns_random_ltf_with_degree_three() {
        let mut rng = StdRng::seed_from_u64(2);
        let target = LinearThreshold::random(10, &mut rng);
        let train = LabeledSet::sample(&target, 10_000, &mut rng);
        let test = LabeledSet::sample(&target, 3000, &mut rng);
        let out = lmn_learn(&train, LmnConfig::new(3));
        assert!(test.accuracy_of(&out.hypothesis) > 0.9);
        // LTFs are low-degree concentrated: the captured weight at
        // degree 3 is large.
        assert!(out.captured_weight > 0.8, "{}", out.captured_weight);
    }

    #[test]
    fn fails_on_high_degree_parity_at_low_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        let target = FnFunction::new(12, |x: &BitVec| x.count_ones() % 2 == 1);
        let train = LabeledSet::sample(&target, 6000, &mut rng);
        let test = LabeledSet::sample(&target, 2000, &mut rng);
        let out = lmn_learn(&train, LmnConfig::new(2));
        // All true weight sits at degree 12; low-degree LMN sees noise.
        let acc = test.accuracy_of(&out.hypothesis);
        assert!(acc < 0.6, "parity must not be learnable at degree 2: {acc}");
        assert!(out.captured_weight < 0.2, "{}", out.captured_weight);
    }

    #[test]
    fn learns_xor_of_two_ltfs_with_degree_two() {
        // XOR of 2 LTFs on few variables is degree-2-ish concentrated
        // enough for LMN to beat chance clearly.
        let mut rng = StdRng::seed_from_u64(4);
        let a = LinearThreshold::random(8, &mut rng);
        let b = LinearThreshold::random(8, &mut rng);
        let target = FnFunction::new(8, move |x: &BitVec| a.eval(x) ^ b.eval(x));
        let train = LabeledSet::sample(&target, 20_000, &mut rng);
        let test = LabeledSet::sample(&target, 4000, &mut rng);
        let out = lmn_learn(&train, LmnConfig::new(4));
        let acc = test.accuracy_of(&out.hypothesis);
        assert!(acc > 0.75, "accuracy {acc}");
    }

    #[test]
    fn degree_formula_of_corollary_one() {
        assert_eq!(lmn_degree_for_xor_ltf(1, 0.5), 10); // ceil(2.32/0.25)
        let d1 = lmn_degree_for_xor_ltf(2, 0.1);
        let d2 = lmn_degree_for_xor_ltf(4, 0.1);
        assert_eq!(d1, (2.32f64 * 4.0 / 0.01).ceil() as usize);
        assert!((d2 as f64 / d1 as f64 - 4.0).abs() < 0.01, "quadratic in k");
    }

    #[test]
    fn sample_budget_explodes_with_k() {
        // For k >> sqrt(ln n) the budget is astronomically large.
        let small = lmn_sample_budget_log2(64, lmn_degree_for_xor_ltf(1, 0.2), 0.01);
        let large = lmn_sample_budget_log2(64, lmn_degree_for_xor_ltf(8, 0.2), 0.01);
        assert!(large > 60.0 * small, "small {small} large {large}");
    }

    #[test]
    #[should_panic(expected = "coefficients")]
    fn guard_rejects_huge_enumerations() {
        let mut rng = StdRng::seed_from_u64(5);
        let target = LinearThreshold::random(60, &mut rng);
        let train = LabeledSet::sample(&target, 10, &mut rng);
        lmn_learn(&train, LmnConfig::new(10));
    }
}
