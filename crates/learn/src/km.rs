//! The Kushilevitz–Mansour (KM) algorithm: locating all heavy Fourier
//! coefficients with membership queries.
//!
//! LMN estimates *every* low-degree coefficient from random examples;
//! KM instead *searches* for the coefficients of magnitude ≥ θ — of any
//! degree — using membership queries. It is the other classical
//! uniform-distribution + membership-query algorithm the paper's access
//! model of Section IV enables, and like LMN it is improper: the output
//! is a sparse spectrum, not a member of any fixed concept class.
//!
//! The algorithm walks a binary tree over mask prefixes. The node for
//! prefix `s ∈ {0,1}^k` covers all masks whose low `k` bits equal `s`;
//! its weight is `B_k(s) = Σ_{T} f̂(s ∘ T)²`, which admits the unbiased
//! estimator
//!
//! ```text
//! B_k(s) = E_{x,x' ∈ {0,1}^k, z ∈ {0,1}^{n−k}} [ f(xz)·f(x'z)·χ_s(x)·χ_s(x') ]
//! ```
//!
//! (the `z` part is shared between the two queries). Because total
//! Fourier weight is 1, at most `2/θ²` nodes per level survive the
//! `θ²/2` threshold, so the search uses polynomially many queries.

use crate::oracle::MembershipOracle;
use mlam_boolean::fourier::SparseFourier;
use mlam_boolean::BitVec;
use rand::Rng;

/// Configuration of a KM run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KmConfig {
    /// Magnitude threshold θ: coefficients with `|f̂(S)| ≥ θ` are
    /// guaranteed to be found (w.h.p.).
    pub theta: f64,
    /// Membership-query pairs per weight estimate.
    pub samples_per_estimate: usize,
    /// Safety cap on surviving nodes per level (`≥ 2/θ²` to respect the
    /// guarantee).
    pub max_buckets: usize,
}

impl KmConfig {
    /// A configuration for threshold `theta` with sample sizes scaled
    /// as `O(1/θ²)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < theta <= 1`.
    pub fn new(theta: f64) -> Self {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0,1]");
        let samples = ((40.0 / (theta * theta)).ceil() as usize).clamp(200, 200_000);
        KmConfig {
            theta,
            samples_per_estimate: samples,
            max_buckets: ((4.0 / (theta * theta)).ceil() as usize).max(8),
        }
    }
}

/// Outcome of a KM run.
#[derive(Clone, Debug)]
pub struct KmOutcome {
    /// The located heavy coefficients with their estimated values, as a
    /// sign-of-spectrum hypothesis.
    pub hypothesis: SparseFourier,
    /// Membership queries consumed.
    pub membership_queries: usize,
    /// Tree nodes expanded.
    pub nodes_expanded: usize,
}

/// Runs Kushilevitz–Mansour against a membership oracle.
///
/// Returns every mask whose coefficient magnitude is ≥ θ (with high
/// probability), each with a sampled estimate of its coefficient.
///
/// # Panics
///
/// Panics if `n > 63`.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, FnFunction};
/// use mlam_learn::km::{km_learn, KmConfig};
/// use mlam_learn::FunctionOracle;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // A single parity: one coefficient of magnitude 1 at mask 0b1010.
/// let f = FnFunction::new(8, |x: &BitVec| x.get(1) ^ x.get(3));
/// let oracle = FunctionOracle::uniform(&f);
/// let out = km_learn(&oracle, KmConfig::new(0.5), &mut rng);
/// assert_eq!(out.hypothesis.terms().len(), 1);
/// assert_eq!(out.hypothesis.terms()[0].0, 0b1010);
/// ```
pub fn km_learn<O, R>(oracle: &O, config: KmConfig, rng: &mut R) -> KmOutcome
where
    O: MembershipOracle,
    R: Rng + ?Sized,
{
    let n = oracle.num_inputs();
    assert!(n <= 63, "KM implementation limited to n <= 63");
    let mut queries = 0usize;
    let mut nodes_expanded = 0usize;
    let threshold = config.theta * config.theta / 2.0;

    // Frontier of surviving prefixes at the current depth. One common
    // sample set is drawn per level and shared by every node on it —
    // the standard implementation trick that keeps the query count at
    // `O(n · samples)` instead of `O(nodes · samples)`.
    let mut frontier: Vec<u64> = vec![0];
    for k in 1..=n {
        // Draw the level's paired sample: (x, x', z) with shared suffix
        // and the two oracle responses.
        let prefix_mask = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
        let level_sample: Vec<(u64, u64, f64)> = (0..config.samples_per_estimate)
            .map(|_| {
                let z = BitVec::random(n, rng).to_u64() & !prefix_mask;
                let x = BitVec::random(n, rng).to_u64() & prefix_mask;
                let x2 = BitVec::random(n, rng).to_u64() & prefix_mask;
                let a = BitVec::from_u64(x | z, n);
                let b = BitVec::from_u64(x2 | z, n);
                queries += 2;
                let fa = if oracle.query(&a) { -1.0f64 } else { 1.0 };
                let fb = if oracle.query(&b) { -1.0f64 } else { 1.0 };
                (x, x2, fa * fb)
            })
            .collect();

        let mut next = Vec::new();
        for &prefix in &frontier {
            for bit in [0u64, 1u64] {
                let s = prefix | (bit << (k - 1));
                nodes_expanded += 1;
                let mut sum = 0.0;
                for &(x, x2, fab) in &level_sample {
                    let chi_a = if (x & s).count_ones() % 2 == 1 {
                        -1.0
                    } else {
                        1.0
                    };
                    let chi_b = if (x2 & s).count_ones() % 2 == 1 {
                        -1.0
                    } else {
                        1.0
                    };
                    sum += fab * chi_a * chi_b;
                }
                let w = sum / level_sample.len() as f64;
                if w >= threshold {
                    next.push(s);
                }
            }
        }
        // Keep the weight guarantee's bucket cap.
        if next.len() > config.max_buckets {
            next.truncate(config.max_buckets);
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    // Estimate the surviving coefficients precisely.
    let mut terms = Vec::with_capacity(frontier.len());
    for &mask in &frontier {
        let mut sum = 0.0;
        for _ in 0..config.samples_per_estimate {
            let x = BitVec::random(n, rng);
            queries += 1;
            let fx = if oracle.query(&x) { -1.0 } else { 1.0 };
            let chi = if x.parity_masked(mask) { -1.0 } else { 1.0 };
            sum += fx * chi;
        }
        let est = sum / config.samples_per_estimate as f64;
        if est.abs() >= config.theta / 2.0 {
            terms.push((mask, est));
        }
    }

    KmOutcome {
        hypothesis: SparseFourier::new(n, terms),
        membership_queries: queries,
        nodes_expanded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FunctionOracle;
    use mlam_boolean::{BooleanFunction, FnFunction, TruthTable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_single_parity_of_any_degree() {
        let mut rng = StdRng::seed_from_u64(1);
        // High-degree parity — invisible to low-degree LMN, trivial for KM.
        let f = FnFunction::new(12, |x: &BitVec| {
            x.get(0) ^ x.get(3) ^ x.get(5) ^ x.get(7) ^ x.get(9) ^ x.get(11)
        });
        let oracle = FunctionOracle::uniform(&f);
        let out = km_learn(&oracle, KmConfig::new(0.5), &mut rng);
        assert_eq!(out.hypothesis.terms().len(), 1);
        let (mask, coeff) = out.hypothesis.terms()[0];
        assert_eq!(mask, 0b1010_1010_1001);
        assert!((coeff - 1.0).abs() < 0.1, "coeff {coeff}");
    }

    #[test]
    fn finds_both_coefficients_of_a_two_term_spectrum() {
        let mut rng = StdRng::seed_from_u64(2);
        // f = sign(x0-parity + x5x6-parity) built as a mux: equals
        // χ_{{0}} on half the space; use a true two-character function:
        // g = x0 XOR (x5 AND x6) has spectrum with heavy masks {0}, and
        // {0,5},{0,6},{0,5,6} of weight 1/4 each... use the majority of
        // 3 instead: three 1/2-weight singletons + one triple.
        let f = FnFunction::new(9, |x: &BitVec| {
            (x.get(1) as u8 + x.get(4) as u8 + x.get(8) as u8) >= 2
        });
        let oracle = FunctionOracle::uniform(&f);
        let out = km_learn(&oracle, KmConfig::new(0.35), &mut rng);
        let masks: Vec<u64> = out.hypothesis.terms().iter().map(|t| t.0).collect();
        for expected in [1u64 << 1, 1 << 4, 1 << 8, (1 << 1) | (1 << 4) | (1 << 8)] {
            assert!(
                masks.contains(&expected),
                "missing mask {expected:b}: {masks:?}"
            );
        }
    }

    #[test]
    fn hypothesis_sign_recovers_the_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = FnFunction::new(10, |x: &BitVec| {
            (x.get(0) as u8 + x.get(1) as u8 + x.get(2) as u8) >= 2
        });
        let oracle = FunctionOracle::uniform(&f);
        let out = km_learn(&oracle, KmConfig::new(0.3), &mut rng);
        let mut agree = 0;
        for _ in 0..2000 {
            let x = BitVec::random(10, &mut rng);
            if out.hypothesis.eval(&x) == f.eval(&x) {
                agree += 1;
            }
        }
        assert!(agree > 1900, "agreement {agree}/2000");
    }

    #[test]
    fn random_function_yields_no_heavy_coefficients() {
        let mut rng = StdRng::seed_from_u64(4);
        // A random function on 12 bits has coefficients ~ 2^{-6}.
        let t = TruthTable::random(12, &mut rng);
        let oracle = FunctionOracle::uniform(&t);
        let out = km_learn(&oracle, KmConfig::new(0.5), &mut rng);
        assert!(out.hypothesis.is_empty(), "{:?}", out.hypothesis.terms());
    }

    #[test]
    fn query_count_is_polynomial() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = FnFunction::new(16, |x: &BitVec| x.get(2) ^ x.get(9));
        let oracle = FunctionOracle::uniform(&f);
        let out = km_learn(&oracle, KmConfig::new(0.5), &mut rng);
        // 2^16 = 65536 inputs; KM explores a thin tree instead.
        assert!(out.nodes_expanded <= 2 * 16 * 8, "{}", out.nodes_expanded);
        assert_eq!(out.hypothesis.terms().len(), 1);
    }
}
