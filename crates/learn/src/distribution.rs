//! Distributions over the challenge space `{0,1}^n`.
//!
//! Section III of the paper turns on the difference between
//! distribution-*free* PAC learning (the adversary must succeed under
//! any `D`) and *uniform-distribution* PAC learning. The literature's
//! "random CRPs" silently means *uniform*; this type makes the choice
//! explicit and lets every experiment state which distribution it draws
//! examples from.

use mlam_boolean::BitVec;
use rand::Rng;
use std::fmt;

/// A sampleable distribution over `{0,1}^n`.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum ChallengeDistribution {
    /// The uniform distribution — what hardware papers mean by "random".
    #[default]
    Uniform,
    /// A product distribution: each bit is 1 independently with the
    /// given probability.
    ProductBiased(f64),
    /// A finite weighted support: challenges drawn proportionally to
    /// their weights. Models an adversary confined to a protocol-chosen
    /// challenge set — an *arbitrary* (fixed) distribution in the sense
    /// of Definition 1.
    Weighted {
        /// The support.
        support: Vec<BitVec>,
        /// Non-negative weights, same length as `support`.
        weights: Vec<f64>,
    },
}

impl ChallengeDistribution {
    /// Creates a weighted finite-support distribution.
    ///
    /// # Panics
    ///
    /// Panics if `support` is empty, lengths differ, any weight is
    /// negative, or all weights are zero.
    pub fn weighted(support: Vec<BitVec>, weights: Vec<f64>) -> Self {
        assert!(!support.is_empty(), "support must be non-empty");
        assert_eq!(support.len(), weights.len(), "length mismatch");
        assert!(
            weights.iter().all(|w| *w >= 0.0),
            "weights must be non-negative"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "at least one weight must be positive"
        );
        ChallengeDistribution::Weighted { support, weights }
    }

    /// Samples one challenge of `n` bits.
    ///
    /// # Panics
    ///
    /// Panics if a weighted distribution's support entries have a
    /// length other than `n`.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> BitVec {
        match self {
            ChallengeDistribution::Uniform => BitVec::random(n, rng),
            ChallengeDistribution::ProductBiased(p) => BitVec::random_biased(n, *p, rng),
            ChallengeDistribution::Weighted { support, weights } => {
                let total: f64 = weights.iter().sum();
                let mut pick = rng.gen::<f64>() * total;
                for (c, w) in support.iter().zip(weights) {
                    pick -= w;
                    if pick <= 0.0 {
                        assert_eq!(c.len(), n, "support entry length mismatch");
                        return c.clone();
                    }
                }
                let last = support.last().expect("non-empty support");
                assert_eq!(last.len(), n, "support entry length mismatch");
                last.clone()
            }
        }
    }

    /// Samples `count` challenges.
    pub fn sample_many<R: Rng + ?Sized>(&self, n: usize, count: usize, rng: &mut R) -> Vec<BitVec> {
        (0..count).map(|_| self.sample(n, rng)).collect()
    }

    /// Whether this is the uniform distribution — the precondition for
    /// every uniform-PAC claim in the paper.
    pub fn is_uniform(&self) -> bool {
        matches!(self, ChallengeDistribution::Uniform)
    }
}

impl fmt::Display for ChallengeDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChallengeDistribution::Uniform => write!(f, "uniform"),
            ChallengeDistribution::ProductBiased(p) => write!(f, "product(p={p})"),
            ChallengeDistribution::Weighted { support, .. } => {
                write!(f, "weighted(|support|={})", support.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_density() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = ChallengeDistribution::Uniform;
        let cs = d.sample_many(64, 500, &mut rng);
        let ones: u32 = cs.iter().map(|c| c.count_ones()).sum();
        let density = ones as f64 / (64.0 * 500.0);
        assert!((density - 0.5).abs() < 0.02);
        assert!(d.is_uniform());
    }

    #[test]
    fn biased_density() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = ChallengeDistribution::ProductBiased(0.8);
        let cs = d.sample_many(32, 500, &mut rng);
        let ones: u32 = cs.iter().map(|c| c.count_ones()).sum();
        let density = ones as f64 / (32.0 * 500.0);
        assert!((density - 0.8).abs() < 0.03);
        assert!(!d.is_uniform());
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = BitVec::zeros(4);
        let b = BitVec::ones(4);
        let d = ChallengeDistribution::weighted(vec![a.clone(), b.clone()], vec![3.0, 1.0]);
        let draws = d.sample_many(4, 4000, &mut rng);
        let count_a = draws.iter().filter(|c| **c == a).count();
        let frac = count_a as f64 / 4000.0;
        assert!((frac - 0.75).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn weighted_zero_weight_never_drawn() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = BitVec::zeros(3);
        let b = BitVec::ones(3);
        let d = ChallengeDistribution::weighted(vec![a, b.clone()], vec![0.0, 1.0]);
        for _ in 0..200 {
            assert_eq!(d.sample(3, &mut rng), b);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn all_zero_weights_panic() {
        ChallengeDistribution::weighted(vec![BitVec::zeros(2)], vec![0.0]);
    }

    #[test]
    fn display_names() {
        assert_eq!(ChallengeDistribution::Uniform.to_string(), "uniform");
        assert_eq!(
            ChallengeDistribution::ProductBiased(0.25).to_string(),
            "product(p=0.25)"
        );
    }
}
