//! Attacker access models as oracle traits (paper, Section IV).
//!
//! Cryptography classifies attacker access precisely; learning theory
//! has the matching notions:
//!
//! - **random examples** ([`ExampleOracle`]): labeled pairs drawn from a
//!   fixed distribution — known-plaintext-style access;
//! - **membership queries** ([`MembershipOracle`]): the attacker picks
//!   the input — chosen-plaintext-style access;
//! - **equivalence queries**: "is my hypothesis right, and if not show
//!   me a counterexample" — which, by Angluin's observation the paper
//!   recalls, can be *simulated from random examples*
//!   ([`simulate_equivalence`]).
//!
//! [`FunctionOracle`] adapts any [`BooleanFunction`] (a PUF model, a
//! locked netlist output, …) into all three, counting queries so attack
//! reports can state the cost.

use crate::distribution::ChallengeDistribution;
use mlam_boolean::{BitVec, BooleanFunction};
use mlam_telemetry::counter;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of labeled examples `(x, f(x))` from a fixed distribution.
pub trait ExampleOracle {
    /// Number of input bits.
    fn num_inputs(&self) -> usize;

    /// Draws the next labeled example.
    fn example<R: Rng + ?Sized>(&self, rng: &mut R) -> (BitVec, bool);

    /// Draws `count` labeled examples.
    fn examples<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<(BitVec, bool)> {
        (0..count).map(|_| self.example(rng)).collect()
    }
}

/// Membership-query access: the attacker chooses the input.
pub trait MembershipOracle {
    /// Number of input bits.
    fn num_inputs(&self) -> usize;

    /// The value of the unknown function at `x`.
    fn query(&self, x: &BitVec) -> bool;
}

/// Result of a (simulated) equivalence query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivalenceResult {
    /// No disagreement found within the sampling budget: the hypothesis
    /// is accepted as (probably approximately) equivalent.
    Equivalent,
    /// A counterexample on which hypothesis and target disagree.
    Counterexample(BitVec),
}

/// Adapts a [`BooleanFunction`] into example and membership oracles,
/// with query counting.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, FnFunction};
/// use mlam_learn::{ExampleOracle, FunctionOracle, MembershipOracle};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let target = FnFunction::new(8, |x: &BitVec| x.count_ones() >= 4);
/// let oracle = FunctionOracle::uniform(&target);
/// let (x, y) = oracle.example(&mut rng);
/// assert_eq!(oracle.query(&x), y);
/// assert_eq!(oracle.queries_used(), 2);
/// ```
pub struct FunctionOracle<'a, F: ?Sized> {
    target: &'a F,
    distribution: ChallengeDistribution,
    // Atomic (not Cell) so the oracle is Sync and can be shared across
    // attack threads; ordering is Relaxed because only totals matter.
    queries: AtomicU64,
}

impl<'a, F: BooleanFunction + ?Sized> FunctionOracle<'a, F> {
    /// Oracle drawing examples from the **uniform** distribution.
    pub fn uniform(target: &'a F) -> Self {
        Self::with_distribution(target, ChallengeDistribution::Uniform)
    }

    /// Oracle drawing examples from an explicit distribution.
    pub fn with_distribution(target: &'a F, distribution: ChallengeDistribution) -> Self {
        FunctionOracle {
            target,
            distribution,
            queries: AtomicU64::new(0),
        }
    }

    /// The example distribution.
    pub fn distribution(&self) -> &ChallengeDistribution {
        &self.distribution
    }

    /// Total number of oracle invocations so far (examples + membership
    /// queries + equivalence-simulation samples).
    pub fn queries_used(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Resets the query counter.
    pub fn reset_queries(&self) {
        self.queries.store(0, Ordering::Relaxed);
    }

    fn count(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }
}

impl<F: BooleanFunction + ?Sized> ExampleOracle for FunctionOracle<'_, F> {
    fn num_inputs(&self) -> usize {
        self.target.num_inputs()
    }

    fn example<R: Rng + ?Sized>(&self, rng: &mut R) -> (BitVec, bool) {
        self.count();
        counter!("oracle.example_queries", 1);
        let x = self.distribution.sample(self.target.num_inputs(), rng);
        let y = self.target.eval(&x);
        (x, y)
    }
}

impl<F: BooleanFunction + ?Sized> MembershipOracle for FunctionOracle<'_, F> {
    fn num_inputs(&self) -> usize {
        self.target.num_inputs()
    }

    fn query(&self, x: &BitVec) -> bool {
        self.count();
        counter!("oracle.membership_queries", 1);
        self.target.eval(x)
    }
}

/// Simulates an equivalence query from random examples (Angluin \[22\]):
/// draw `budget` examples; if the hypothesis disagrees with any, return
/// it as a counterexample, otherwise accept.
///
/// Accepting guarantees (by the standard argument) that with probability
/// `1 − δ` the hypothesis is `ε`-close to the target when
/// `budget ≥ ln(1/δ)/ε`.
pub fn simulate_equivalence<O, H, R>(
    oracle: &O,
    hypothesis: &H,
    budget: usize,
    rng: &mut R,
) -> EquivalenceResult
where
    O: ExampleOracle,
    H: BooleanFunction + ?Sized,
    R: Rng + ?Sized,
{
    counter!("oracle.equivalence_queries", 1);
    for _ in 0..budget {
        let (x, y) = oracle.example(rng);
        if hypothesis.eval(&x) != y {
            return EquivalenceResult::Counterexample(x);
        }
    }
    EquivalenceResult::Equivalent
}

/// Sample budget for an `(ε, δ)` equivalence simulation:
/// `⌈ln(1/δ)/ε⌉`.
pub fn equivalence_budget(eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((1.0 / delta).ln() / eps).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_boolean::FnFunction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn majority(n: usize) -> FnFunction<impl Fn(&BitVec) -> bool> {
        FnFunction::new(n, move |x: &BitVec| x.count_ones() as usize * 2 >= n)
    }

    #[test]
    fn example_oracle_labels_correctly() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = majority(9);
        let oracle = FunctionOracle::uniform(&f);
        for _ in 0..100 {
            let (x, y) = oracle.example(&mut rng);
            assert_eq!(f.eval(&x), y);
        }
        assert_eq!(oracle.queries_used(), 100);
    }

    #[test]
    fn membership_queries_are_counted() {
        let f = majority(5);
        let oracle = FunctionOracle::uniform(&f);
        assert!(oracle.query(&BitVec::ones(5)));
        assert!(!oracle.query(&BitVec::zeros(5)));
        assert_eq!(oracle.queries_used(), 2);
        oracle.reset_queries();
        assert_eq!(oracle.queries_used(), 0);
    }

    #[test]
    fn equivalence_accepts_correct_hypothesis() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = majority(7);
        let oracle = FunctionOracle::uniform(&f);
        let h = majority(7);
        assert_eq!(
            simulate_equivalence(&oracle, &h, 200, &mut rng),
            EquivalenceResult::Equivalent
        );
    }

    #[test]
    fn equivalence_finds_counterexample_for_wrong_hypothesis() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = majority(7);
        let oracle = FunctionOracle::uniform(&f);
        let wrong = FnFunction::new(7, |x: &BitVec| x.count_ones() as usize * 2 < 7);
        match simulate_equivalence(&oracle, &wrong, 200, &mut rng) {
            EquivalenceResult::Counterexample(x) => {
                assert_ne!(wrong.eval(&x), f.eval(&x));
            }
            EquivalenceResult::Equivalent => panic!("must find a counterexample"),
        }
    }

    #[test]
    fn oracle_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<FunctionOracle<'_, FnFunction<fn(&BitVec) -> bool>>>();
    }

    #[test]
    fn oracle_counts_concurrently() {
        let f = majority(5);
        let oracle = FunctionOracle::uniform(&f);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..250 {
                        oracle.query(&BitVec::ones(5));
                    }
                });
            }
        });
        assert_eq!(oracle.queries_used(), 1000);
    }

    #[test]
    fn equivalence_budget_formula() {
        // ln(1/0.01)/0.1 = 46.05... -> 47
        assert_eq!(equivalence_budget(0.1, 0.01), 47);
        assert!(equivalence_budget(0.01, 0.01) > equivalence_budget(0.1, 0.01));
    }

    #[test]
    fn biased_oracle_draws_from_its_distribution() {
        let mut rng = StdRng::seed_from_u64(4);
        let f = majority(64);
        let oracle =
            FunctionOracle::with_distribution(&f, ChallengeDistribution::ProductBiased(0.9));
        let examples = oracle.examples(200, &mut rng);
        let ones: u32 = examples.iter().map(|(x, _)| x.count_ones()).sum();
        let density = ones as f64 / (64.0 * 200.0);
        assert!(density > 0.85, "density {density}");
        // Under heavy bias the majority function outputs 1 almost always.
        assert!(examples.iter().filter(|(_, y)| *y).count() > 190);
    }
}
