//! Attacker access models as oracle traits (paper, Section IV).
//!
//! Cryptography classifies attacker access precisely; learning theory
//! has the matching notions:
//!
//! - **random examples** ([`ExampleOracle`]): labeled pairs drawn from a
//!   fixed distribution — known-plaintext-style access;
//! - **membership queries** ([`MembershipOracle`]): the attacker picks
//!   the input — chosen-plaintext-style access;
//! - **equivalence queries**: "is my hypothesis right, and if not show
//!   me a counterexample" — which, by Angluin's observation the paper
//!   recalls, can be *simulated from random examples*
//!   ([`simulate_equivalence`]).
//!
//! [`FunctionOracle`] adapts any [`BooleanFunction`] (a PUF model, a
//! locked netlist output, …) into all three, counting queries so attack
//! reports can state the cost.
//!
//! Access *type* is one axis; access *quality* is another. Real CRP
//! acquisition flips bits, drops readings and goes transiently
//! unavailable — [`UnreliableOracle`] wraps any of the above with a
//! seeded [`mlam_harness::FaultModel`] and a recovery
//! [`mlam_harness::RetryPolicy`] so experiments can sweep fault rates
//! while keeping every run bit-reproducible (see `HARNESS.md`).

use crate::distribution::ChallengeDistribution;
use mlam_boolean::{BitVec, BooleanFunction};
use mlam_harness::{recover, FaultModel, QueryError, RetryPolicy};
use mlam_telemetry::counter;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of labeled examples `(x, f(x))` from a fixed distribution.
pub trait ExampleOracle {
    /// Number of input bits.
    fn num_inputs(&self) -> usize;

    /// Draws the next labeled example.
    fn example<R: Rng + ?Sized>(&self, rng: &mut R) -> (BitVec, bool);

    /// Draws `count` labeled examples.
    fn examples<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<(BitVec, bool)> {
        (0..count).map(|_| self.example(rng)).collect()
    }
}

/// Membership-query access: the attacker chooses the input.
pub trait MembershipOracle {
    /// Number of input bits.
    fn num_inputs(&self) -> usize;

    /// The value of the unknown function at `x`.
    fn query(&self, x: &BitVec) -> bool;
}

/// Result of a (simulated) equivalence query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivalenceResult {
    /// No disagreement found within the sampling budget: the hypothesis
    /// is accepted as (probably approximately) equivalent.
    Equivalent,
    /// A counterexample on which hypothesis and target disagree.
    Counterexample(BitVec),
}

/// Adapts a [`BooleanFunction`] into example and membership oracles,
/// with query counting.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, FnFunction};
/// use mlam_learn::{ExampleOracle, FunctionOracle, MembershipOracle};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let target = FnFunction::new(8, |x: &BitVec| x.count_ones() >= 4);
/// let oracle = FunctionOracle::uniform(&target);
/// let (x, y) = oracle.example(&mut rng);
/// assert_eq!(oracle.query(&x), y);
/// assert_eq!(oracle.queries_used(), 2);
/// ```
pub struct FunctionOracle<'a, F: ?Sized> {
    target: &'a F,
    distribution: ChallengeDistribution,
    // Atomic (not Cell) so the oracle is Sync and can be shared across
    // attack threads; ordering is Relaxed because only totals matter.
    queries: AtomicU64,
}

impl<'a, F: BooleanFunction + ?Sized> FunctionOracle<'a, F> {
    /// Oracle drawing examples from the **uniform** distribution.
    pub fn uniform(target: &'a F) -> Self {
        Self::with_distribution(target, ChallengeDistribution::Uniform)
    }

    /// Oracle drawing examples from an explicit distribution.
    pub fn with_distribution(target: &'a F, distribution: ChallengeDistribution) -> Self {
        FunctionOracle {
            target,
            distribution,
            queries: AtomicU64::new(0),
        }
    }

    /// The example distribution.
    pub fn distribution(&self) -> &ChallengeDistribution {
        &self.distribution
    }

    /// Total number of oracle invocations so far (examples + membership
    /// queries + equivalence-simulation samples).
    pub fn queries_used(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Resets the query counter.
    pub fn reset_queries(&self) {
        self.queries.store(0, Ordering::Relaxed);
    }

    fn count(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }
}

impl<F: BooleanFunction + ?Sized> ExampleOracle for FunctionOracle<'_, F> {
    fn num_inputs(&self) -> usize {
        self.target.num_inputs()
    }

    fn example<R: Rng + ?Sized>(&self, rng: &mut R) -> (BitVec, bool) {
        self.count();
        counter!("oracle.example_queries", 1);
        let x = self.distribution.sample(self.target.num_inputs(), rng);
        let y = self.target.eval(&x);
        (x, y)
    }
}

impl<F: BooleanFunction + ?Sized> MembershipOracle for FunctionOracle<'_, F> {
    fn num_inputs(&self) -> usize {
        self.target.num_inputs()
    }

    fn query(&self, x: &BitVec) -> bool {
        self.count();
        counter!("oracle.membership_queries", 1);
        self.target.eval(x)
    }
}

/// Wraps any oracle with a seeded [`FaultModel`] and a recovery
/// [`RetryPolicy`] — the unreliable-access adversary model.
///
/// The paper classifies adversaries by *what* they may ask the oracle;
/// this adapter adds *how well* the oracle answers. Faults (response
/// flips, dropped readings, transient outages) are a pure function of
/// the fault seed and the challenge bits, so two runs with the same
/// seed see bit-identical faults at any thread count; recovery
/// (bounded retry with deterministic backoff, k-of-n majority voting)
/// is applied per logical query.
///
/// The wrapper distinguishes **logical queries** (what the attack
/// asked) from **raw reads** (attempts spent against the device); the
/// ratio is the query overhead the fault model costs the attacker —
/// the quantity the `fault_sweep` benchmark sweeps.
///
/// When every reading of a query is lost, the wrapper degrades
/// gracefully instead of failing the attack: it records the query as
/// exhausted (`harness.retry.exhausted`) and falls back to one last
/// non-droppable reading that can still be flipped.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, FnFunction};
/// use mlam_harness::{FaultModel, RetryPolicy};
/// use mlam_learn::{FunctionOracle, MembershipOracle, UnreliableOracle};
///
/// let target = FnFunction::new(8, |x: &BitVec| x.count_ones() >= 4);
/// let oracle = UnreliableOracle::new(
///     FunctionOracle::uniform(&target),
///     FaultModel::new(3, 0.2, 0.1),    // 20% flips, 10% drops
///     RetryPolicy::retries(8).with_votes(3),
/// );
/// // Majority voting masks most flips: the logical answer is usually
/// // the true response even though single readings lie.
/// let x = BitVec::ones(8);
/// assert_eq!(oracle.query(&x), true);
/// // Recovery spends extra raw reads per logical query.
/// assert_eq!(oracle.logical_queries(), 1);
/// assert!(oracle.raw_reads() >= 3);
/// ```
pub struct UnreliableOracle<O> {
    inner: O,
    faults: FaultModel,
    policy: RetryPolicy,
    // Atomics (not Cells) so the wrapper stays Sync like FunctionOracle.
    raw_reads: AtomicU64,
    logical_queries: AtomicU64,
    exhausted: AtomicU64,
}

impl<O> UnreliableOracle<O> {
    /// Wraps `inner` with the given fault model and recovery policy.
    pub fn new(inner: O, faults: FaultModel, policy: RetryPolicy) -> Self {
        UnreliableOracle {
            inner,
            faults,
            policy,
            raw_reads: AtomicU64::new(0),
            logical_queries: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// The fault model readings pass through.
    pub fn faults(&self) -> &FaultModel {
        &self.faults
    }

    /// The recovery policy applied per logical query.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Raw readings spent against the device so far.
    pub fn raw_reads(&self) -> u64 {
        self.raw_reads.load(Ordering::Relaxed)
    }

    /// Logical queries answered so far.
    pub fn logical_queries(&self) -> u64 {
        self.logical_queries.load(Ordering::Relaxed)
    }

    /// Queries that exhausted every attempt and fell back to the
    /// last-gasp reading.
    pub fn exhausted_queries(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Raw reads per logical query (`1.0` for a perfect oracle; `0.0`
    /// before the first query).
    pub fn overhead(&self) -> f64 {
        let logical = self.logical_queries();
        if logical == 0 {
            0.0
        } else {
            self.raw_reads() as f64 / logical as f64
        }
    }
}

impl<O: MembershipOracle> UnreliableOracle<O> {
    /// One logical membership query with recovery, reporting exhaustion
    /// instead of falling back.
    ///
    /// [`MembershipOracle::query`] wraps this with the last-gasp
    /// fallback; callers that must *know* when access failed (rather
    /// than absorb a possibly-wrong bit) use this form.
    pub fn query_checked(&self, x: &BitVec) -> Result<bool, QueryError> {
        self.logical_queries.fetch_add(1, Ordering::Relaxed);
        counter!("oracle.query.logical", 1);
        recover(&self.policy, |attempt| {
            self.raw_reads.fetch_add(1, Ordering::Relaxed);
            counter!("oracle.query.raw_reads", 1);
            let raw = self.inner.query(x);
            self.faults.roll(x, attempt).apply(raw)
        })
    }
}

impl<O: MembershipOracle> MembershipOracle for UnreliableOracle<O> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    fn query(&self, x: &BitVec) -> bool {
        match self.query_checked(x) {
            Ok(bit) => bit,
            Err(_) => {
                // Degrade gracefully: one last non-droppable reading,
                // still subject to flips.
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                counter!("oracle.query.exhausted", 1);
                self.raw_reads.fetch_add(1, Ordering::Relaxed);
                counter!("oracle.query.raw_reads", 1);
                let raw = self.inner.query(x);
                raw ^ self.faults.flip_last_gasp(x, self.policy.max_attempts)
            }
        }
    }
}

impl<O: ExampleOracle> ExampleOracle for UnreliableOracle<O> {
    fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    /// Draws the next labeled example through the fault model.
    ///
    /// A dropped or unavailable reading loses the drawn example (the
    /// attacker cannot replay a random draw) and retries with a fresh
    /// one, up to the policy's attempt budget; a flip mislabels it.
    /// Majority voting does not apply: there is no way to re-observe
    /// the same random example.
    fn example<R: Rng + ?Sized>(&self, rng: &mut R) -> (BitVec, bool) {
        self.logical_queries.fetch_add(1, Ordering::Relaxed);
        counter!("oracle.query.logical", 1);
        let mut last = None;
        let mut losses = 0u32;
        for attempt in 0..self.policy.max_attempts {
            counter!("harness.retry.attempts", 1);
            self.raw_reads.fetch_add(1, Ordering::Relaxed);
            counter!("oracle.query.raw_reads", 1);
            let (x, y) = self.inner.example(rng);
            match self.faults.roll(&x, attempt).apply(y) {
                Some(bit) => return (x, bit),
                None => {
                    counter!(
                        "harness.retry.backoff_units",
                        self.policy.backoff.units(losses)
                    );
                    losses += 1;
                    last = Some((x, y));
                }
            }
        }
        // Every attempt was lost: degrade to the last drawn example
        // with a last-gasp (flip-only) reading.
        counter!("harness.retry.exhausted", 1);
        self.exhausted.fetch_add(1, Ordering::Relaxed);
        counter!("oracle.query.exhausted", 1);
        let (x, y) = last.expect("max_attempts is at least 1");
        let flipped = y ^ self.faults.flip_last_gasp(&x, self.policy.max_attempts);
        (x, flipped)
    }
}

/// Simulates an equivalence query from random examples (Angluin \[22\]):
/// draw `budget` examples; if the hypothesis disagrees with any, return
/// it as a counterexample, otherwise accept.
///
/// Accepting guarantees (by the standard argument) that with probability
/// `1 − δ` the hypothesis is `ε`-close to the target when
/// `budget ≥ ln(1/δ)/ε`.
pub fn simulate_equivalence<O, H, R>(
    oracle: &O,
    hypothesis: &H,
    budget: usize,
    rng: &mut R,
) -> EquivalenceResult
where
    O: ExampleOracle,
    H: BooleanFunction + ?Sized,
    R: Rng + ?Sized,
{
    counter!("oracle.equivalence_queries", 1);
    for _ in 0..budget {
        let (x, y) = oracle.example(rng);
        if hypothesis.eval(&x) != y {
            return EquivalenceResult::Counterexample(x);
        }
    }
    EquivalenceResult::Equivalent
}

/// Sample budget for an `(ε, δ)` equivalence simulation:
/// `⌈ln(1/δ)/ε⌉`.
pub fn equivalence_budget(eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((1.0 / delta).ln() / eps).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_boolean::FnFunction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn majority(n: usize) -> FnFunction<impl Fn(&BitVec) -> bool> {
        FnFunction::new(n, move |x: &BitVec| x.count_ones() as usize * 2 >= n)
    }

    #[test]
    fn example_oracle_labels_correctly() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = majority(9);
        let oracle = FunctionOracle::uniform(&f);
        for _ in 0..100 {
            let (x, y) = oracle.example(&mut rng);
            assert_eq!(f.eval(&x), y);
        }
        assert_eq!(oracle.queries_used(), 100);
    }

    #[test]
    fn membership_queries_are_counted() {
        let f = majority(5);
        let oracle = FunctionOracle::uniform(&f);
        assert!(oracle.query(&BitVec::ones(5)));
        assert!(!oracle.query(&BitVec::zeros(5)));
        assert_eq!(oracle.queries_used(), 2);
        oracle.reset_queries();
        assert_eq!(oracle.queries_used(), 0);
    }

    #[test]
    fn equivalence_accepts_correct_hypothesis() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = majority(7);
        let oracle = FunctionOracle::uniform(&f);
        let h = majority(7);
        assert_eq!(
            simulate_equivalence(&oracle, &h, 200, &mut rng),
            EquivalenceResult::Equivalent
        );
    }

    #[test]
    fn equivalence_finds_counterexample_for_wrong_hypothesis() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = majority(7);
        let oracle = FunctionOracle::uniform(&f);
        let wrong = FnFunction::new(7, |x: &BitVec| x.count_ones() as usize * 2 < 7);
        match simulate_equivalence(&oracle, &wrong, 200, &mut rng) {
            EquivalenceResult::Counterexample(x) => {
                assert_ne!(wrong.eval(&x), f.eval(&x));
            }
            EquivalenceResult::Equivalent => panic!("must find a counterexample"),
        }
    }

    #[test]
    fn oracle_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<FunctionOracle<'_, FnFunction<fn(&BitVec) -> bool>>>();
    }

    #[test]
    fn oracle_counts_concurrently() {
        let f = majority(5);
        let oracle = FunctionOracle::uniform(&f);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..250 {
                        oracle.query(&BitVec::ones(5));
                    }
                });
            }
        });
        assert_eq!(oracle.queries_used(), 1000);
    }

    #[test]
    fn equivalence_budget_formula() {
        // ln(1/0.01)/0.1 = 46.05... -> 47
        assert_eq!(equivalence_budget(0.1, 0.01), 47);
        assert!(equivalence_budget(0.01, 0.01) > equivalence_budget(0.1, 0.01));
    }

    #[test]
    fn unreliable_oracle_is_deterministic() {
        let f = majority(24);
        let faults = FaultModel::new(21, 0.3, 0.2).with_outages(0.1, 2);
        let policy = RetryPolicy::retries(6).with_votes(3);
        let a = UnreliableOracle::new(FunctionOracle::uniform(&f), faults, policy);
        let b = UnreliableOracle::new(FunctionOracle::uniform(&f), faults, policy);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let x = BitVec::random(24, &mut rng);
            assert_eq!(a.query(&x), b.query(&x), "same seed, same answer");
        }
        assert_eq!(a.raw_reads(), b.raw_reads());
        assert_eq!(a.exhausted_queries(), b.exhausted_queries());
        assert_eq!(a.logical_queries(), 200);
    }

    #[test]
    fn majority_vote_recovers_most_flips() {
        let f = majority(32);
        let mut rng = StdRng::seed_from_u64(7);
        let challenges: Vec<BitVec> = (0..400).map(|_| BitVec::random(32, &mut rng)).collect();
        let wrong_of = |policy: RetryPolicy| {
            let oracle = UnreliableOracle::new(
                FunctionOracle::uniform(&f),
                FaultModel::new(8, 0.2, 0.0),
                policy,
            );
            challenges
                .iter()
                .filter(|x| oracle.query(x) != f.eval(x))
                .count()
        };
        let unvoted = wrong_of(RetryPolicy::default());
        let voted = wrong_of(RetryPolicy::retries(9).with_votes(9));
        // 20% of single-shot readings flip; a 9-way majority masks
        // nearly all of them.
        assert!(unvoted > 40, "unvoted errors: {unvoted}");
        assert!(voted < unvoted / 4, "voted {voted} vs unvoted {unvoted}");
    }

    #[test]
    fn drops_cost_overhead_but_not_correctness() {
        let f = majority(16);
        let oracle = UnreliableOracle::new(
            FunctionOracle::uniform(&f),
            FaultModel::new(4, 0.0, 0.4),
            RetryPolicy::retries(16),
        );
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..300 {
            let x = BitVec::random(16, &mut rng);
            assert_eq!(oracle.query(&x), f.eval(&x), "drops never corrupt bits");
        }
        assert!(oracle.overhead() > 1.2, "overhead {}", oracle.overhead());
        assert_eq!(oracle.exhausted_queries(), 0);
    }

    #[test]
    fn exhaustion_degrades_to_last_gasp_reading() {
        let f = majority(12);
        // Every reading is dropped; the fallback reading (flip-free
        // model) still answers correctly.
        let oracle = UnreliableOracle::new(
            FunctionOracle::uniform(&f),
            FaultModel::new(2, 0.0, 1.0),
            RetryPolicy::retries(3),
        );
        let x = BitVec::ones(12);
        assert!(oracle.query_checked(&x).is_err());
        assert_eq!(oracle.query(&x), f.eval(&x));
        assert_eq!(oracle.exhausted_queries(), 1);
        assert_eq!(oracle.raw_reads(), 3 + 3 + 1);
    }

    #[test]
    fn unreliable_oracle_reports_query_budget_counters() {
        use mlam_telemetry::CounterScope;
        let f = majority(12);
        // Every reading drops: a query spends the full attempt budget
        // (3 raw reads) and then the last-gasp read (1 more).
        let oracle = UnreliableOracle::new(
            FunctionOracle::uniform(&f),
            FaultModel::new(2, 0.0, 1.0),
            RetryPolicy::retries(3),
        );
        let scope = CounterScope::new();
        {
            let _guard = scope.enter();
            oracle.query(&BitVec::ones(12));
        }
        let deltas = scope.take();
        assert_eq!(deltas["oracle.query.logical"], 1);
        assert_eq!(deltas["oracle.query.raw_reads"], 4);
        assert_eq!(deltas["oracle.query.exhausted"], 1);
    }

    #[test]
    fn unreliable_examples_flow_through_faults() {
        let f = majority(20);
        let faulty = UnreliableOracle::new(
            FunctionOracle::uniform(&f),
            FaultModel::new(15, 0.25, 0.2),
            RetryPolicy::retries(5),
        );
        let mut rng = StdRng::seed_from_u64(10);
        let examples = faulty.examples(400, &mut rng);
        let wrong = examples.iter().filter(|(x, y)| f.eval(x) != *y).count() as f64 / 400.0;
        // Labels carry roughly the flip rate of errors.
        assert!(wrong > 0.12 && wrong < 0.40, "mislabel rate {wrong}");
        // Drops lose draws: more raw reads than logical examples.
        assert!(faulty.raw_reads() > faulty.logical_queries());
    }

    #[test]
    fn reliable_wrapper_is_transparent() {
        let f = majority(16);
        let plain = FunctionOracle::uniform(&f);
        let wrapped = UnreliableOracle::new(
            FunctionOracle::uniform(&f),
            FaultModel::reliable(),
            RetryPolicy::default(),
        );
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(plain.example(&mut rng_a), wrapped.example(&mut rng_b));
        }
        assert_eq!(wrapped.raw_reads(), wrapped.logical_queries());
        assert!((wrapped.overhead() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn biased_oracle_draws_from_its_distribution() {
        let mut rng = StdRng::seed_from_u64(4);
        let f = majority(64);
        let oracle =
            FunctionOracle::with_distribution(&f, ChallengeDistribution::ProductBiased(0.9));
        let examples = oracle.examples(200, &mut rng);
        let ones: u32 = examples.iter().map(|(x, _)| x.count_ones()).sum();
        let density = ones as f64 / (64.0 * 200.0);
        assert!(density > 0.85, "density {density}");
        // Under heavy bias the majority function outputs 1 almost always.
        assert!(examples.iter().filter(|(_, y)| *y).count() > 190);
    }
}
