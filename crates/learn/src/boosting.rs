//! AdaBoost — boosting weak learners into a strong improper hypothesis.
//!
//! Boosting is the textbook witness for the paper's Section V-B claim
//! that *improper* learning is strictly more powerful: the ensemble
//! `sign(Σ α_t·h_t)` lies far outside the weak learners' class, and the
//! classic equivalence "weakly learnable ⇔ strongly learnable" only
//! holds because the booster may output it anyway.
//!
//! The weak learners here are decision stumps over parity features
//! (single bits by default, arbitrary masks if configured), which is
//! enough to boost through mildly nonlinear PUFs and to demonstrate
//! margin-style convergence.

use crate::dataset::LabeledSet;
use crate::feature_matrix::for_each_set_bit;
use mlam_boolean::{BitVec, BooleanFunction};

/// A decision stump: predicts `polarity · χ_mask(x)` (±1 encoding).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParityStump {
    /// The parity feature mask (0 = constant stump).
    pub mask: u64,
    /// +1.0 or −1.0.
    pub polarity: f64,
}

impl ParityStump {
    fn predict(&self, x: &BitVec) -> f64 {
        let chi = if x.parity_masked(self.mask) {
            -1.0
        } else {
            1.0
        };
        self.polarity * chi
    }
}

/// The boosted ensemble: `sign(Σ α_t · stump_t(x))`.
#[derive(Clone, Debug, PartialEq)]
pub struct BoostedStumps {
    n: usize,
    members: Vec<(f64, ParityStump)>,
}

impl BoostedStumps {
    /// The weighted members `(α_t, stump_t)`.
    pub fn members(&self) -> &[(f64, ParityStump)] {
        &self.members
    }

    /// The real-valued margin `Σ α_t·h_t(x)`.
    pub fn margin(&self, x: &BitVec) -> f64 {
        self.members.iter().map(|(a, s)| a * s.predict(x)).sum()
    }
}

impl BooleanFunction for BoostedStumps {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn eval(&self, x: &BitVec) -> bool {
        mlam_boolean::to_bool(self.margin(x))
    }
}

/// Outcome of an AdaBoost run.
#[derive(Clone, Debug)]
pub struct BoostOutcome {
    /// The ensemble hypothesis.
    pub hypothesis: BoostedStumps,
    /// Weighted training error of each round's weak hypothesis.
    pub round_errors: Vec<f64>,
    /// Final training accuracy of the ensemble.
    pub training_accuracy: f64,
}

/// AdaBoost over parity stumps.
///
/// # Example
///
/// ```
/// use mlam_boolean::{BitVec, FnFunction};
/// use mlam_learn::boosting::AdaBoost;
/// use mlam_learn::dataset::LabeledSet;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let target = FnFunction::new(10, |x: &BitVec| x.count_ones() >= 5);
/// let train = LabeledSet::sample(&target, 1500, &mut rng);
/// let out = AdaBoost::new(40).train(&train);
/// assert!(out.training_accuracy > 0.9);
/// ```
#[derive(Clone, Debug)]
pub struct AdaBoost {
    rounds: usize,
    /// Candidate stump masks; default = all single-bit parities plus
    /// the constant.
    masks: Option<Vec<u64>>,
}

impl AdaBoost {
    /// Creates a booster running `rounds` rounds over single-bit
    /// stumps.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(rounds: usize) -> Self {
        assert!(rounds > 0, "need at least one round");
        AdaBoost {
            rounds,
            masks: None,
        }
    }

    /// Overrides the candidate feature masks (e.g. all degree-≤2
    /// parities to boost through quadratic structure).
    pub fn with_masks(mut self, masks: Vec<u64>) -> Self {
        self.masks = Some(masks);
        self
    }

    /// Runs AdaBoost on a labeled sample.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `n > 63`.
    pub fn train(&self, data: &LabeledSet) -> BoostOutcome {
        assert!(!data.is_empty(), "cannot boost on an empty set");
        let n = data.num_inputs();
        assert!(n <= 63);
        let default_masks: Vec<u64> = std::iter::once(0u64)
            .chain((0..n).map(|i| 1u64 << i))
            .collect();
        let masks = self.masks.as_deref().unwrap_or(&default_masks);

        // Precompute stump predictions per example as packed sign words
        // (bit set ⇔ the stump or label is −1.0): a round then scans one
        // XOR'd mismatch word per 64 examples instead of two f64 rows.
        let m = data.len();
        let label_words: Vec<u64> =
            crate::feature_matrix::pack_sign_bits(data.pairs().iter().map(|(_, y)| *y));
        let mismatches: Vec<Vec<u64>> = masks
            .iter()
            .map(|&mask| {
                let pred = crate::feature_matrix::pack_sign_bits(
                    data.pairs().iter().map(|(x, _)| x.parity_masked(mask)),
                );
                pred.iter().zip(&label_words).map(|(p, t)| p ^ t).collect()
            })
            .collect();

        let mut weights = vec![1.0 / m as f64; m];
        let mut members = Vec::new();
        let mut round_errors = Vec::new();
        // Learning-curve bookkeeping (recording runs only): the signed
        // ensemble margin per example, updated incrementally from the
        // same ht sign the reweight loop already computes, so each
        // checkpoint's ensemble accuracy is exact without re-running
        // the stumps.
        let mut signed_margins: Option<Vec<f64>> =
            mlam_telemetry::curves::recording().then(|| vec![0.0f64; m]);
        let mut last_checkpoint: Option<u64> = None;

        for _ in 0..self.rounds {
            // Best stump under current weights: the weighted error sums
            // the mismatching examples in ascending index order, exactly
            // as the former zip-filter scan did.
            let mut best: Option<(usize, f64, f64)> = None; // (mask idx, polarity, err)
            for (mi, mismatch) in mismatches.iter().enumerate() {
                let mut weighted_err_pos = 0.0f64;
                for_each_set_bit(mismatch, m, |i| weighted_err_pos += weights[i]);
                for (polarity, err) in [(1.0, weighted_err_pos), (-1.0, 1.0 - weighted_err_pos)] {
                    if best.map(|(_, _, be)| err < be).unwrap_or(true) {
                        best = Some((mi, polarity, err));
                    }
                }
            }
            let (mi, polarity, err) = best.expect("non-empty masks");
            round_errors.push(err);
            let err = err.clamp(1e-10, 1.0 - 1e-10);
            if err >= 0.5 {
                break; // no weak learner left
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            members.push((
                alpha,
                ParityStump {
                    mask: masks[mi],
                    polarity,
                },
            ));
            // Reweight. The scalar multiplier exp(−α·h·t) only takes two
            // values (h, t = ±1), precomputed here once; the per-example
            // products and the normalization sum keep index order.
            let shrink = (-alpha).exp(); // h·t = +1 (stump agrees)
            let grow = alpha.exp(); // h·t = −1 (stump disagrees)
            let polarity_neg = polarity < 0.0;
            let mismatch = &mismatches[mi];
            let mut total = 0.0;
            for (i, w) in weights.iter_mut().enumerate() {
                let mismatched = (mismatch[i / 64] >> (i % 64)) & 1 == 1;
                let ht_negative = mismatched != polarity_neg;
                *w *= if ht_negative { grow } else { shrink };
                if let Some(signed) = signed_margins.as_mut() {
                    // The per-label signed margin Σ α·h·t: positive
                    // when the ensemble agrees with the label.
                    signed[i] += alpha * if ht_negative { -1.0 } else { 1.0 };
                }
                total += *w;
            }
            for w in &mut weights {
                *w /= total;
            }
            if let Some(signed) = signed_margins.as_ref() {
                let round = members.len() as u64;
                if mlam_telemetry::curves::should_checkpoint(round, self.rounds as u64) {
                    // Ensemble eval is margin ≤ 0 ⇒ logic 1, so ties go
                    // to the positive class: with t = −1 for y = true,
                    // y = true is correct at signed ≥ 0, y = false
                    // needs signed > 0 strictly.
                    let mut correct = 0usize;
                    for (i, s) in signed.iter().enumerate() {
                        let y_true = (label_words[i / 64] >> (i % 64)) & 1 == 1;
                        if (y_true && *s >= 0.0) || (!y_true && *s > 0.0) {
                            correct += 1;
                        }
                    }
                    mlam_telemetry::curves::checkpoint(
                        "adaboost",
                        round,
                        correct as f64 / m as f64,
                        None,
                    );
                    last_checkpoint = Some(round);
                }
            }
        }

        mlam_telemetry::counter!("learn.boosting.rounds", round_errors.len());
        let hypothesis = BoostedStumps { n, members };
        let training_accuracy = data.accuracy_of(&hypothesis);
        if signed_margins.is_some() && last_checkpoint != Some(hypothesis.members.len() as u64) {
            // Early break (no weak learner left) can skip the schedule's
            // final point; close the curve with the already-computed
            // ensemble accuracy.
            mlam_telemetry::curves::checkpoint(
                "adaboost",
                hypothesis.members.len() as u64,
                training_accuracy,
                None,
            );
        }
        BoostOutcome {
            hypothesis,
            round_errors,
            training_accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlam_boolean::{FnFunction, LinearThreshold};
    use mlam_learn_test_rng::*;

    mod mlam_learn_test_rng {
        pub use rand::rngs::StdRng;
        pub use rand::SeedableRng;
    }

    #[test]
    fn boosts_majority_to_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = FnFunction::new(11, |x: &BitVec| x.count_ones() >= 6);
        let train = LabeledSet::sample(&target, 3000, &mut rng);
        let test = LabeledSet::sample(&target, 2000, &mut rng);
        let out = AdaBoost::new(60).train(&train);
        assert!(out.training_accuracy > 0.92, "{}", out.training_accuracy);
        assert!(test.accuracy_of(&out.hypothesis) > 0.9);
    }

    #[test]
    fn boosts_weighted_ltf() {
        let mut rng = StdRng::seed_from_u64(2);
        let target = LinearThreshold::new(vec![3.0, 2.0, 1.5, 1.0, 0.5, 0.25], 0.0);
        let train = LabeledSet::sample(&target, 3000, &mut rng);
        let test = LabeledSet::sample(&target, 1500, &mut rng);
        let out = AdaBoost::new(80).train(&train);
        assert!(test.accuracy_of(&out.hypothesis) > 0.85);
    }

    #[test]
    fn round_errors_start_below_half_and_alpha_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let target = FnFunction::new(8, |x: &BitVec| x.get(0));
        let train = LabeledSet::sample(&target, 500, &mut rng);
        let out = AdaBoost::new(10).train(&train);
        assert!(out.round_errors[0] < 0.5);
        assert!(out.hypothesis.members()[0].0 > 0.0);
        // A dictator is one stump: training accuracy hits 1 immediately.
        assert_eq!(out.training_accuracy, 1.0);
    }

    #[test]
    fn single_bit_stumps_cannot_boost_parity_but_parity_masks_can() {
        let mut rng = StdRng::seed_from_u64(4);
        let target = FnFunction::new(8, |x: &BitVec| x.get(1) ^ x.get(5));
        let train = LabeledSet::sample(&target, 2000, &mut rng);
        let test = LabeledSet::sample(&target, 1000, &mut rng);
        // Single-bit stumps: every stump is uncorrelated -> stuck at chance.
        let weak = AdaBoost::new(40).train(&train);
        assert!(test.accuracy_of(&weak.hypothesis) < 0.6);
        // Degree-<=2 parity stumps contain the target itself.
        let masks: Vec<u64> = mlam_boolean::SubsetsUpTo::new(8, 2).collect();
        let strong = AdaBoost::new(40).with_masks(masks).train(&train);
        assert_eq!(test.accuracy_of(&strong.hypothesis), 1.0);
    }

    #[test]
    fn recording_emits_adaboost_curve_without_touching_numerics() {
        use mlam_telemetry::curves::{enter_series, CurveRecorder, CurveSink};
        use std::sync::Arc;

        let mut rng = StdRng::seed_from_u64(6);
        let target = FnFunction::new(9, |x: &BitVec| x.count_ones() >= 5);
        let train = LabeledSet::sample(&target, 800, &mut rng);
        let plain = AdaBoost::new(24).train(&train);

        let recorder = Arc::new(CurveRecorder::new());
        let recorded = {
            let sinks: Arc<Vec<Arc<dyn CurveSink>>> =
                Arc::new(vec![Arc::clone(&recorder) as Arc<dyn CurveSink>]);
            let _guard = enter_series("boost_test", sinks);
            AdaBoost::new(24).train(&train)
        };
        // Recording must not perturb the training result.
        assert_eq!(plain.hypothesis, recorded.hypothesis);
        assert_eq!(plain.round_errors, recorded.round_errors);

        let series = recorder.series();
        let points = &series["boost_test"];
        assert!(!points.is_empty());
        assert!(points.iter().all(|p| p.label == "adaboost"));
        assert!(
            points.windows(2).all(|w| w[0].iteration < w[1].iteration),
            "rounds must be strictly increasing"
        );
        // The incrementally-tracked margin accuracy is bit-exact
        // against the direct ensemble evaluation at the final round.
        let last = points.last().unwrap();
        assert_eq!(last.iteration, recorded.hypothesis.members().len() as u64);
        assert_eq!(last.train_acc, recorded.training_accuracy);
    }

    #[test]
    fn ensemble_is_improper_for_the_stump_class() {
        // The ensemble of >= 3 distinct stumps (majority of dictators)
        // is itself not a stump — the improper-learning point.
        let mut rng = StdRng::seed_from_u64(5);
        let target = FnFunction::new(5, |x: &BitVec| {
            (x.get(0) as u8 + x.get(1) as u8 + x.get(2) as u8) >= 2
        });
        let train = LabeledSet::sample(&target, 2000, &mut rng);
        let out = AdaBoost::new(30).train(&train);
        let distinct: std::collections::HashSet<u64> = out
            .hypothesis
            .members()
            .iter()
            .map(|(_, s)| s.mask)
            .collect();
        assert!(distinct.len() >= 3, "{distinct:?}");
        assert!(out.training_accuracy > 0.9);
    }
}
