//! Feature maps: how a challenge becomes a real vector for the linear
//! learners.
//!
//! The *representation* axis of the adversary model (paper, Section V)
//! often enters an attack exactly here: a Perceptron over the raw ±1
//! bits represents LTFs over the challenge; the same Perceptron over the
//! arbiter Φ-transform represents Arbiter PUF delay models; over
//! low-degree parity features it represents polynomial threshold
//! functions — strictly more expressive, i.e. closer to improper
//! learning.

use mlam_boolean::{BitVec, SubsetsUpTo};

/// Maps a Boolean input to a real feature vector.
pub trait FeatureMap {
    /// Input length the map accepts.
    fn num_inputs(&self) -> usize;

    /// Dimension of the output feature vector (including any constant
    /// feature).
    fn dimension(&self) -> usize;

    /// Computes the features of `x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != self.num_inputs()`.
    fn features(&self, x: &BitVec) -> Vec<f64>;

    /// Computes the features of `x` into a caller-owned buffer, so hot
    /// loops can reuse one allocation across many examples. The buffer
    /// is cleared first; afterwards it holds exactly
    /// [`dimension`](FeatureMap::dimension) values identical to
    /// [`features`](FeatureMap::features).
    fn features_into(&self, x: &BitVec, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.features(x));
    }

    /// Whether every feature value this map produces is exactly `±1.0`.
    ///
    /// Sign-valued maps allow [`crate::feature_matrix::FeatureMatrix`]
    /// to store one sign *bit* per feature instead of an `f64`, which is
    /// what makes the cached-matrix learners cache-resident.
    fn is_sign_valued(&self) -> bool {
        false
    }
}

/// The ±1 encoding with a constant feature: `[x_0, …, x_{n−1}, 1]`
/// where `x_i = ±1`. A linear learner over these features is exactly an
/// LTF over the challenge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlusMinusFeatures {
    n: usize,
}

impl PlusMinusFeatures {
    /// Creates the map for `n`-bit inputs.
    pub fn new(n: usize) -> Self {
        PlusMinusFeatures { n }
    }
}

impl FeatureMap for PlusMinusFeatures {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn dimension(&self) -> usize {
        self.n + 1
    }

    fn features(&self, x: &BitVec) -> Vec<f64> {
        let mut v = Vec::new();
        self.features_into(x, &mut v);
        v
    }

    fn features_into(&self, x: &BitVec, out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        out.clear();
        out.reserve(self.n + 1);
        for i in 0..self.n {
            out.push(x.pm(i));
        }
        out.push(1.0);
    }

    fn is_sign_valued(&self) -> bool {
        true
    }
}

/// The arbiter parity-feature transform Φ (plus its built-in constant
/// feature). A linear learner over these features represents exactly
/// the additive delay model of an Arbiter PUF.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArbiterPhiFeatures {
    n: usize,
}

impl ArbiterPhiFeatures {
    /// Creates the map for `n`-stage arbiter challenges.
    pub fn new(n: usize) -> Self {
        ArbiterPhiFeatures { n }
    }
}

impl FeatureMap for ArbiterPhiFeatures {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn dimension(&self) -> usize {
        self.n + 1
    }

    fn features(&self, x: &BitVec) -> Vec<f64> {
        let mut phi = Vec::new();
        self.features_into(x, &mut phi);
        phi
    }

    fn features_into(&self, x: &BitVec, out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        // Suffix parity products, identical to mlam_puf::phi_transform
        // (duplicated here to keep the learn crate independent of the
        // puf crate).
        out.clear();
        out.resize(self.n + 1, 1.0);
        let mut acc = 1.0;
        for i in (0..self.n).rev() {
            acc *= if x.get(i) { -1.0 } else { 1.0 };
            out[i] = acc;
        }
    }

    fn is_sign_valued(&self) -> bool {
        true
    }
}

/// All parity features `χ_S(x)` for `|S| ≤ d` — the monomial basis of
/// degree-`d` polynomial threshold functions. Dimension
/// `Σ_{k≤d} C(n,k)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LowDegreeFeatures {
    n: usize,
    masks: Vec<u64>,
}

impl LowDegreeFeatures {
    /// Creates the map with all parities of degree ≤ `degree`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 63` or the feature count would exceed `10^7`.
    pub fn new(n: usize, degree: usize) -> Self {
        let count = SubsetsUpTo::count_total(n, degree);
        assert!(
            count <= 10_000_000,
            "low-degree feature space too large: {count}"
        );
        LowDegreeFeatures {
            n,
            masks: SubsetsUpTo::new(n, degree).collect(),
        }
    }

    /// Creates the map from an explicit set of parity masks (e.g. the
    /// stump masks an [`crate::boosting::AdaBoost`] run settled on).
    ///
    /// # Panics
    ///
    /// Panics if `masks` is empty or a mask references a bit `≥ n`.
    pub fn from_masks(n: usize, masks: Vec<u64>) -> Self {
        assert!(!masks.is_empty(), "need at least one mask");
        assert!(n <= 64, "masks address at most 64 bits");
        let valid = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        for &m in &masks {
            assert_eq!(m & !valid, 0, "mask {m:#x} references bits >= {n}");
        }
        LowDegreeFeatures { n, masks }
    }

    /// The parity masks, in degree order.
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }
}

impl FeatureMap for LowDegreeFeatures {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn dimension(&self) -> usize {
        self.masks.len()
    }

    fn features(&self, x: &BitVec) -> Vec<f64> {
        let mut v = Vec::new();
        self.features_into(x, &mut v);
        v
    }

    fn features_into(&self, x: &BitVec, out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.n, "input length mismatch");
        let xm = x.to_u64();
        out.clear();
        out.extend(self.masks.iter().map(|&m| {
            if (xm & m).count_ones() % 2 == 1 {
                -1.0
            } else {
                1.0
            }
        }));
    }

    fn is_sign_valued(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_minus_features() {
        let map = PlusMinusFeatures::new(3);
        let f = map.features(&BitVec::from_bools(&[true, false, true]));
        assert_eq!(f, vec![-1.0, 1.0, -1.0, 1.0]);
        assert_eq!(map.dimension(), 4);
    }

    #[test]
    fn phi_features_match_puf_transform() {
        let map = ArbiterPhiFeatures::new(4);
        let c = BitVec::from_bools(&[true, true, false, true]);
        let f = map.features(&c);
        assert_eq!(f, vec![-1.0, 1.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn low_degree_dimension() {
        let map = LowDegreeFeatures::new(5, 2);
        assert_eq!(map.dimension(), 1 + 5 + 10);
        let f = map.features(&BitVec::zeros(5));
        assert!(f.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn low_degree_features_are_parities() {
        let map = LowDegreeFeatures::new(4, 2);
        let x = BitVec::from_u64(0b0110, 4);
        let f = map.features(&x);
        for (mask, v) in map.masks().iter().zip(&f) {
            let expected = if (0b0110u64 & mask).count_ones() % 2 == 1 {
                -1.0
            } else {
                1.0
            };
            assert_eq!(*v, expected, "mask {mask:b}");
        }
    }

    #[test]
    fn degree_zero_is_constant_only() {
        let map = LowDegreeFeatures::new(10, 0);
        assert_eq!(map.dimension(), 1);
        assert_eq!(map.features(&BitVec::ones(10)), vec![1.0]);
    }

    #[test]
    fn features_into_matches_features_and_reuses_the_buffer() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let n = 13;
        let maps: Vec<Box<dyn FeatureMap>> = vec![
            Box::new(PlusMinusFeatures::new(n)),
            Box::new(ArbiterPhiFeatures::new(n)),
            Box::new(LowDegreeFeatures::new(n, 2)),
        ];
        let mut buf = Vec::new();
        for map in &maps {
            assert!(map.is_sign_valued());
            for _ in 0..20 {
                let x = BitVec::random(n, &mut rng);
                map.features_into(&x, &mut buf);
                assert_eq!(buf, map.features(&x));
                assert_eq!(buf.len(), map.dimension());
            }
        }
    }

    #[test]
    fn from_masks_round_trips() {
        let map = LowDegreeFeatures::from_masks(6, vec![0b1, 0b101, 0b110000]);
        assert_eq!(map.dimension(), 3);
        assert_eq!(map.num_inputs(), 6);
        let x = BitVec::from_u64(0b100001, 6);
        assert_eq!(map.features(&x), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    #[should_panic(expected = "references bits")]
    fn from_masks_rejects_out_of_range_bits() {
        LowDegreeFeatures::from_masks(4, vec![0b10000]);
    }
}
