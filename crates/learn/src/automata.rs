//! Deterministic finite automata — the hypothesis class of Angluin's L*.
//!
//! Section V-B of the paper: an obfuscated sequential circuit (an FSM
//! with a hidden unlock path) can be attacked by learning its DFA
//! representation with Angluin's algorithm, *and* the DFA output of L*
//! is itself an improper representation of the underlying netlist FSM —
//! another instance of the representation axis.

use std::collections::{HashMap, VecDeque};

/// A deterministic finite automaton over the alphabet `{0, …, k−1}`.
///
/// State `0` is the start state.
///
/// # Example
///
/// ```
/// use mlam_learn::Dfa;
///
/// // Accepts words with an odd number of 1-symbols (alphabet {0,1}).
/// let dfa = Dfa::new(2, vec![vec![0, 1], vec![1, 0]], vec![false, true]);
/// assert!(dfa.accepts(&[1, 0, 1, 1]));
/// assert!(!dfa.accepts(&[1, 1]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dfa {
    alphabet: usize,
    /// `transitions[state][symbol] = next state`.
    transitions: Vec<Vec<usize>>,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Creates a DFA.
    ///
    /// # Panics
    ///
    /// Panics if the tables are empty, row lengths differ from the
    /// alphabet size, a transition target is out of range, or
    /// `accepting.len()` differs from the state count.
    pub fn new(alphabet: usize, transitions: Vec<Vec<usize>>, accepting: Vec<bool>) -> Self {
        assert!(alphabet > 0, "alphabet must be non-empty");
        assert!(!transitions.is_empty(), "need at least one state");
        assert_eq!(transitions.len(), accepting.len(), "table size mismatch");
        for row in &transitions {
            assert_eq!(row.len(), alphabet, "transition row length");
            for &t in row {
                assert!(t < transitions.len(), "transition target out of range");
            }
        }
        Dfa {
            alphabet,
            transitions,
            accepting,
        }
    }

    /// Alphabet size.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The state reached from the start state on `word`.
    ///
    /// # Panics
    ///
    /// Panics if a symbol is outside the alphabet.
    pub fn run(&self, word: &[usize]) -> usize {
        let mut s = 0usize;
        for &sym in word {
            assert!(sym < self.alphabet, "symbol {sym} outside alphabet");
            s = self.transitions[s][sym];
        }
        s
    }

    /// Whether the DFA accepts `word`.
    pub fn accepts(&self, word: &[usize]) -> bool {
        self.accepting[self.run(word)]
    }

    /// Whether state `s` is accepting.
    pub fn is_accepting(&self, s: usize) -> bool {
        self.accepting[s]
    }

    /// The transition table.
    pub fn transitions(&self) -> &[Vec<usize>] {
        &self.transitions
    }

    /// Finds a shortest word on which `self` and `other` disagree, via
    /// BFS over the product automaton; `None` if the languages are
    /// equal.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn shortest_disagreement(&self, other: &Dfa) -> Option<Vec<usize>> {
        assert_eq!(self.alphabet, other.alphabet, "alphabet mismatch");
        let mut seen: HashMap<(usize, usize), ()> = HashMap::new();
        let mut queue: VecDeque<(usize, usize, Vec<usize>)> = VecDeque::new();
        queue.push_back((0, 0, Vec::new()));
        seen.insert((0, 0), ());
        while let Some((a, b, word)) = queue.pop_front() {
            if self.accepting[a] != other.accepting[b] {
                return Some(word);
            }
            for sym in 0..self.alphabet {
                let na = self.transitions[a][sym];
                let nb = other.transitions[b][sym];
                if seen.insert((na, nb), ()).is_none() {
                    let mut w = word.clone();
                    w.push(sym);
                    queue.push_back((na, nb, w));
                }
            }
        }
        None
    }

    /// Minimizes the DFA (Hopcroft-style partition refinement over the
    /// reachable part), returning an equivalent DFA with the minimum
    /// number of states.
    pub fn minimized(&self) -> Dfa {
        // Restrict to reachable states.
        let mut reach = vec![false; self.num_states()];
        let mut queue = VecDeque::from([0usize]);
        reach[0] = true;
        while let Some(s) = queue.pop_front() {
            for sym in 0..self.alphabet {
                let t = self.transitions[s][sym];
                if !reach[t] {
                    reach[t] = true;
                    queue.push_back(t);
                }
            }
        }
        let states: Vec<usize> = (0..self.num_states()).filter(|&s| reach[s]).collect();

        // Initial partition by acceptance; refine until stable.
        let mut class = vec![0usize; self.num_states()];
        for &s in &states {
            class[s] = usize::from(self.accepting[s]);
        }
        loop {
            // Signature = (class, classes of successors).
            let mut sig_to_class: HashMap<Vec<usize>, usize> = HashMap::new();
            let mut next_class = vec![0usize; self.num_states()];
            for &s in &states {
                let mut sig = vec![class[s]];
                for sym in 0..self.alphabet {
                    sig.push(class[self.transitions[s][sym]]);
                }
                let next_id = sig_to_class.len();
                let id = *sig_to_class.entry(sig).or_insert(next_id);
                next_class[s] = id;
            }
            if states.iter().all(|&s| next_class[s] == class[s]) {
                break;
            }
            class = next_class;
        }

        // Build the quotient with the start state's class first.
        let num_classes = states.iter().map(|&s| class[s]).max().unwrap_or(0) + 1;
        let mut order = vec![usize::MAX; num_classes];
        let mut count = 0usize;
        order[class[0]] = 0;
        count += 1;
        for &s in &states {
            if order[class[s]] == usize::MAX {
                order[class[s]] = count;
                count += 1;
            }
        }
        let mut transitions = vec![vec![0usize; self.alphabet]; count];
        let mut accepting = vec![false; count];
        for &s in &states {
            let c = order[class[s]];
            accepting[c] = self.accepting[s];
            for sym in 0..self.alphabet {
                transitions[c][sym] = order[class[self.transitions[s][sym]]];
            }
        }
        Dfa::new(self.alphabet, transitions, accepting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parity_dfa() -> Dfa {
        Dfa::new(2, vec![vec![0, 1], vec![1, 0]], vec![false, true])
    }

    #[test]
    fn parity_acceptance() {
        let d = parity_dfa();
        assert!(!d.accepts(&[]));
        assert!(d.accepts(&[1]));
        assert!(!d.accepts(&[1, 1]));
        assert!(d.accepts(&[1, 0, 0, 1, 1]));
    }

    #[test]
    fn shortest_disagreement_none_for_equal() {
        let a = parity_dfa();
        let b = parity_dfa();
        assert_eq!(a.shortest_disagreement(&b), None);
    }

    #[test]
    fn shortest_disagreement_finds_minimal_witness() {
        let parity = parity_dfa();
        // "Always reject" machine.
        let reject = Dfa::new(2, vec![vec![0, 0]], vec![false]);
        let w = parity.shortest_disagreement(&reject).expect("must differ");
        assert_eq!(w, vec![1], "shortest separating word is '1'");
    }

    #[test]
    fn minimization_collapses_duplicate_states() {
        // Two redundant copies of the parity automaton glued together.
        let big = Dfa::new(
            2,
            vec![vec![0, 1], vec![1, 0], vec![2, 3], vec![3, 2]],
            vec![false, true, false, true],
        );
        let min = big.minimized();
        assert_eq!(min.num_states(), 2);
        assert_eq!(min.shortest_disagreement(&parity_dfa()), None);
    }

    #[test]
    fn minimization_preserves_language() {
        // Machine accepting words ending in symbol 1 with a useless state.
        let d = Dfa::new(
            2,
            vec![vec![0, 1], vec![0, 1], vec![2, 2]],
            vec![false, true, true],
        );
        let min = d.minimized();
        assert!(min.num_states() <= 2);
        for w in [vec![], vec![1], vec![0, 1], vec![1, 0], vec![1, 1, 0]] {
            assert_eq!(d.accepts(&w), min.accepts(&w), "word {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn bad_symbol_panics() {
        parity_dfa().run(&[2]);
    }

    #[test]
    #[should_panic(expected = "target out of range")]
    fn bad_transition_panics() {
        Dfa::new(1, vec![vec![5]], vec![false]);
    }
}
