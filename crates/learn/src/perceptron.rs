//! The Perceptron, with mistake counting.
//!
//! The CRP bound of Table I row 1 (Ganji et al. \[9\]) is derived from the
//! Perceptron's *mistake bound*, so the trainer here reports the number
//! of updates it performed — an experiment can check the measured
//! mistakes against the analytic bound. The pocket variant keeps the
//! best-so-far weights, which is what makes the algorithm usable on the
//! non-separable data of Table II.

use crate::dataset::LabeledSet;
use crate::feature_matrix::FeatureMatrix;
use crate::features::{FeatureMap, PlusMinusFeatures};
use mlam_boolean::{BitVec, BooleanFunction};

/// A linear hypothesis over a feature map: logic 1 iff
/// `w·φ(x) ≤ 0` (matching the `χ(1) = −1` encoding).
#[derive(Clone, Debug)]
pub struct LinearModel<M> {
    map: M,
    weights: Vec<f64>,
}

impl<M: FeatureMap> LinearModel<M> {
    /// Creates a model with explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != map.dimension()`.
    pub fn new(map: M, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), map.dimension(), "weight dimension mismatch");
        LinearModel { map, weights }
    }

    /// Zero-initialized model.
    pub fn zeros(map: M) -> Self {
        let d = map.dimension();
        LinearModel {
            map,
            weights: vec![0.0; d],
        }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mutable access to the weights (used by the trainers).
    pub fn weights_mut(&mut self) -> &mut [f64] {
        &mut self.weights
    }

    /// The feature map.
    pub fn feature_map(&self) -> &M {
        &self.map
    }

    /// The real-valued score `w·φ(x)`.
    pub fn score(&self, x: &BitVec) -> f64 {
        self.map
            .features(x)
            .iter()
            .zip(&self.weights)
            .map(|(f, w)| f * w)
            .sum()
    }
}

impl<M: FeatureMap> BooleanFunction for LinearModel<M> {
    fn num_inputs(&self) -> usize {
        self.map.num_inputs()
    }

    fn eval(&self, x: &BitVec) -> bool {
        mlam_boolean::to_bool(self.score(x))
    }
}

/// Outcome of a Perceptron training run.
#[derive(Clone, Debug)]
pub struct PerceptronOutcome<M> {
    /// The trained (pocket-best) model.
    pub model: LinearModel<M>,
    /// Total number of update steps (mistakes) made.
    pub mistakes: usize,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Whether an epoch completed with zero mistakes (data separated).
    pub converged: bool,
    /// Accuracy of the returned model on the training set.
    pub training_accuracy: f64,
}

/// Perceptron trainer over a chosen feature map.
///
/// # Example
///
/// ```
/// use mlam_boolean::LinearThreshold;
/// use mlam_learn::dataset::LabeledSet;
/// use mlam_learn::perceptron::Perceptron;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let target = LinearThreshold::random(12, &mut rng);
/// let train = LabeledSet::sample(&target, 400, &mut rng);
/// let out = Perceptron::new(500).train(&train);
/// assert!(out.training_accuracy > 0.95);
/// ```
#[derive(Clone, Debug)]
pub struct Perceptron {
    max_epochs: usize,
}

impl Perceptron {
    /// Creates a trainer running at most `max_epochs` passes.
    ///
    /// # Panics
    ///
    /// Panics if `max_epochs == 0`.
    pub fn new(max_epochs: usize) -> Self {
        assert!(max_epochs > 0, "need at least one epoch");
        Perceptron { max_epochs }
    }

    /// Trains over the ±1 bit features (hypothesis = LTF over the raw
    /// input — the *proper* representation for halfspace concepts).
    pub fn train(&self, data: &LabeledSet) -> PerceptronOutcome<PlusMinusFeatures> {
        self.train_with(PlusMinusFeatures::new(data.num_inputs()), data)
    }

    /// Trains over an arbitrary feature map.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or the map's arity differs from the
    /// data's.
    pub fn train_with<M: FeatureMap + Clone>(
        &self,
        map: M,
        data: &LabeledSet,
    ) -> PerceptronOutcome<M> {
        assert!(!data.is_empty(), "cannot train on an empty set");
        assert_eq!(map.num_inputs(), data.num_inputs(), "feature map arity");
        let d = map.dimension();
        // Compute the feature matrix once, shared by every epoch and by
        // the pocket error scans (bit-identical to the former
        // per-example Vec<f64> path).
        let fm = FeatureMatrix::build(&map, data);

        let mut w = vec![0.0f64; d];
        let mut pocket = w.clone();
        let mut pocket_err = usize::MAX;
        let mut mistakes = 0usize;
        let mut epochs_run = 0usize;
        let mut converged = false;

        for _ in 0..self.max_epochs {
            epochs_run += 1;
            let mut epoch_mistakes = 0usize;
            for row in 0..fm.examples() {
                let t = fm.label(row);
                let s = fm.dot(row, &w);
                if s * t <= 0.0 {
                    fm.add_signed(row, t, &mut w);
                    epoch_mistakes += 1;
                }
            }
            mistakes += epoch_mistakes;
            let err = fm.error_count(&w);
            if err < pocket_err {
                pocket_err = err;
                pocket.copy_from_slice(&w);
            }
            // Learning-curve checkpoint: the pocket error is already
            // computed every epoch, so the accuracy here is free and
            // matches the final `training_accuracy` definition.
            if mlam_telemetry::curves::recording()
                && (mlam_telemetry::curves::should_checkpoint(
                    epochs_run as u64,
                    self.max_epochs as u64,
                ) || epoch_mistakes == 0)
            {
                mlam_telemetry::curves::checkpoint(
                    "perceptron",
                    epochs_run as u64,
                    1.0 - pocket_err as f64 / fm.examples() as f64,
                    None,
                );
            }
            if epoch_mistakes == 0 {
                converged = true;
                break;
            }
        }

        mlam_telemetry::counter!("learn.perceptron.epochs", epochs_run);
        mlam_telemetry::counter!("learn.perceptron.mistakes", mistakes);
        let model = LinearModel::new(map, pocket);
        let training_accuracy = 1.0 - pocket_err as f64 / fm.examples() as f64;
        PerceptronOutcome {
            model,
            mistakes,
            epochs_run,
            converged,
            training_accuracy,
        }
    }
}

/// The classic Novikoff mistake bound for separable data:
/// `(R/γ)²` where `R` bounds the feature norm and `γ` the margin.
pub fn novikoff_mistake_bound(feature_radius: f64, margin: f64) -> f64 {
    assert!(margin > 0.0, "margin must be positive");
    (feature_radius / margin).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::ArbiterPhiFeatures;
    use mlam_boolean::{FnFunction, LinearThreshold};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_separable_ltf_exactly_on_train() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = LinearThreshold::random(16, &mut rng);
        let train = LabeledSet::sample(&target, 1000, &mut rng);
        let out = Perceptron::new(500).train(&train);
        assert!(out.converged, "perceptron must converge on separable data");
        assert_eq!(out.training_accuracy, 1.0);
        assert!(out.mistakes > 0);
    }

    #[test]
    fn generalizes_to_test_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let target = LinearThreshold::random(16, &mut rng);
        let train = LabeledSet::sample(&target, 3000, &mut rng);
        let test = LabeledSet::sample(&target, 2000, &mut rng);
        let out = Perceptron::new(200).train(&train);
        assert!(
            test.accuracy_of(&out.model) > 0.95,
            "test accuracy {}",
            test.accuracy_of(&out.model)
        );
    }

    #[test]
    fn phi_features_learn_arbiter_style_targets() {
        // A target linear in Φ-space is NOT linear in raw bits, so the
        // representation choice decides learnability — Section V in
        // miniature.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 24;
        let weights: Vec<f64> = (0..=n)
            .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
            .collect();
        let w = weights.clone();
        let target = FnFunction::new(n, move |x: &BitVec| {
            let phi = ArbiterPhiFeatures::new(n).features(x);
            phi.iter().zip(&w).map(|(a, b)| a * b).sum::<f64>() <= 0.0
        });
        let train = LabeledSet::sample(&target, 4000, &mut rng);
        let test = LabeledSet::sample(&target, 2000, &mut rng);

        let phi_out = Perceptron::new(100).train_with(ArbiterPhiFeatures::new(n), &train);
        let raw_out = Perceptron::new(100).train(&train);

        let phi_acc = test.accuracy_of(&phi_out.model);
        let raw_acc = test.accuracy_of(&raw_out.model);
        assert!(phi_acc > 0.95, "phi accuracy {phi_acc}");
        assert!(
            phi_acc > raw_acc + 0.05,
            "phi {phi_acc} should clearly beat raw {raw_acc}"
        );
    }

    #[test]
    fn pocket_handles_nonseparable_data() {
        // XOR labels are not linearly separable; the pocket model must
        // still beat chance on the training set (skewed classes).
        let mut rng = StdRng::seed_from_u64(8);
        let target = FnFunction::new(6, |x: &BitVec| x.count_ones() % 2 == 1);
        let train = LabeledSet::sample(&target, 500, &mut rng);
        let out = Perceptron::new(50).train(&train);
        assert!(!out.converged);
        assert!(out.training_accuracy >= 0.5);
    }

    #[test]
    fn mistake_count_monotone_in_difficulty() {
        let mut rng = StdRng::seed_from_u64(5);
        let easy_target = LinearThreshold::new(vec![10.0, 0.1, 0.1, 0.1], 0.0);
        let easy = LabeledSet::sample(&easy_target, 500, &mut rng);
        let out_easy = Perceptron::new(100).train(&easy);
        assert!(out_easy.converged);
        // A near-degenerate margin produces more mistakes than a huge one.
        let hard_target = LinearThreshold::random(12, &mut rng);
        let hard = LabeledSet::sample(&hard_target, 500, &mut rng);
        let out_hard = Perceptron::new(100).train(&hard);
        assert!(out_hard.mistakes >= out_easy.mistakes);
    }

    #[test]
    fn novikoff_bound_formula() {
        assert_eq!(novikoff_mistake_bound(2.0, 1.0), 4.0);
        assert!(novikoff_mistake_bound(1.0, 0.1) > novikoff_mistake_bound(1.0, 0.5));
    }

    #[test]
    fn linear_model_score_sign_matches_eval() {
        let map = PlusMinusFeatures::new(3);
        let m = LinearModel::new(map, vec![1.0, -1.0, 0.5, 0.0]);
        let x = BitVec::from_bools(&[false, true, false]);
        // score = 1*1 + (-1)*(-1) + 0.5*1 + 0 = 2.5 > 0 -> logic 0.
        assert_eq!(m.score(&x), 2.5);
        assert!(!m.eval(&x));
    }
}
