//! Junta learning: finding the relevant variables with membership
//! queries and learning the restricted function exactly.
//!
//! Corollary 2's proof route goes through Bourgain's theorem: a
//! low-noise-sensitivity LTF is close to an `O(ε^{-3/2})`-junta. This
//! module supplies the algorithmic counterpart — identify the junta's
//! variables, then exhaustively learn the function on them:
//!
//! 1. [`find_relevant_variables`]: binary-search over subcubes with
//!    membership queries — each relevant variable is found with
//!    `O(log n)` queries once a witness pair is in hand, and witness
//!    pairs come from random sampling;
//! 2. [`learn_junta`]: restrict to the found variables and read off the
//!    truth table with `2^k` membership queries.

use crate::oracle::MembershipOracle;
use mlam_boolean::{BitVec, BooleanFunction, TruthTable};
use rand::Rng;

/// A learned junta: a function that only depends on `variables`,
/// realized by a truth table over them.
#[derive(Clone, Debug, PartialEq)]
pub struct JuntaHypothesis {
    n: usize,
    /// The relevant variables, ascending.
    variables: Vec<usize>,
    /// Truth table over the projected inputs (bit `i` of the index =
    /// value of `variables[i]`).
    table: TruthTable,
}

impl JuntaHypothesis {
    /// The relevant variables (ascending).
    pub fn variables(&self) -> &[usize] {
        &self.variables
    }

    /// The truth table over the junta variables.
    pub fn table(&self) -> &TruthTable {
        &self.table
    }
}

impl BooleanFunction for JuntaHypothesis {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn eval(&self, x: &BitVec) -> bool {
        let mut idx = 0u64;
        for (i, &v) in self.variables.iter().enumerate() {
            if x.get(v) {
                idx |= 1 << i;
            }
        }
        self.table.eval_u64(idx)
    }
}

/// Finds the relevant variables of a `k`-junta with membership queries.
///
/// Strategy: sample random pairs `(x, y)`; whenever `f(x) ≠ f(y)`,
/// binary-search the hybrid path from `x` to `y` to isolate one
/// relevant variable (`O(log n)` queries). Pin that variable by
/// re-randomizing and repeat until `attempts` consecutive random pairs
/// produce no new witness.
///
/// # Panics
///
/// Panics if `attempts == 0`.
pub fn find_relevant_variables<O, R>(oracle: &O, attempts: usize, rng: &mut R) -> Vec<usize>
where
    O: MembershipOracle,
    R: Rng + ?Sized,
{
    assert!(attempts > 0);
    let n = oracle.num_inputs();
    let mut relevant: Vec<usize> = Vec::new();
    let mut dry = 0usize;
    while dry < attempts {
        let x = BitVec::random(n, rng);
        // y agrees with x on known-relevant variables (so any response
        // difference is attributable to an unknown variable).
        let mut y = BitVec::random(n, rng);
        for &v in &relevant {
            y.set(v, x.get(v));
        }
        let fx = oracle.query(&x);
        let fy = oracle.query(&y);
        if fx == fy {
            dry += 1;
            continue;
        }
        // Binary search over the hybrid path: walk positions where x
        // and y differ, flipping half of them at a time.
        let diff: Vec<usize> = (0..n).filter(|&i| x.get(i) != y.get(i)).collect();
        let var = isolate(oracle, &x, &diff, fx);
        if !relevant.contains(&var) {
            relevant.push(var);
            dry = 0;
        } else {
            dry += 1;
        }
    }
    relevant.sort_unstable();
    relevant
}

/// Given `f(x) = fx` and `f(x ⊕ diff) ≠ fx`, isolates one variable in
/// `diff` whose flip changes the response, with `O(log |diff|)`
/// membership queries.
fn isolate<O: MembershipOracle>(oracle: &O, x: &BitVec, diff: &[usize], fx: bool) -> usize {
    debug_assert!(!diff.is_empty());
    let mut base = x.clone();
    let mut remaining = diff;
    let mut f_base = fx;
    while remaining.len() > 1 {
        let (half, rest) = remaining.split_at(remaining.len() / 2);
        let mut probe = base.clone();
        for &i in half {
            probe.flip(i);
        }
        let f_probe = oracle.query(&probe);
        if f_probe != f_base {
            // The change is inside `half`.
            remaining = half;
        } else {
            // Commit the flips and continue into the rest.
            base = probe;
            f_base = f_probe;
            remaining = rest;
        }
    }
    remaining[0]
}

/// Outcome of a junta learning run.
#[derive(Clone, Debug)]
pub struct JuntaOutcome {
    /// The learned hypothesis.
    pub hypothesis: JuntaHypothesis,
    /// Membership queries consumed by the table read-off (the variable
    /// search is counted by the oracle itself).
    pub table_queries: usize,
}

/// Learns a junta exactly: find the relevant variables, then read the
/// truth table over them with `2^k` membership queries (irrelevant
/// variables pinned to 0).
///
/// # Panics
///
/// Panics if more than 20 relevant variables are found.
pub fn learn_junta<O, R>(oracle: &O, attempts: usize, rng: &mut R) -> JuntaOutcome
where
    O: MembershipOracle,
    R: Rng + ?Sized,
{
    let n = oracle.num_inputs();
    let variables = find_relevant_variables(oracle, attempts, rng);
    assert!(variables.len() <= 20, "junta too large to tabulate");
    let k = variables.len();
    let mut outputs = Vec::with_capacity(1 << k);
    let mut table_queries = 0usize;
    for idx in 0..(1u64 << k) {
        let mut x = BitVec::zeros(n);
        for (i, &v) in variables.iter().enumerate() {
            if idx >> i & 1 == 1 {
                x.set(v, true);
            }
        }
        outputs.push(oracle.query(&x));
        table_queries += 1;
    }
    JuntaOutcome {
        hypothesis: JuntaHypothesis {
            n,
            variables,
            table: TruthTable::from_outputs(outputs),
        },
        table_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FunctionOracle;
    use mlam_boolean::FnFunction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_the_variables_of_a_three_junta() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = FnFunction::new(32, |x: &BitVec| (x.get(3) & x.get(17)) ^ x.get(29));
        let oracle = FunctionOracle::uniform(&f);
        let vars = find_relevant_variables(&oracle, 60, &mut rng);
        assert_eq!(vars, vec![3, 17, 29]);
    }

    #[test]
    fn learns_the_junta_exactly() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = FnFunction::new(24, |x: &BitVec| x.get(5) ^ (x.get(11) & !x.get(20)));
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_junta(&oracle, 60, &mut rng);
        assert_eq!(out.hypothesis.variables(), &[5, 11, 20]);
        assert_eq!(out.table_queries, 8);
        for _ in 0..500 {
            let x = BitVec::random(24, &mut rng);
            assert_eq!(out.hypothesis.eval(&x), f.eval(&x));
        }
    }

    #[test]
    fn constant_function_has_no_relevant_variables() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = FnFunction::new(16, |_: &BitVec| true);
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_junta(&oracle, 30, &mut rng);
        assert!(out.hypothesis.variables().is_empty());
        assert_eq!(out.table_queries, 1);
        assert!(out.hypothesis.eval(&BitVec::zeros(16)));
    }

    #[test]
    fn query_cost_is_logarithmic_per_variable() {
        let mut rng = StdRng::seed_from_u64(4);
        let f = FnFunction::new(63, |x: &BitVec| x.get(62));
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_junta(&oracle, 40, &mut rng);
        assert_eq!(out.hypothesis.variables(), &[62]);
        // Each witness costs ~log2(63) ≈ 6 queries plus the sampling;
        // the total stays well below n per variable.
        assert!(oracle.queries_used() < 400, "{}", oracle.queries_used());
    }

    #[test]
    fn dictator_junta_predicts_perfectly() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = FnFunction::new(40, |x: &BitVec| !x.get(7));
        let oracle = FunctionOracle::uniform(&f);
        let out = learn_junta(&oracle, 40, &mut rng);
        for _ in 0..200 {
            let x = BitVec::random(40, &mut rng);
            assert_eq!(out.hypothesis.eval(&x), f.eval(&x));
        }
    }
}
