//! From-scratch PAC learning toolkit for hardware adversary modeling.
//!
//! The Rust ML ecosystem offers nothing like the Weka/MATLAB tooling the
//! DATE 2020 paper used, so every algorithm the paper invokes is
//! implemented here directly:
//!
//! | Paper element | Module |
//! |---|---|
//! | random examples vs. membership vs. equivalence queries (Sec. IV) | [`oracle`] |
//! | arbitrary vs. uniform example distributions (Sec. III) | [`distribution`] |
//! | Perceptron with mistake counting (Table I row 1, Table II) | [`perceptron`] |
//! | logistic-regression modeling attack (Rührmair et al. \[8\]) | [`logistic`] |
//! | CMA-ES black-box modeling attack | [`cma_es`] |
//! | LMN low-degree algorithm (Corollary 1) | [`lmn`] |
//! | Chow-parameter LTF reconstruction (Sec. V-A, Table II) | [`chow`] |
//! | sparse F₂-polynomial learning with membership queries (Cor. 2) | [`f2poly`] |
//! | Angluin's L* for DFAs (Sec. V-B) | [`lstar`], [`automata`] |
//!
//! All learners share the [`oracle`] abstractions, so an experiment can
//! swap the access model without touching the algorithm — which is the
//! paper's entire point.
//!
//! # Quickstart
//!
//! ```
//! use mlam_boolean::LinearThreshold;
//! use mlam_learn::dataset::LabeledSet;
//! use mlam_learn::perceptron::Perceptron;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(11);
//! let target = LinearThreshold::random(16, &mut rng);
//! let train = LabeledSet::sample(&target, 500, &mut rng);
//! let outcome = Perceptron::new(200).train(&train);
//! assert!(outcome.training_accuracy > 0.95);
//! ```

#![warn(missing_docs)]

pub mod automata;
pub mod boosting;
pub mod chow;
pub mod cma_es;
pub mod dataset;
pub mod distribution;
pub mod eval;
pub mod f2poly;
pub mod feature_matrix;
pub mod features;
pub mod junta;
pub mod km;
pub mod lmn;
pub mod logistic;
pub mod lstar;
pub mod oracle;
pub mod perceptron;

pub use automata::Dfa;
pub use dataset::LabeledSet;
pub use distribution::ChallengeDistribution;
pub use feature_matrix::FeatureMatrix;
pub use oracle::{
    EquivalenceResult, ExampleOracle, FunctionOracle, MembershipOracle, UnreliableOracle,
};
