//! CMA-ES: covariance matrix adaptation evolution strategy.
//!
//! The classic *black-box* modeling attack on XOR Arbiter PUFs (Becker's
//! reliability attack and its accuracy-only variant) optimizes the delay
//! parameters of all `k` chains jointly with CMA-ES, using nothing but
//! the training error as fitness — no gradients, no representation
//! commitment beyond the delay model itself. This module provides a
//! self-contained CMA-ES ([`CmaEs`]) following Hansen's reference
//! formulation (rank-μ update, cumulation paths, step-size control) and
//! the PUF-specific wrapper [`fit_xor_delay_model`].

use crate::dataset::LabeledSet;
use crate::feature_matrix::FeatureMatrix;
use crate::features::ArbiterPhiFeatures;
use mlam_boolean::{BitVec, BooleanFunction};
use rand::Rng;

/// Options for a CMA-ES run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CmaEsOptions {
    /// Population size λ (0 = use the default `4 + ⌊3·ln d⌋`).
    pub population: usize,
    /// Initial step size σ₀.
    pub sigma0: f64,
    /// Maximum number of generations.
    pub max_generations: usize,
    /// Stop when the best fitness reaches this value.
    pub target_fitness: f64,
    /// Random restarts (best result kept).
    pub restarts: usize,
}

impl Default for CmaEsOptions {
    fn default() -> Self {
        CmaEsOptions {
            population: 0,
            sigma0: 0.5,
            max_generations: 300,
            target_fitness: 0.0,
            restarts: 1,
        }
    }
}

/// Result of a CMA-ES run.
#[derive(Clone, Debug)]
pub struct CmaEsResult {
    /// Best parameter vector found.
    pub best: Vec<f64>,
    /// Its fitness.
    pub best_fitness: f64,
    /// Generations consumed (across restarts).
    pub generations: usize,
    /// Fitness evaluations consumed.
    pub evaluations: usize,
}

/// A self-contained CMA-ES minimizer.
///
/// # Example
///
/// ```
/// use mlam_learn::cma_es::{CmaEs, CmaEsOptions};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let sphere = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
/// let opts = CmaEsOptions { max_generations: 200, ..Default::default() };
/// let result = CmaEs::new(opts).minimize(&sphere, &vec![1.0; 8], &mut rng);
/// assert!(result.best_fitness < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct CmaEs {
    options: CmaEsOptions,
}

impl CmaEs {
    /// Creates a minimizer with the given options.
    pub fn new(options: CmaEsOptions) -> Self {
        assert!(options.sigma0 > 0.0, "sigma0 must be positive");
        assert!(options.max_generations > 0);
        assert!(options.restarts > 0);
        CmaEs { options }
    }

    /// Minimizes `f` starting from `x0`, returning the best point found.
    pub fn minimize<F, R>(&self, f: &F, x0: &[f64], rng: &mut R) -> CmaEsResult
    where
        F: Fn(&[f64]) -> f64,
        R: Rng + ?Sized,
    {
        assert!(!x0.is_empty(), "dimension must be positive");
        let mut best: Vec<f64> = x0.to_vec();
        let mut best_fitness = f(x0);
        let mut generations = 0usize;
        let mut evaluations = 1usize;

        for restart in 0..self.options.restarts {
            let start: Vec<f64> = if restart == 0 {
                x0.to_vec()
            } else {
                x0.iter().map(|v| v + gaussian(rng)).collect()
            };
            let (b, bf, g, e) = self.run_once(f, &start, rng, generations);
            generations += g;
            evaluations += e;
            if bf < best_fitness {
                best_fitness = bf;
                best = b;
            }
            if best_fitness <= self.options.target_fitness {
                break;
            }
        }
        mlam_telemetry::counter!("learn.cma_es.generations", generations);
        mlam_telemetry::counter!("learn.cma_es.evaluations", evaluations);
        CmaEsResult {
            best,
            best_fitness,
            generations,
            evaluations,
        }
    }

    /// One restart of the strategy. `gen_offset` is the generation
    /// count consumed by earlier restarts, so learning-curve iteration
    /// numbers stay monotone across the whole [`CmaEs::minimize`] call.
    fn run_once<F, R>(
        &self,
        f: &F,
        x0: &[f64],
        rng: &mut R,
        gen_offset: usize,
    ) -> (Vec<f64>, f64, usize, usize)
    where
        F: Fn(&[f64]) -> f64,
        R: Rng + ?Sized,
    {
        let d = x0.len();
        let lambda = if self.options.population > 0 {
            self.options.population
        } else {
            4 + (3.0 * (d as f64).ln()).floor() as usize
        };
        let mu = lambda / 2;
        // Log weights.
        let mut weights: Vec<f64> = (0..mu)
            .map(|i| ((mu as f64 + 0.5).ln() - ((i + 1) as f64).ln()).max(0.0))
            .collect();
        let wsum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= wsum;
        }
        let mueff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();

        let dn = d as f64;
        let cc = (4.0 + mueff / dn) / (dn + 4.0 + 2.0 * mueff / dn);
        let cs = (mueff + 2.0) / (dn + mueff + 5.0);
        let c1 = 2.0 / ((dn + 1.3).powi(2) + mueff);
        let cmu = (1.0 - c1).min(2.0 * (mueff - 2.0 + 1.0 / mueff) / ((dn + 2.0).powi(2) + mueff));
        let damps = 1.0 + 2.0 * (0.0f64).max(((mueff - 1.0) / (dn + 1.0)).sqrt() - 1.0) + cs;
        let chi_n = dn.sqrt() * (1.0 - 1.0 / (4.0 * dn) + 1.0 / (21.0 * dn * dn));

        let mut mean = x0.to_vec();
        let mut sigma = self.options.sigma0;
        let mut cov = identity(d);
        let mut eig_vecs = identity(d);
        let mut eig_vals = vec![1.0f64; d];
        let mut inv_sqrt = identity(d);
        let mut pc = vec![0.0f64; d];
        let mut ps = vec![0.0f64; d];
        let mut eigen_stale = 0usize;
        let eigen_interval = (1.0 / ((c1 + cmu) * dn * 10.0)).ceil().max(1.0) as usize;

        let mut best = mean.clone();
        let mut best_fitness = f(&mean);
        let mut evaluations = 1usize;
        let mut generations = 0usize;

        for gen in 0..self.options.max_generations {
            generations = gen + 1;
            // Sample λ candidates: x = m + σ·B·D·z.
            let mut pop: Vec<(Vec<f64>, Vec<f64>, f64)> = Vec::with_capacity(lambda);
            for _ in 0..lambda {
                let z: Vec<f64> = (0..d).map(|_| gaussian(rng)).collect();
                let mut y = vec![0.0f64; d];
                for (j, yj) in y.iter_mut().enumerate() {
                    let mut s = 0.0;
                    for (i, zi) in z.iter().enumerate() {
                        s += eig_vecs[j * d + i] * eig_vals[i].sqrt() * zi;
                    }
                    *yj = s;
                }
                let x: Vec<f64> = mean.iter().zip(&y).map(|(m, yi)| m + sigma * yi).collect();
                let fit = f(&x);
                evaluations += 1;
                pop.push((x, y, fit));
            }
            pop.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("fitness must not be NaN"));
            if pop[0].2 < best_fitness {
                best_fitness = pop[0].2;
                best = pop[0].0.clone();
            }
            // Learning-curve checkpoint at log-spaced generations. The
            // fitness is an error fraction for the PUF objectives, so
            // 1 − best is the exact training accuracy there (for other
            // objectives it is recorded as a progress proxy).
            if mlam_telemetry::curves::recording()
                && mlam_telemetry::curves::should_checkpoint(
                    generations as u64,
                    self.options.max_generations as u64,
                )
            {
                mlam_telemetry::curves::checkpoint(
                    "cma_es",
                    (gen_offset + generations) as u64,
                    1.0 - best_fitness,
                    None,
                );
            }
            if best_fitness <= self.options.target_fitness {
                break;
            }

            // Recombination.
            let mut y_w = vec![0.0f64; d];
            for (w, (_, y, _)) in weights.iter().zip(pop.iter().take(mu)) {
                for (acc, yi) in y_w.iter_mut().zip(y) {
                    *acc += w * yi;
                }
            }
            for (m, yw) in mean.iter_mut().zip(&y_w) {
                *m += sigma * yw;
            }

            // Step-size path: ps = (1-cs) ps + sqrt(cs(2-cs)μeff)·C^{-1/2}·y_w.
            let mut c_inv_y = vec![0.0f64; d];
            for (j, cj) in c_inv_y.iter_mut().enumerate() {
                let mut s = 0.0;
                for i in 0..d {
                    s += inv_sqrt[j * d + i] * y_w[i];
                }
                *cj = s;
            }
            let cs_norm = (cs * (2.0 - cs) * mueff).sqrt();
            for (p, c) in ps.iter_mut().zip(&c_inv_y) {
                *p = (1.0 - cs) * *p + cs_norm * c;
            }
            let ps_norm = ps.iter().map(|v| v * v).sum::<f64>().sqrt();
            let hsig = ps_norm / (1.0 - (1.0 - cs).powi(2 * (gen as i32 + 1))).sqrt() / chi_n
                < 1.4 + 2.0 / (dn + 1.0);

            // Covariance path.
            let cc_norm = (cc * (2.0 - cc) * mueff).sqrt();
            for (p, yw) in pc.iter_mut().zip(&y_w) {
                *p = (1.0 - cc) * *p + if hsig { cc_norm * yw } else { 0.0 };
            }

            // Covariance update (rank-1 + rank-μ).
            let delta_hsig = if hsig { 0.0 } else { cc * (2.0 - cc) };
            for j in 0..d {
                for i in 0..d {
                    let mut v = (1.0 - c1 - cmu) * cov[j * d + i]
                        + c1 * (pc[j] * pc[i] + delta_hsig * cov[j * d + i]);
                    for (w, (_, y, _)) in weights.iter().zip(pop.iter().take(mu)) {
                        v += cmu * w * y[j] * y[i];
                    }
                    cov[j * d + i] = v;
                }
            }

            // Step-size update.
            sigma *= ((cs / damps) * (ps_norm / chi_n - 1.0)).exp();
            if !sigma.is_finite() || sigma > 1e6 {
                break;
            }

            // Lazy eigendecomposition.
            eigen_stale += 1;
            if eigen_stale >= eigen_interval {
                eigen_stale = 0;
                // Symmetrize and decompose.
                for j in 0..d {
                    for i in 0..j {
                        let avg = 0.5 * (cov[j * d + i] + cov[i * d + j]);
                        cov[j * d + i] = avg;
                        cov[i * d + j] = avg;
                    }
                }
                let (vals, vecs) = jacobi_eigen(&cov, d);
                eig_vals = vals.iter().map(|v| v.max(1e-14)).collect();
                eig_vecs = vecs;
                // inv_sqrt = B·D^{-1/2}·Bᵀ.
                for j in 0..d {
                    for i in 0..d {
                        let mut s = 0.0;
                        for k in 0..d {
                            s += eig_vecs[j * d + k] * eig_vecs[i * d + k] / eig_vals[k].sqrt();
                        }
                        inv_sqrt[j * d + i] = s;
                    }
                }
            }
        }
        (best, best_fitness, generations, evaluations)
    }
}

fn identity(d: usize) -> Vec<f64> {
    let mut m = vec![0.0; d * d];
    for i in 0..d {
        m[i * d + i] = 1.0;
    }
    m
}

/// Jacobi eigendecomposition of a symmetric matrix (row-major `d×d`).
/// Returns `(eigenvalues, eigenvectors)` with eigenvector `k` stored in
/// column `k` (`vecs[row*d + k]`).
pub fn jacobi_eigen(matrix: &[f64], d: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(matrix.len(), d * d);
    let mut a = matrix.to_vec();
    let mut v = identity(d);
    for _sweep in 0..100 {
        // Off-diagonal norm.
        let mut off = 0.0;
        for j in 0..d {
            for i in 0..j {
                off += a[j * d + i] * a[j * d + i];
            }
        }
        if off < 1e-22 {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                let apq = a[p * d + q];
                if apq.abs() < 1e-18 {
                    continue;
                }
                let app = a[p * d + p];
                let aqq = a[q * d + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..d {
                    let akp = a[k * d + p];
                    let akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p * d + k];
                    let aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
                for k in 0..d {
                    let vkp = v[k * d + p];
                    let vkq = v[k * d + q];
                    v[k * d + p] = c * vkp - s * vkq;
                    v[k * d + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let vals: Vec<f64> = (0..d).map(|i| a[i * d + i]).collect();
    (vals, v)
}

/// A learned XOR-of-delay-models hypothesis: `k` weight vectors over the
/// arbiter Φ features; the response is the XOR (sign product) of the
/// chain outputs.
#[derive(Clone, Debug, PartialEq)]
pub struct XorDelayModel {
    n: usize,
    /// `k` chains × `n+1` weights, flattened.
    weights: Vec<f64>,
    k: usize,
}

impl XorDelayModel {
    /// Builds a model from flattened weights (`k·(n+1)` values).
    ///
    /// # Panics
    ///
    /// Panics if the length is not `k·(n+1)` or `k == 0`.
    pub fn new(n: usize, k: usize, weights: Vec<f64>) -> Self {
        assert!(k > 0);
        assert_eq!(weights.len(), k * (n + 1), "weight length mismatch");
        XorDelayModel { n, weights, k }
    }

    /// Number of chains.
    pub fn num_chains(&self) -> usize {
        self.k
    }

    /// The flattened weight matrix.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl BooleanFunction for XorDelayModel {
    fn num_inputs(&self) -> usize {
        self.n
    }

    fn eval(&self, x: &BitVec) -> bool {
        assert_eq!(x.len(), self.n, "input length mismatch");
        // Suffix-parity sign words stand in for the Φ vector: bit `i`
        // set ⇔ Φ_i = −1, so each `w·Φ` term is an exact sign flip and
        // no per-call `Vec<f64>` is materialized.
        let signs = x.suffix_parity_words();
        let mut prod = 1.0f64;
        for chain in self.weights.chunks(self.n + 1) {
            let mut s = 0.0f64;
            for (i, &w) in chain[..self.n].iter().enumerate() {
                s += f64::from_bits(w.to_bits() ^ (((signs[i / 64] >> (i % 64)) & 1) << 63));
            }
            s += chain[self.n];
            prod *= if s < 0.0 { -1.0 } else { 1.0 };
        }
        prod < 0.0
    }
}

/// Fits a `k`-chain XOR delay model to labeled CRPs with CMA-ES, using
/// the training error as fitness. This is the representation-faithful
/// black-box attack: it optimizes in the PUF's own parameter space
/// without gradients.
///
/// # Panics
///
/// Panics if `data` is empty or `k == 0`.
pub fn fit_xor_delay_model<R: Rng + ?Sized>(
    data: &LabeledSet,
    k: usize,
    options: CmaEsOptions,
    rng: &mut R,
) -> (XorDelayModel, CmaEsResult) {
    assert!(!data.is_empty());
    assert!(k > 0);
    let n = data.num_inputs();
    // The Φ features are packed once (one sign bit per feature) and
    // shared by every fitness evaluation of every generation.
    let fm = FeatureMatrix::build(&ArbiterPhiFeatures::new(n), data);
    let d = k * (n + 1);
    let objective = |theta: &[f64]| -> f64 {
        let mut wrong = 0usize;
        for row in 0..fm.examples() {
            let mut prod = 1.0f64;
            for chain in theta.chunks(n + 1) {
                let s = fm.dot(row, chain);
                prod *= if s < 0.0 { -1.0 } else { 1.0 };
            }
            if prod * fm.label(row) < 0.0 {
                wrong += 1;
            }
        }
        wrong as f64 / fm.examples() as f64
    };
    let x0: Vec<f64> = (0..d).map(|_| 0.3 * gaussian(rng)).collect();
    let result = CmaEs::new(options).minimize(&objective, &x0, rng);
    let model = XorDelayModel::new(n, k, result.best.clone());
    (model, result)
}

fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>();
        if u > f64::EPSILON {
            let v: f64 = rng.gen();
            return (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn minimizes_sphere() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>();
        let r = CmaEs::new(CmaEsOptions {
            max_generations: 300,
            ..Default::default()
        })
        .minimize(&f, &[2.0; 6], &mut rng);
        assert!(r.best_fitness < 1e-8, "fitness {}", r.best_fitness);
    }

    #[test]
    fn minimizes_shifted_ellipsoid() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = |x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(i, v)| (i as f64 + 1.0) * (v - 1.0) * (v - 1.0))
                .sum::<f64>()
        };
        let r = CmaEs::new(CmaEsOptions {
            max_generations: 500,
            ..Default::default()
        })
        .minimize(&f, &[0.0; 5], &mut rng);
        assert!(r.best_fitness < 1e-6, "fitness {}", r.best_fitness);
        for v in &r.best {
            assert!((v - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn minimizes_rosenbrock_2d() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = |x: &[f64]| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2);
        let r = CmaEs::new(CmaEsOptions {
            max_generations: 800,
            restarts: 2,
            ..Default::default()
        })
        .minimize(&f, &[-1.0, 1.0], &mut rng);
        assert!(r.best_fitness < 1e-4, "fitness {}", r.best_fitness);
    }

    #[test]
    fn jacobi_recovers_diagonal() {
        let m = vec![3.0, 0.0, 0.0, 1.0];
        let (vals, _) = jacobi_eigen(&m, 2);
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((sorted[0] - 1.0).abs() < 1e-10);
        assert!((sorted[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_orthonormal_vectors() {
        let m = vec![2.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 1.5];
        let (vals, vecs) = jacobi_eigen(&m, 3);
        // Check A v = λ v for each eigenpair.
        for k in 0..3 {
            for row in 0..3 {
                let av: f64 = (0..3).map(|c| m[row * 3 + c] * vecs[c * 3 + k]).sum();
                assert!(
                    (av - vals[k] * vecs[row * 3 + k]).abs() < 1e-8,
                    "eigenpair {k} row {row}"
                );
            }
        }
    }

    #[test]
    fn fits_single_arbiter_chain() {
        let mut rng = StdRng::seed_from_u64(4);
        // Target: 1-chain delay model (k=1) on 8 stages.
        let w: Vec<f64> = (0..9).map(|_| gaussian(&mut rng)).collect();
        let target = XorDelayModel::new(8, 1, w);
        let train = LabeledSet::sample(&target, 400, &mut rng);
        let (model, result) = fit_xor_delay_model(
            &train,
            1,
            CmaEsOptions {
                max_generations: 200,
                target_fitness: 0.01,
                ..Default::default()
            },
            &mut rng,
        );
        assert!(
            result.best_fitness <= 0.05,
            "fitness {}",
            result.best_fitness
        );
        let test = LabeledSet::sample(&target, 500, &mut rng);
        assert!(test.accuracy_of(&model) > 0.9);
    }
}
