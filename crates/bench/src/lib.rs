pub(crate) const _DUMMY: () = ();
