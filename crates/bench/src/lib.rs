//! Shared harness for the benchmark binaries: CLI parsing, the
//! telemetry [`Session`] that turns experiment runs into a
//! [`RunManifest`], and [`run_all`] — the full reproduction sequence
//! used by `repro_all` and the integration tests.
//!
//! Output contract (the observability promise): everything a binary
//! printed before telemetry existed still goes to stdout unchanged;
//! the session only *adds* files under `--json <dir>` and stderr lines
//! under `MLAM_LOG`.

use mlam::report::Table;
use mlam::telemetry::{self, ExperimentRecord, RunManifest};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The fixed root seed every reproduction binary uses.
pub const REPRO_SEED: u64 = 0xDA7E_2020;

/// Workspace crates whose (shared) version is recorded in the manifest.
const WORKSPACE_CRATES: &[&str] = &[
    "mlam",
    "mlam-bench",
    "mlam-boolean",
    "mlam-learn",
    "mlam-locking",
    "mlam-netlist",
    "mlam-puf",
    "mlam-telemetry",
];

/// Options shared by all benchmark binaries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CliOptions {
    /// Use the reduced `quick()` parameter sets.
    pub quick: bool,
    /// Write `manifest.json`, `metrics.jsonl`, `events.jsonl` and one
    /// `<experiment>.json` per experiment into this directory.
    pub json_dir: Option<PathBuf>,
    /// Allow `--json` to overwrite a directory that already holds a
    /// completed run (a `manifest.json`).
    pub force: bool,
}

/// Parses `--quick`, `--json <dir>` and `--force` from an argument
/// iterator (unrecognized arguments are ignored, as the binaries
/// always did).
///
/// # Panics
///
/// Panics if `--json` is not followed by a directory path.
pub fn parse_cli<I: IntoIterator<Item = String>>(args: I) -> CliOptions {
    let mut options = CliOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--json" => {
                let dir = iter.next().expect("--json requires a directory argument");
                options.json_dir = Some(PathBuf::from(dir));
            }
            "--force" => options.force = true,
            _ => {}
        }
    }
    options
}

/// One table of an experiment, in the machine-readable `--json` form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableJson {
    pub title: String,
    pub header: Vec<String>,
    /// Rows as objects keyed by column header
    /// ([`Table::to_json_rows`]).
    pub rows: serde_json::Value,
}

impl TableJson {
    fn from_table(table: &Table) -> TableJson {
        TableJson {
            title: table.title().to_string(),
            header: table.header().to_vec(),
            rows: table.to_json_rows(),
        }
    }
}

/// The structured result file written as `<dir>/<experiment>.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentJson {
    pub name: String,
    pub seed: u64,
    pub quick: bool,
    /// Wall-clock seconds spent in the driver.
    pub seconds: f64,
    /// Telemetry counter increments attributable to this experiment.
    pub counters: BTreeMap<String, u64>,
    pub tables: Vec<TableJson>,
}

/// A reproduction run in progress: wraps every experiment driver call
/// with wall-clock timing and metric snapshots, accumulating a
/// [`RunManifest`].
pub struct Session {
    manifest: RunManifest,
    run_dir: Option<telemetry::RunDir>,
    started: Instant,
}

impl Session {
    /// Starts a session for the named tool. When `--json` was given,
    /// claims the output directory as a [`telemetry::RunDir`] (created
    /// recursively; an existing `manifest.json` is refused without
    /// `--force`) and installs a [`telemetry::JsonlSink`] for span
    /// events at `events.jsonl`.
    ///
    /// # Panics
    ///
    /// Panics if the JSON output directory cannot be claimed; the
    /// message names the offending path.
    pub fn start(tool: &str, options: &CliOptions) -> Session {
        let mut manifest = RunManifest::new(tool, REPRO_SEED, options.quick);
        let version = env!("CARGO_PKG_VERSION");
        for name in WORKSPACE_CRATES {
            manifest
                .crate_versions
                .push((name.to_string(), version.to_string()));
        }
        let run_dir = options.json_dir.as_ref().map(|dir| {
            let run_dir =
                telemetry::RunDir::create(dir, options.force).unwrap_or_else(|e| panic!("{e}"));
            let events = run_dir.file("events.jsonl");
            let sink = telemetry::JsonlSink::create(&events)
                .unwrap_or_else(|e| panic!("cannot open {}: {e}", events.display()));
            telemetry::add_sink(Box::new(sink));
            run_dir
        });
        Session {
            manifest,
            run_dir,
            started: Instant::now(),
        }
    }

    /// The root seed binaries should feed their RNG from.
    pub fn seed(&self) -> u64 {
        self.manifest.seed
    }

    /// Whether this session runs the reduced parameter sets.
    pub fn quick(&self) -> bool {
        self.manifest.quick
    }

    /// Runs one named experiment: times the driver, attributes counter
    /// increments to it, records an [`ExperimentRecord`], and (under
    /// `--json`) writes `<dir>/<name>.json` with the rendered tables.
    /// Returns the driver's result; never writes to stdout.
    pub fn run<T>(
        &mut self,
        name: &str,
        driver: impl FnOnce() -> T,
        render: impl FnOnce(&T) -> Vec<Table>,
    ) -> T {
        let before = telemetry::snapshot();
        let started = Instant::now();
        let value = driver();
        let seconds = started.elapsed().as_secs_f64();
        let counters = telemetry::snapshot().counter_deltas_since(&before);
        self.manifest.experiments.push(ExperimentRecord {
            name: name.to_string(),
            seconds,
            counters: counters.clone(),
        });
        if let Some(dir) = &self.run_dir {
            let record = ExperimentJson {
                name: name.to_string(),
                seed: self.manifest.seed,
                quick: self.manifest.quick,
                seconds,
                counters,
                tables: render(&value).iter().map(TableJson::from_table).collect(),
            };
            write_json(&dir.file(&format!("{name}.json")), &record);
        }
        value
    }

    /// Finalizes the manifest (total wall-clock, final metrics) and,
    /// under `--json`, writes `manifest.json` and `metrics.jsonl`.
    /// Returns the manifest for in-process inspection.
    pub fn finish(mut self) -> RunManifest {
        self.manifest.total_seconds = self.started.elapsed().as_secs_f64();
        self.manifest.final_metrics = telemetry::snapshot();
        if let Some(dir) = &self.run_dir {
            write_json(&dir.file("manifest.json"), &self.manifest);
            let path = dir.file("metrics.jsonl");
            let file = dir
                .create_file("metrics.jsonl")
                .unwrap_or_else(|e| panic!("{e}"));
            telemetry::write_metrics_jsonl(file, &self.manifest.final_metrics)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        self.manifest
    }
}

fn write_json<T: serde::Serialize>(path: &Path, value: &T) {
    let json = serde_json::to_string_pretty(value)
        .unwrap_or_else(|e| panic!("cannot serialize {}: {e}", path.display()));
    std::fs::write(path, json + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Runs every experiment in sequence, printing each table to stdout
/// exactly as `repro_all` always has, while the session records
/// timing, counters and (under `--json`) structured results.
pub fn run_all(session: &mut Session) {
    use mlam::experiments::ablations::{run_ablations, AblationParams};
    use mlam::experiments::ac0::{run_ac0, Ac0Params};
    use mlam::experiments::corollary2::{run_corollary2, Corollary2Params};
    use mlam::experiments::exact_vs_approx::{run_exact_vs_approx, ExactVsApproxParams};
    use mlam::experiments::interpose::{run_interpose, InterposeParams};
    use mlam::experiments::lockdown::{run_lockdown, LockdownParams};
    use mlam::experiments::locking::{run_locking, LockingParams};
    use mlam::experiments::rocknroll::{run_rocknroll, RocknRollParams};
    use mlam::experiments::sequential::{run_sequential, SequentialParams};
    use mlam::experiments::spectral::{run_spectral, SpectralParams};
    use mlam::experiments::{
        run_table1, run_table2, run_table3, Table1Params, Table2Params, Table3Params,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let _span = telemetry::span("bench.run_all").attr("quick", session.quick());
    let quick = session.quick();
    let mut rng = StdRng::seed_from_u64(session.seed());

    let t1 = if quick {
        Table1Params::quick()
    } else {
        Table1Params::paper()
    };
    let r1 = session.run(
        "table1",
        || run_table1(&t1, &mut rng),
        |r| vec![r.to_table(), r.empirical_table()],
    );
    println!("{}", r1.to_table());
    println!("{}", r1.empirical_table());

    let t2 = if quick {
        Table2Params::quick()
    } else {
        Table2Params::paper()
    };
    let r2 = session.run(
        "table2",
        || run_table2(&t2, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", r2.to_table());

    let t3 = if quick {
        Table3Params::quick()
    } else {
        Table3Params::paper()
    };
    let r3 = session.run(
        "table3",
        || run_table3(&t3, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", r3.to_table());

    let c2 = if quick {
        Corollary2Params::quick()
    } else {
        Corollary2Params::paper()
    };
    let rc2 = session.run(
        "corollary2",
        || run_corollary2(&c2, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", rc2.to_table());

    let lk = if quick {
        LockingParams::quick()
    } else {
        LockingParams::paper()
    };
    let rlk = session.run(
        "locking",
        || run_locking(&lk, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", rlk.to_table());

    let sq = if quick {
        SequentialParams::quick()
    } else {
        SequentialParams::paper()
    };
    let rsq = session.run(
        "sequential",
        || run_sequential(&sq, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", rsq.to_table());

    let ea = if quick {
        ExactVsApproxParams::quick()
    } else {
        ExactVsApproxParams::paper()
    };
    let rea = session.run(
        "exact_vs_approx",
        || run_exact_vs_approx(&ea, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", rea.to_table());

    let a0 = if quick {
        Ac0Params::quick()
    } else {
        Ac0Params::paper()
    };
    let ra0 = session.run("ac0", || run_ac0(&a0, &mut rng), |r| vec![r.to_table()]);
    println!("{}", ra0.to_table());

    let sp = if quick {
        SpectralParams::quick()
    } else {
        SpectralParams::paper()
    };
    let rsp = session.run(
        "spectral",
        || run_spectral(&sp, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", rsp.to_table());

    let ip = if quick {
        InterposeParams::quick()
    } else {
        InterposeParams::paper()
    };
    let rip = session.run(
        "interpose",
        || run_interpose(&ip, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", rip.to_table());

    let rr = if quick {
        RocknRollParams::quick()
    } else {
        RocknRollParams::paper()
    };
    let rrr = session.run(
        "rocknroll",
        || run_rocknroll(&rr, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", rrr.to_table());

    let ld = if quick {
        LockdownParams::quick()
    } else {
        LockdownParams::paper()
    };
    let rld = session.run(
        "lockdown",
        || run_lockdown(&ld, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", rld.to_table());

    let ab = if quick {
        AblationParams::quick()
    } else {
        AblationParams::paper()
    };
    let rab = session.run(
        "ablations",
        || run_ablations(&ab, &mut rng),
        |r| r.to_tables(),
    );
    for table in rab.to_tables() {
        println!("{table}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parses_quick_and_json() {
        let opts = parse_cli(["bin", "--quick", "--json", "out/dir", "--force"].map(String::from));
        assert!(opts.quick);
        assert!(opts.force);
        assert_eq!(opts.json_dir.as_deref(), Some(Path::new("out/dir")));
        let none = parse_cli(["bin", "--other"].map(String::from));
        assert_eq!(none, CliOptions::default());
    }

    #[test]
    fn session_refuses_to_clobber_a_finished_run() {
        let dir = std::env::temp_dir().join(format!("mlam_session_clobber_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), "{}\n").unwrap();
        let options = CliOptions {
            quick: true,
            json_dir: Some(dir.clone()),
            force: false,
        };
        let result = std::panic::catch_unwind(|| Session::start("test-tool", &options));
        assert!(result.is_err(), "Session::start must refuse to clobber");
        let forced = CliOptions {
            force: true,
            ..options
        };
        let session = Session::start("test-tool", &forced);
        session.finish();
        assert!(dir.join("metrics.jsonl").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "--json requires a directory")]
    fn cli_rejects_dangling_json_flag() {
        parse_cli(["bin", "--json"].map(String::from));
    }

    #[test]
    fn session_records_experiments_without_json() {
        let mut session = Session::start("test-tool", &CliOptions::default());
        let value = session.run(
            "demo",
            || {
                mlam::telemetry::counter!("bench.test.session_counter", 3);
                41 + 1
            },
            |_| Vec::new(),
        );
        assert_eq!(value, 42);
        let manifest = session.finish();
        assert_eq!(manifest.tool, "test-tool");
        assert_eq!(manifest.experiments.len(), 1);
        let exp = &manifest.experiments[0];
        assert_eq!(exp.name, "demo");
        assert!(exp.seconds >= 0.0);
        assert_eq!(exp.counters["bench.test.session_counter"], 3);
        assert!(manifest.total_seconds >= exp.seconds);
        assert!(!manifest.crate_versions.is_empty());
    }
}
