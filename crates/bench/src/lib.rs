//! Shared harness for the benchmark binaries: CLI parsing, the
//! telemetry [`Session`] that turns experiment runs into a
//! [`RunManifest`], and [`run_all`] — the full reproduction sequence
//! used by `repro_all` and the integration tests.
//!
//! Output contract (the observability promise): everything a binary
//! printed before telemetry existed still goes to stdout unchanged;
//! the session only *adds* files under `--json <dir>` and stderr lines
//! under `MLAM_LOG`.
//!
//! Fault tolerance: a batch run checkpoints every finished experiment
//! into its run directory ([`CheckpointStore`]), failed experiments
//! degrade to partial records (`degraded: true`) instead of sinking
//! the run, and `--resume <dir>` continues an interrupted run by
//! skipping every complete checkpoint — bit-identical to the run the
//! kill interrupted, because each experiment is a pure function of
//! `(seed, quick, index)`. See `HARNESS.md` for the full story.

use mlam::experiments::checkpoint::CheckpointState;
use mlam::report::Table;
use mlam::telemetry::curves::{self, CurveRecorder, CurveSink, CURVES_FILE};
use mlam::telemetry::{self, ExperimentRecord, RunManifest};
use mlam_monitor::{LiveCurves, Monitor, MonitorHandle, Progress, ProgressReporter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use mlam::experiments::checkpoint::{CheckpointStore, ExperimentJson, TableJson};

/// The fixed root seed every reproduction binary uses.
pub const REPRO_SEED: u64 = 0xDA7E_2020;

/// Workspace crates whose (shared) version is recorded in the manifest.
const WORKSPACE_CRATES: &[&str] = &[
    "mlam",
    "mlam-bench",
    "mlam-boolean",
    "mlam-harness",
    "mlam-learn",
    "mlam-locking",
    "mlam-netlist",
    "mlam-par",
    "mlam-puf",
    "mlam-telemetry",
];

/// Options shared by all benchmark binaries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CliOptions {
    /// Use the reduced `quick()` parameter sets.
    pub quick: bool,
    /// Write `manifest.json`, `metrics.jsonl`, `events.jsonl` and one
    /// `<experiment>.json` per experiment into this directory.
    pub json_dir: Option<PathBuf>,
    /// Allow `--json` to overwrite a directory that already holds a
    /// completed run (a `manifest.json`).
    pub force: bool,
    /// Continue an interrupted run: write into this existing run
    /// directory, skipping every experiment whose checkpoint is
    /// complete and re-running corrupt, degraded or missing ones.
    pub resume: Option<PathBuf>,
    /// Serve live observability (`/metrics`, `/progress`, `/healthz`)
    /// on this address (e.g. `127.0.0.1:9100`) for the duration of the
    /// run. Monitoring never perturbs results: stdout and the `--json`
    /// files are byte-identical with it on or off (see
    /// `OBSERVABILITY.md`).
    pub monitor: Option<String>,
    /// Print progress/ETA lines to **stderr** as experiments complete.
    pub progress: bool,
}

/// Parses `--quick`, `--json <dir>`, `--force`, `--resume <dir>`,
/// `--monitor <addr>` and `--progress` from an argument iterator
/// (unrecognized arguments are ignored, as the binaries always did).
///
/// # Panics
///
/// Panics if `--json`, `--resume` or `--monitor` is not followed by
/// its argument.
pub fn parse_cli<I: IntoIterator<Item = String>>(args: I) -> CliOptions {
    let mut options = CliOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--json" => {
                let dir = iter.next().expect("--json requires a directory argument");
                options.json_dir = Some(PathBuf::from(dir));
            }
            "--force" => options.force = true,
            "--resume" => {
                let dir = iter.next().expect("--resume requires a directory argument");
                options.resume = Some(PathBuf::from(dir));
            }
            "--monitor" => {
                let addr = iter
                    .next()
                    .expect("--monitor requires an address argument (e.g. 127.0.0.1:9100)");
                options.monitor = Some(addr);
            }
            "--progress" => options.progress = true,
            _ => {}
        }
    }
    options
}

/// A reproduction run in progress: wraps every experiment driver call
/// with wall-clock timing and metric snapshots, accumulating a
/// [`RunManifest`].
pub struct Session {
    manifest: RunManifest,
    run_dir: Option<telemetry::RunDir>,
    store: Option<CheckpointStore>,
    resuming: bool,
    started: Instant,
    // Observability (all None/off unless --monitor/--progress asked):
    // lives entirely outside the telemetry registry, so none of it can
    // change metrics.jsonl — see mlam-monitor's determinism firewall.
    progress: Option<Arc<Progress>>,
    monitor: Option<MonitorHandle>,
    reporter: Option<ProgressReporter>,
    // Learning-curve recording (on whenever a run directory or the
    // monitor is active, off via MLAM_CURVES=0): checkpoints fan out
    // to these sinks from the experiment's own thread, the recorder
    // becomes curves.jsonl at finish(). Like the monitor state, none
    // of this touches the telemetry registry.
    curve_sinks: Option<Arc<Vec<Arc<dyn CurveSink>>>>,
    curve_recorder: Option<Arc<CurveRecorder>>,
    /// Series recorded fresh this session (vs. restored on resume).
    curve_fresh: BTreeSet<String>,
}

impl Session {
    /// Starts a session for the named tool. When `--json` was given,
    /// claims the output directory as a [`telemetry::RunDir`] (created
    /// recursively; an existing `manifest.json` is refused without
    /// `--force`) and installs a [`telemetry::JsonlSink`] for span
    /// events at `events.jsonl`.
    ///
    /// With `--resume <dir>`, the existing run directory is reopened
    /// instead (events append rather than truncate) and
    /// [`Session::run_batch`] skips every experiment whose checkpoint
    /// is complete and valid for this `(seed, quick)` configuration.
    ///
    /// # Panics
    ///
    /// Panics if the JSON output directory cannot be claimed (the
    /// message names the offending path), or if `--json` and
    /// `--resume` point at different directories.
    pub fn start(tool: &str, options: &CliOptions) -> Session {
        // Wire telemetry's thread-local context (counter scopes, span
        // parents) into the parallel runtime before any fan-out runs.
        telemetry::install_parallel_propagation();
        let mut manifest = RunManifest::new(tool, REPRO_SEED, options.quick);
        manifest.threads = mlam_par::threads();
        let version = env!("CARGO_PKG_VERSION");
        for name in WORKSPACE_CRATES {
            manifest
                .crate_versions
                .push((name.to_string(), version.to_string()));
        }
        if let (Some(resume), Some(json)) = (&options.resume, &options.json_dir) {
            assert!(
                resume == json,
                "--resume {} and --json {} point at different directories; \
                 --resume already selects the output directory",
                resume.display(),
                json.display()
            );
        }
        let resuming = options.resume.is_some();
        let output_dir = options.resume.as_ref().or(options.json_dir.as_ref());
        let run_dir = output_dir.map(|dir| {
            let run_dir = if resuming {
                telemetry::RunDir::resume(dir)
            } else {
                telemetry::RunDir::create(dir, options.force)
            }
            .unwrap_or_else(|e| panic!("{e}"));
            let events = run_dir.file("events.jsonl");
            let sink = if resuming {
                telemetry::JsonlSink::append(&events)
            } else {
                telemetry::JsonlSink::create(&events)
            }
            .unwrap_or_else(|e| panic!("cannot open {}: {e}", events.display()));
            telemetry::add_sink(Box::new(sink));
            run_dir
        });
        let store = run_dir.as_ref().map(|dir| CheckpointStore::new(dir.path()));
        let progress =
            (options.monitor.is_some() || options.progress).then(|| Arc::new(Progress::new(0)));
        if matches!(std::env::var("MLAM_TRACK_ALLOC"), Ok(v) if !v.is_empty() && v != "0") {
            // Heap accounting is opt-in even under --monitor: the
            // per-allocation atomics cost ~1% of the quick suite, and
            // the overhead_pct < 2.0 bar in BENCH_6.json covers what
            // every monitored run pays by default. Without the env the
            // mem gauges on /metrics read zero. Gauges also need the
            // binary to install mlam_monitor::alloc::TrackingAlloc as
            // its global allocator (repro_all and fault_sweep do).
            mlam_monitor::alloc::enable();
        }
        // Learning curves ride along whenever there is somewhere for
        // them to go: a run directory (curves.jsonl) or a monitor
        // (/curves). MLAM_CURVES=0 switches recording off for overhead
        // A/B measurements (curve_overhead bench).
        let curves_enabled = (run_dir.is_some() || options.monitor.is_some())
            && !matches!(std::env::var("MLAM_CURVES"), Ok(v) if v == "0");
        let curve_recorder =
            (curves_enabled && run_dir.is_some()).then(|| Arc::new(CurveRecorder::new()));
        let live_curves =
            (curves_enabled && options.monitor.is_some()).then(|| Arc::new(LiveCurves::new()));
        let curve_sinks = {
            let mut sinks: Vec<Arc<dyn CurveSink>> = Vec::new();
            if let Some(recorder) = &curve_recorder {
                sinks.push(Arc::clone(recorder) as Arc<dyn CurveSink>);
            }
            if let Some(live) = &live_curves {
                sinks.push(Arc::clone(live) as Arc<dyn CurveSink>);
            }
            (!sinks.is_empty()).then(|| Arc::new(sinks))
        };
        let monitor = options.monitor.as_ref().map(|addr| {
            let mut config = Monitor::new(addr);
            if let Some(progress) = &progress {
                config = config.progress(Arc::clone(progress));
            }
            if let Some(live) = &live_curves {
                config = config.curves(Arc::clone(live));
            }
            let handle = config
                .start()
                .unwrap_or_else(|e| panic!("cannot start monitor on {addr}: {e}"));
            eprintln!(
                "mlam: monitor listening on http://{}/metrics",
                handle.addr()
            );
            handle
        });
        let reporter = options.progress.then(|| {
            let progress = progress.as_ref().expect("progress state exists");
            ProgressReporter::start(Arc::clone(progress), Duration::from_millis(500))
        });
        Session {
            manifest,
            run_dir,
            store,
            resuming,
            started: Instant::now(),
            progress,
            monitor,
            reporter,
            curve_sinks,
            curve_recorder,
            curve_fresh: BTreeSet::new(),
        }
    }

    /// The live progress state, when `--monitor` or `--progress` is
    /// active (testing and endpoint consumers; `None` otherwise).
    pub fn progress(&self) -> Option<&Arc<Progress>> {
        self.progress.as_ref()
    }

    /// The address the monitor endpoint actually bound (resolves a
    /// `--monitor 127.0.0.1:0` ephemeral-port request), when active.
    pub fn monitor_addr(&self) -> Option<std::net::SocketAddr> {
        self.monitor.as_ref().map(|handle| handle.addr())
    }

    /// The root seed binaries should feed their RNG from.
    pub fn seed(&self) -> u64 {
        self.manifest.seed
    }

    /// Whether this session runs the reduced parameter sets.
    pub fn quick(&self) -> bool {
        self.manifest.quick
    }

    /// Runs one named experiment: times the driver, attributes counter
    /// increments to it, records an [`ExperimentRecord`], and (under
    /// `--json`) writes `<dir>/<name>.json` with the rendered tables.
    /// Returns the driver's result; never writes to stdout.
    pub fn run<T>(
        &mut self,
        name: &str,
        driver: impl FnOnce() -> T,
        render: impl FnOnce(&T) -> Vec<Table>,
    ) -> T {
        // Attribution through a scope (not a global snapshot diff) so
        // increments land on this experiment even when other work —
        // e.g. sibling experiments of a parallel batch — runs
        // concurrently, and nested parallel regions inherit the scope
        // via the mlam-par context hook.
        if let Some(progress) = &self.progress {
            progress.add_total(1);
        }
        if self.curve_sinks.is_some() {
            self.curve_fresh.insert(name.to_string());
        }
        let scope = telemetry::CounterScope::new();
        let started = Instant::now();
        let value = {
            let _guard = scope.enter();
            let _curves = self
                .curve_sinks
                .as_ref()
                .map(|sinks| curves::enter_series(name, Arc::clone(sinks)));
            driver()
        };
        let seconds = started.elapsed().as_secs_f64();
        let counters = scope.take();
        self.manifest.experiments.push(ExperimentRecord {
            name: name.to_string(),
            seconds,
            counters: counters.clone(),
            degraded: false,
        });
        if let Some(store) = &self.store {
            let record = ExperimentJson {
                name: name.to_string(),
                seed: self.manifest.seed,
                quick: self.manifest.quick,
                seconds,
                degraded: false,
                counters,
                tables: render(&value).iter().map(TableJson::from_table).collect(),
            };
            store.save(&record).unwrap_or_else(|e| panic!("{e}"));
        }
        if let Some(progress) = &self.progress {
            progress.complete_one();
        }
        value
    }

    /// Runs a batch of experiments, fanned out across `MLAM_THREADS`
    /// workers (inline when `MLAM_THREADS=1`), then records, writes
    /// and prints every result **in spec order** — stdout, the
    /// manifest and the `--json` files are identical at any thread
    /// count.
    ///
    /// Each experiment gets its own RNG seeded from
    /// `split_seed(session seed, index)` and its own counter scope, so
    /// neither randomness nor attribution couples experiments to their
    /// schedule. A panicking driver does not abort the batch: the
    /// experiment degrades to a partial record (`degraded: true`,
    /// wall-clock and counters up to the failure, no tables) in both
    /// the manifest and its checkpoint file, and the failure is
    /// returned so the caller can exit non-zero.
    ///
    /// When the session was started with `--resume`, experiments whose
    /// checkpoint is complete and matches this `(seed, quick)`
    /// configuration are **skipped**: their recorded counters and
    /// wall-clock are restored into the manifest (and replayed into
    /// the global metric registry, so `metrics.jsonl` matches a
    /// straight-through run), a note goes to stderr, and their tables
    /// are *not* reprinted to stdout. Missing, corrupt (killed
    /// mid-write), stale (other seed/quick) and degraded checkpoints
    /// are re-run from their original `split_seed(seed, index)`
    /// stream, which reproduces the interrupted run bit-for-bit.
    pub fn run_batch(&mut self, specs: Vec<ExperimentSpec>) -> Vec<ExperimentFailure> {
        telemetry::install_parallel_propagation();
        let root = self.seed();
        let quick = self.quick();
        if let Some(progress) = &self.progress {
            progress.add_total(specs.len() as u64);
        }
        // Spec order must survive the skip/run split: each slot is
        // either a restored checkpoint or an index into the task list
        // handed to the pool, and results are drained back in order.
        enum Slot {
            Restored(ExperimentJson),
            Fresh,
        }
        let mut slots = Vec::new();
        let mut tasks: Vec<Box<dyn FnOnce() -> BatchOutcome + Send>> = Vec::new();
        for (index, spec) in specs.into_iter().enumerate() {
            let checkpoint = self
                .resuming
                .then_some(self.store.as_ref())
                .flatten()
                .map(|store| store.load(spec.name()));
            match checkpoint {
                Some(CheckpointState::Complete(record)) if record.resumable(root, quick) => {
                    eprintln!(
                        "mlam: resume: skipping {} (checkpoint complete)",
                        spec.name()
                    );
                    // A restored experiment is done work: count it
                    // immediately so /progress reflects the resume.
                    if let Some(progress) = &self.progress {
                        progress.complete_one();
                    }
                    slots.push(Slot::Restored(record));
                    continue;
                }
                Some(CheckpointState::Complete(record)) => {
                    telemetry::counter!("harness.checkpoint.stale", 1);
                    eprintln!(
                        "mlam: resume: re-running {} ({})",
                        spec.name(),
                        if record.degraded {
                            "checkpoint degraded".to_string()
                        } else {
                            format!(
                                "checkpoint from seed {:#x} quick={}, run wants seed {root:#x} quick={quick}",
                                record.seed, record.quick
                            )
                        }
                    );
                }
                Some(CheckpointState::Corrupt) => {
                    eprintln!(
                        "mlam: resume: re-running {} (checkpoint corrupt — killed mid-write?)",
                        spec.name()
                    );
                }
                Some(CheckpointState::Missing) | None => {}
            }
            slots.push(Slot::Fresh);
            if self.curve_sinks.is_some() {
                self.curve_fresh.insert(spec.name().to_string());
            }
            // Workers carry their own store/progress handles so each
            // experiment checkpoints (and counts complete) the moment
            // it finishes, not when the whole batch drains: a mid-run
            // /progress scrape is always consistent with the
            // checkpoint files already on disk.
            let store = self.store.clone();
            let progress = self.progress.clone();
            let curve_sinks = self.curve_sinks.clone();
            tasks.push(Box::new(move || {
                run_spec(spec, root, quick, index, store, progress, curve_sinks)
            }) as Box<dyn FnOnce() -> BatchOutcome + Send>);
        }
        let mut fresh = mlam_par::par_run(tasks).into_iter();
        let mut failures = Vec::new();
        for slot in slots {
            match slot {
                Slot::Restored(record) => {
                    // Re-apply the restored counters to the global
                    // registry: final_metrics and metrics.jsonl then
                    // match what a straight-through run would report.
                    for (name, delta) in &record.counters {
                        telemetry::counter_handle(name).add(*delta);
                    }
                    self.manifest.experiments.push(ExperimentRecord {
                        name: record.name.clone(),
                        seconds: record.seconds,
                        counters: record.counters.clone(),
                        degraded: false,
                    });
                }
                Slot::Fresh => {
                    let outcome = fresh.next().expect("one outcome per fresh slot");
                    // The worker already streamed the checkpoint to
                    // disk; a failed save still fails the run, just
                    // surfaced here on the main thread.
                    if let Some(error) = outcome.checkpoint_error {
                        panic!("{error}");
                    }
                    let degraded = outcome.result.is_err();
                    self.manifest.experiments.push(ExperimentRecord {
                        name: outcome.name.to_string(),
                        seconds: outcome.seconds,
                        counters: outcome.counters.clone(),
                        degraded,
                    });
                    let tables = match outcome.result {
                        Ok(tables) => tables,
                        Err(message) => {
                            telemetry::counter!("harness.checkpoint.degraded", 1);
                            failures.push(ExperimentFailure {
                                name: outcome.name.to_string(),
                                message,
                            });
                            Vec::new()
                        }
                    };
                    for table in &tables {
                        println!("{table}");
                    }
                }
            }
        }
        failures
    }

    /// Finalizes the manifest (total wall-clock, final metrics) and,
    /// under `--json`, writes `manifest.json` and `metrics.jsonl`.
    /// Shuts the progress reporter (after its final line) and the
    /// monitor endpoint down. Returns the manifest for in-process
    /// inspection.
    pub fn finish(mut self) -> RunManifest {
        self.manifest.total_seconds = self.started.elapsed().as_secs_f64();
        self.manifest.final_metrics = telemetry::snapshot();
        if let Some(dir) = &self.run_dir {
            write_json(&dir.file("manifest.json"), &self.manifest);
            let path = dir.file("metrics.jsonl");
            let file = dir
                .create_file("metrics.jsonl")
                .unwrap_or_else(|e| panic!("{e}"));
            telemetry::write_metrics_jsonl(file, &self.manifest.final_metrics)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            if let Some(recorder) = &self.curve_recorder {
                // Resume merge, mirroring the checkpoint semantics:
                // series restored from complete checkpoints keep their
                // recorded curves, re-run series are replaced with this
                // session's points — the merged file matches what a
                // straight-through run would have written.
                let curves_path = dir.file(CURVES_FILE);
                let mut series = if self.resuming && curves_path.is_file() {
                    let mut loaded =
                        curves::read_curves_jsonl(&curves_path).unwrap_or_else(|e| panic!("{e}"));
                    loaded.retain(|name, _| !self.curve_fresh.contains(name));
                    loaded
                } else {
                    BTreeMap::new()
                };
                series.append(&mut recorder.series());
                let file = dir
                    .create_file(CURVES_FILE)
                    .unwrap_or_else(|e| panic!("{e}"));
                curves::write_curves_jsonl(file, &series)
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", curves_path.display()));
            }
        }
        if let Some(reporter) = self.reporter.take() {
            reporter.shutdown();
        }
        if let Some(monitor) = self.monitor.take() {
            monitor.shutdown();
        }
        self.manifest
    }
}

/// A boxed experiment driver: takes the experiment's own
/// deterministically derived RNG, returns the tables to print and
/// serialize.
type DriverFn = Box<dyn FnOnce(&mut StdRng) -> Vec<Table> + Send>;

/// One experiment of a [`Session::run_batch`] fan-out: a name plus a
/// driver closure that receives the experiment's own deterministically
/// derived RNG and returns the tables to print and serialize.
pub struct ExperimentSpec {
    name: &'static str,
    run: DriverFn,
}

impl ExperimentSpec {
    /// Wraps a driver closure under the experiment's manifest name.
    pub fn new(
        name: &'static str,
        run: impl FnOnce(&mut StdRng) -> Vec<Table> + Send + 'static,
    ) -> ExperimentSpec {
        ExperimentSpec {
            name,
            run: Box::new(run),
        }
    }

    /// The manifest/JSON name of this experiment.
    pub fn name(&self) -> &str {
        self.name
    }
}

/// A failed experiment of a batch: its name and the panic message.
#[derive(Clone, Debug)]
pub struct ExperimentFailure {
    pub name: String,
    pub message: String,
}

struct BatchOutcome {
    name: &'static str,
    seconds: f64,
    counters: BTreeMap<String, u64>,
    result: Result<Vec<Table>, String>,
    /// A failed streaming checkpoint save, surfaced on the main thread.
    checkpoint_error: Option<String>,
}

/// Executes one spec on whichever worker the pool picked: independent
/// RNG from `(root, index)`, own counter scope, panics contained.
///
/// The checkpoint is saved *here*, as soon as the driver returns —
/// streamed to disk while sibling experiments still run — so a resume
/// after a mid-batch kill skips everything that finished, and the
/// `/progress` endpoint agrees with the checkpoint directory at every
/// instant. The save (and its `harness.checkpoint.saved` increment)
/// happens after the counter scope is drained, exactly as when the
/// drain loop saved: attribution and `metrics.jsonl` are unchanged.
fn run_spec(
    spec: ExperimentSpec,
    root: u64,
    quick: bool,
    index: usize,
    store: Option<CheckpointStore>,
    progress: Option<Arc<Progress>>,
    curve_sinks: Option<Arc<Vec<Arc<dyn CurveSink>>>>,
) -> BatchOutcome {
    let name = spec.name;
    let scope = telemetry::CounterScope::new();
    let started = Instant::now();
    let result = {
        let _guard = scope.enter();
        // The curve context lives on the worker thread running the
        // driver, exactly where the counter scope lives — checkpoints
        // read this experiment's own query totals and nothing else.
        let _curves = curve_sinks
            .as_ref()
            .map(|sinks| curves::enter_series(name, Arc::clone(sinks)));
        let run = spec.run;
        std::panic::catch_unwind(AssertUnwindSafe(move || {
            let mut rng = StdRng::seed_from_u64(mlam_par::split_seed(root, index as u64));
            run(&mut rng)
        }))
    };
    let seconds = started.elapsed().as_secs_f64();
    let counters = scope.take();
    let result = result.map_err(|payload| panic_message(payload.as_ref()));
    let mut checkpoint_error = None;
    if let Some(store) = &store {
        let record = ExperimentJson {
            name: name.to_string(),
            seed: root,
            quick,
            seconds,
            degraded: result.is_err(),
            counters: counters.clone(),
            tables: result
                .as_deref()
                .map(|tables| tables.iter().map(TableJson::from_table).collect())
                .unwrap_or_default(),
        };
        if let Err(e) = store.save(&record) {
            checkpoint_error = Some(e.to_string());
        }
    }
    if let Some(progress) = &progress {
        progress.complete_one();
    }
    BatchOutcome {
        name,
        seconds,
        counters,
        result,
        checkpoint_error,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "experiment driver panicked".to_string()
    }
}

fn write_json<T: serde::Serialize>(path: &Path, value: &T) {
    let json = serde_json::to_string_pretty(value)
        .unwrap_or_else(|e| panic!("cannot serialize {}: {e}", path.display()));
    std::fs::write(path, json + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Runs every experiment — fanned out across `MLAM_THREADS` workers —
/// printing each table to stdout in the fixed order `repro_all` always
/// has, while the session records timing, counters and (under
/// `--json`) structured results.
///
/// Every experiment seeds its own RNG from `split_seed(session seed,
/// experiment index)`, so outputs are bit-identical at any thread
/// count. Returns the experiments whose drivers panicked (empty on a
/// clean run); callers that exit should propagate a non-zero status
/// when the list is non-empty.
pub fn run_all(session: &mut Session) -> Vec<ExperimentFailure> {
    use mlam::experiments::ablations::{run_ablations, AblationParams};
    use mlam::experiments::ac0::{run_ac0, Ac0Params};
    use mlam::experiments::corollary2::{run_corollary2, Corollary2Params};
    use mlam::experiments::exact_vs_approx::{run_exact_vs_approx, ExactVsApproxParams};
    use mlam::experiments::interpose::{run_interpose, InterposeParams};
    use mlam::experiments::lockdown::{run_lockdown, LockdownParams};
    use mlam::experiments::locking::{run_locking, LockingParams};
    use mlam::experiments::rocknroll::{run_rocknroll, RocknRollParams};
    use mlam::experiments::sequential::{run_sequential, SequentialParams};
    use mlam::experiments::spectral::{run_spectral, SpectralParams};
    use mlam::experiments::{
        run_table1, run_table2, run_table3, Table1Params, Table2Params, Table3Params,
    };

    let _span = telemetry::span("bench.run_all")
        .attr("quick", session.quick())
        .attr("threads", mlam_par::threads());
    let quick = session.quick();

    let t1 = if quick {
        Table1Params::quick()
    } else {
        Table1Params::paper()
    };
    let t2 = if quick {
        Table2Params::quick()
    } else {
        Table2Params::paper()
    };
    let t3 = if quick {
        Table3Params::quick()
    } else {
        Table3Params::paper()
    };
    let c2 = if quick {
        Corollary2Params::quick()
    } else {
        Corollary2Params::paper()
    };
    let lk = if quick {
        LockingParams::quick()
    } else {
        LockingParams::paper()
    };
    let sq = if quick {
        SequentialParams::quick()
    } else {
        SequentialParams::paper()
    };
    let ea = if quick {
        ExactVsApproxParams::quick()
    } else {
        ExactVsApproxParams::paper()
    };
    let a0 = if quick {
        Ac0Params::quick()
    } else {
        Ac0Params::paper()
    };
    let sp = if quick {
        SpectralParams::quick()
    } else {
        SpectralParams::paper()
    };
    let ip = if quick {
        InterposeParams::quick()
    } else {
        InterposeParams::paper()
    };
    let rr = if quick {
        RocknRollParams::quick()
    } else {
        RocknRollParams::paper()
    };
    let ld = if quick {
        LockdownParams::quick()
    } else {
        LockdownParams::paper()
    };
    let ab = if quick {
        AblationParams::quick()
    } else {
        AblationParams::paper()
    };

    let specs = vec![
        ExperimentSpec::new("table1", move |rng| {
            let r = run_table1(&t1, rng);
            vec![r.to_table(), r.empirical_table()]
        }),
        ExperimentSpec::new("table2", move |rng| vec![run_table2(&t2, rng).to_table()]),
        ExperimentSpec::new("table3", move |rng| vec![run_table3(&t3, rng).to_table()]),
        ExperimentSpec::new("corollary2", move |rng| {
            vec![run_corollary2(&c2, rng).to_table()]
        }),
        ExperimentSpec::new("locking", move |rng| vec![run_locking(&lk, rng).to_table()]),
        ExperimentSpec::new("sequential", move |rng| {
            vec![run_sequential(&sq, rng).to_table()]
        }),
        ExperimentSpec::new("exact_vs_approx", move |rng| {
            vec![run_exact_vs_approx(&ea, rng).to_table()]
        }),
        ExperimentSpec::new("ac0", move |rng| vec![run_ac0(&a0, rng).to_table()]),
        ExperimentSpec::new("spectral", move |rng| {
            vec![run_spectral(&sp, rng).to_table()]
        }),
        ExperimentSpec::new("interpose", move |rng| {
            vec![run_interpose(&ip, rng).to_table()]
        }),
        ExperimentSpec::new("rocknroll", move |rng| {
            vec![run_rocknroll(&rr, rng).to_table()]
        }),
        ExperimentSpec::new("lockdown", move |rng| {
            vec![run_lockdown(&ld, rng).to_table()]
        }),
        ExperimentSpec::new("ablations", move |rng| run_ablations(&ab, rng).to_tables()),
    ];
    session.run_batch(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parses_quick_and_json() {
        let opts = parse_cli(["bin", "--quick", "--json", "out/dir", "--force"].map(String::from));
        assert!(opts.quick);
        assert!(opts.force);
        assert_eq!(opts.json_dir.as_deref(), Some(Path::new("out/dir")));
        let none = parse_cli(["bin", "--other"].map(String::from));
        assert_eq!(none, CliOptions::default());
    }

    #[test]
    fn session_refuses_to_clobber_a_finished_run() {
        let dir = std::env::temp_dir().join(format!("mlam_session_clobber_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), "{}\n").unwrap();
        let options = CliOptions {
            quick: true,
            json_dir: Some(dir.clone()),
            ..CliOptions::default()
        };
        let result = std::panic::catch_unwind(|| Session::start("test-tool", &options));
        assert!(result.is_err(), "Session::start must refuse to clobber");
        let forced = CliOptions {
            force: true,
            ..options
        };
        let session = Session::start("test-tool", &forced);
        session.finish();
        assert!(dir.join("metrics.jsonl").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "--json requires a directory")]
    fn cli_rejects_dangling_json_flag() {
        parse_cli(["bin", "--json"].map(String::from));
    }

    #[test]
    fn cli_parses_resume() {
        let opts = parse_cli(["bin", "--resume", "out/run", "--quick"].map(String::from));
        assert_eq!(opts.resume.as_deref(), Some(Path::new("out/run")));
        assert!(opts.quick);
    }

    #[test]
    fn cli_parses_monitor_and_progress() {
        let opts =
            parse_cli(["bin", "--monitor", "127.0.0.1:9100", "--progress"].map(String::from));
        assert_eq!(opts.monitor.as_deref(), Some("127.0.0.1:9100"));
        assert!(opts.progress);
        let none = parse_cli(["bin"].map(String::from));
        assert_eq!(none.monitor, None);
        assert!(!none.progress);
    }

    #[test]
    #[should_panic(expected = "--monitor requires an address")]
    fn cli_rejects_dangling_monitor_flag() {
        parse_cli(["bin", "--monitor"].map(String::from));
    }

    #[test]
    fn monitored_batch_tracks_progress_and_serves_it() {
        let dir = std::env::temp_dir().join(format!("mlam_session_monitor_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = CliOptions {
            quick: true,
            json_dir: Some(dir.clone()),
            monitor: Some("127.0.0.1:0".to_string()),
            ..CliOptions::default()
        };
        let mut session = Session::start("test-monitor", &options);
        let progress = Arc::clone(
            session
                .progress()
                .expect("--monitor implies progress state"),
        );
        assert_eq!(progress.completed(), 0);
        let failures = session.run_batch(vec![
            ExperimentSpec::new("monitored_a", |_| vec![Table::new("A", &["v"])]),
            ExperimentSpec::new("monitored_b", |_| vec![Table::new("B", &["v"])]),
        ]);
        assert!(failures.is_empty());
        // Workers streamed completions and checkpoints: both are on
        // disk and counted before finish().
        assert_eq!(progress.completed(), 2);
        assert_eq!(progress.total(), 2);
        assert!(dir.join("monitored_a.json").is_file());
        assert!(dir.join("monitored_b.json").is_file());
        session.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "--resume requires a directory")]
    fn cli_rejects_dangling_resume_flag() {
        parse_cli(["bin", "--resume"].map(String::from));
    }

    #[test]
    fn resumed_batch_skips_complete_checkpoints_and_reruns_the_rest() {
        let dir = std::env::temp_dir().join(format!("mlam_session_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = CliOptions {
            quick: true,
            json_dir: Some(dir.clone()),
            ..CliOptions::default()
        };

        let specs = || {
            vec![
                ExperimentSpec::new("resume_a", |rng| {
                    use rand::Rng;
                    mlam::telemetry::counter!("bench.test.resume_a", 5);
                    let roll: u64 = rng.gen();
                    vec![Table::new(format!("A {roll}"), &["v"])]
                }),
                ExperimentSpec::new("resume_b", |rng| {
                    use rand::Rng;
                    mlam::telemetry::counter!("bench.test.resume_b", 7);
                    let roll: u64 = rng.gen();
                    vec![Table::new(format!("B {roll}"), &["v"])]
                }),
            ]
        };

        let mut first = Session::start("test-resume", &options);
        assert!(first.run_batch(specs()).is_empty());
        let full = first.finish();

        // Simulate a kill after resume_a: resume_b's checkpoint and the
        // manifest are gone, resume_a's survives.
        std::fs::remove_file(dir.join("resume_b.json")).unwrap();
        std::fs::remove_file(dir.join("manifest.json")).unwrap();

        let resumed_options = CliOptions {
            quick: true,
            resume: Some(dir.clone()),
            ..CliOptions::default()
        };
        let mut second = Session::start("test-resume", &resumed_options);
        assert!(second.run_batch(specs()).is_empty());
        let resumed = second.finish();

        // Identical per-experiment records: restored for a, re-run
        // from the same split seed for b (seconds for a is restored
        // verbatim from the checkpoint).
        assert_eq!(resumed.experiments.len(), full.experiments.len());
        for (fresh, back) in full.experiments.iter().zip(&resumed.experiments) {
            assert_eq!(fresh.name, back.name);
            assert_eq!(fresh.counters, back.counters);
            assert!(!back.degraded);
        }
        // The re-run rewrote resume_b.json bit-identically.
        let full_b: ExperimentJson =
            serde_json::from_str(&std::fs::read_to_string(dir.join("resume_b.json")).unwrap())
                .unwrap();
        assert_eq!(full_b.name, "resume_b");
        assert_eq!(full_b.counters["bench.test.resume_b"], 7);
        assert!(dir.join("manifest.json").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_batch_experiments_degrade_to_partial_records() {
        let dir = std::env::temp_dir().join(format!("mlam_session_degrade_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = CliOptions {
            quick: true,
            json_dir: Some(dir.clone()),
            ..CliOptions::default()
        };
        let mut session = Session::start("test-degrade", &options);
        let failures = session.run_batch(vec![
            ExperimentSpec::new("degrade_ok", |_| vec![]),
            ExperimentSpec::new("degrade_boom", |_| {
                mlam::telemetry::counter!("bench.test.degrade_partial", 2);
                panic!("injected failure")
            }),
        ]);
        let manifest = session.finish();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].name, "degrade_boom");
        assert!(failures[0].message.contains("injected failure"));
        // The manifest keeps the partial record, marked degraded, with
        // the counters incremented before the panic.
        let boom = &manifest.experiments[1];
        assert!(boom.degraded);
        assert_eq!(boom.counters["bench.test.degrade_partial"], 2);
        assert!(!manifest.experiments[0].degraded);
        // The checkpoint mirrors it, and is not resumable.
        let record: ExperimentJson =
            serde_json::from_str(&std::fs::read_to_string(dir.join("degrade_boom.json")).unwrap())
                .unwrap();
        assert!(record.degraded);
        assert!(record.tables.is_empty());
        assert!(!record.resumable(manifest.seed, true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_records_curves_into_curves_jsonl() {
        let dir = std::env::temp_dir().join(format!("mlam_session_curves_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = CliOptions {
            quick: true,
            json_dir: Some(dir.clone()),
            ..CliOptions::default()
        };
        let mut session = Session::start("test-curves", &options);
        let failures = session.run_batch(vec![ExperimentSpec::new("curve_x", |_| {
            telemetry::counter!("oracle.example_queries", 10);
            curves::checkpoint("demo", 1, 0.5, None);
            telemetry::counter!("oracle.example_queries", 22);
            curves::checkpoint("demo", 2, 0.75, None);
            Vec::new()
        })]);
        assert!(failures.is_empty());
        session.finish();
        let series = curves::read_curves_jsonl(&dir.join(CURVES_FILE)).unwrap();
        let points = &series["curve_x"];
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].queries, 10);
        assert_eq!(points[1].queries, 32);
        assert_eq!(points[1].train_acc, 0.75);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_runs_merge_curves_for_skipped_experiments() {
        let dir =
            std::env::temp_dir().join(format!("mlam_session_curves_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = CliOptions {
            quick: true,
            json_dir: Some(dir.clone()),
            ..CliOptions::default()
        };
        let specs = || {
            vec![
                ExperimentSpec::new("curve_keep", |_| {
                    telemetry::counter!("oracle.example_queries", 4);
                    curves::checkpoint("demo", 1, 0.25, None);
                    Vec::new()
                }),
                ExperimentSpec::new("curve_redo", |_| {
                    telemetry::counter!("oracle.example_queries", 8);
                    curves::checkpoint("demo", 1, 0.5, None);
                    Vec::new()
                }),
            ]
        };
        let mut first = Session::start("test-curves-resume", &options);
        assert!(first.run_batch(specs()).is_empty());
        first.finish();
        let full = std::fs::read(dir.join(CURVES_FILE)).unwrap();

        // Kill after curve_keep: curve_redo re-runs, curve_keep's curve
        // must survive from the previous curves.jsonl.
        std::fs::remove_file(dir.join("curve_redo.json")).unwrap();
        std::fs::remove_file(dir.join("manifest.json")).unwrap();
        let resumed_options = CliOptions {
            quick: true,
            resume: Some(dir.clone()),
            ..CliOptions::default()
        };
        let mut second = Session::start("test-curves-resume", &resumed_options);
        assert!(second.run_batch(specs()).is_empty());
        second.finish();
        let merged = std::fs::read(dir.join(CURVES_FILE)).unwrap();
        assert_eq!(merged, full, "resume must reproduce curves.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_records_experiments_without_json() {
        let mut session = Session::start("test-tool", &CliOptions::default());
        let value = session.run(
            "demo",
            || {
                mlam::telemetry::counter!("bench.test.session_counter", 3);
                41 + 1
            },
            |_| Vec::new(),
        );
        assert_eq!(value, 42);
        let manifest = session.finish();
        assert_eq!(manifest.tool, "test-tool");
        assert_eq!(manifest.experiments.len(), 1);
        let exp = &manifest.experiments[0];
        assert_eq!(exp.name, "demo");
        assert!(exp.seconds >= 0.0);
        assert_eq!(exp.counters["bench.test.session_counter"], 3);
        assert!(manifest.total_seconds >= exp.seconds);
        assert!(!manifest.crate_versions.is_empty());
    }
}
