//! Shared harness for the benchmark binaries: CLI parsing, the
//! telemetry [`Session`] that turns experiment runs into a
//! [`RunManifest`], and [`run_all`] — the full reproduction sequence
//! used by `repro_all` and the integration tests.
//!
//! Output contract (the observability promise): everything a binary
//! printed before telemetry existed still goes to stdout unchanged;
//! the session only *adds* files under `--json <dir>` and stderr lines
//! under `MLAM_LOG`.

use mlam::report::Table;
use mlam::telemetry::{self, ExperimentRecord, RunManifest};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The fixed root seed every reproduction binary uses.
pub const REPRO_SEED: u64 = 0xDA7E_2020;

/// Workspace crates whose (shared) version is recorded in the manifest.
const WORKSPACE_CRATES: &[&str] = &[
    "mlam",
    "mlam-bench",
    "mlam-boolean",
    "mlam-learn",
    "mlam-locking",
    "mlam-netlist",
    "mlam-par",
    "mlam-puf",
    "mlam-telemetry",
];

/// Options shared by all benchmark binaries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CliOptions {
    /// Use the reduced `quick()` parameter sets.
    pub quick: bool,
    /// Write `manifest.json`, `metrics.jsonl`, `events.jsonl` and one
    /// `<experiment>.json` per experiment into this directory.
    pub json_dir: Option<PathBuf>,
    /// Allow `--json` to overwrite a directory that already holds a
    /// completed run (a `manifest.json`).
    pub force: bool,
}

/// Parses `--quick`, `--json <dir>` and `--force` from an argument
/// iterator (unrecognized arguments are ignored, as the binaries
/// always did).
///
/// # Panics
///
/// Panics if `--json` is not followed by a directory path.
pub fn parse_cli<I: IntoIterator<Item = String>>(args: I) -> CliOptions {
    let mut options = CliOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--json" => {
                let dir = iter.next().expect("--json requires a directory argument");
                options.json_dir = Some(PathBuf::from(dir));
            }
            "--force" => options.force = true,
            _ => {}
        }
    }
    options
}

/// One table of an experiment, in the machine-readable `--json` form.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableJson {
    pub title: String,
    pub header: Vec<String>,
    /// Rows as objects keyed by column header
    /// ([`Table::to_json_rows`]).
    pub rows: serde_json::Value,
}

impl TableJson {
    fn from_table(table: &Table) -> TableJson {
        TableJson {
            title: table.title().to_string(),
            header: table.header().to_vec(),
            rows: table.to_json_rows(),
        }
    }
}

/// The structured result file written as `<dir>/<experiment>.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentJson {
    pub name: String,
    pub seed: u64,
    pub quick: bool,
    /// Wall-clock seconds spent in the driver.
    pub seconds: f64,
    /// Telemetry counter increments attributable to this experiment.
    pub counters: BTreeMap<String, u64>,
    pub tables: Vec<TableJson>,
}

/// A reproduction run in progress: wraps every experiment driver call
/// with wall-clock timing and metric snapshots, accumulating a
/// [`RunManifest`].
pub struct Session {
    manifest: RunManifest,
    run_dir: Option<telemetry::RunDir>,
    started: Instant,
}

impl Session {
    /// Starts a session for the named tool. When `--json` was given,
    /// claims the output directory as a [`telemetry::RunDir`] (created
    /// recursively; an existing `manifest.json` is refused without
    /// `--force`) and installs a [`telemetry::JsonlSink`] for span
    /// events at `events.jsonl`.
    ///
    /// # Panics
    ///
    /// Panics if the JSON output directory cannot be claimed; the
    /// message names the offending path.
    pub fn start(tool: &str, options: &CliOptions) -> Session {
        // Wire telemetry's thread-local context (counter scopes, span
        // parents) into the parallel runtime before any fan-out runs.
        telemetry::install_parallel_propagation();
        let mut manifest = RunManifest::new(tool, REPRO_SEED, options.quick);
        manifest.threads = mlam_par::threads();
        let version = env!("CARGO_PKG_VERSION");
        for name in WORKSPACE_CRATES {
            manifest
                .crate_versions
                .push((name.to_string(), version.to_string()));
        }
        let run_dir = options.json_dir.as_ref().map(|dir| {
            let run_dir =
                telemetry::RunDir::create(dir, options.force).unwrap_or_else(|e| panic!("{e}"));
            let events = run_dir.file("events.jsonl");
            let sink = telemetry::JsonlSink::create(&events)
                .unwrap_or_else(|e| panic!("cannot open {}: {e}", events.display()));
            telemetry::add_sink(Box::new(sink));
            run_dir
        });
        Session {
            manifest,
            run_dir,
            started: Instant::now(),
        }
    }

    /// The root seed binaries should feed their RNG from.
    pub fn seed(&self) -> u64 {
        self.manifest.seed
    }

    /// Whether this session runs the reduced parameter sets.
    pub fn quick(&self) -> bool {
        self.manifest.quick
    }

    /// Runs one named experiment: times the driver, attributes counter
    /// increments to it, records an [`ExperimentRecord`], and (under
    /// `--json`) writes `<dir>/<name>.json` with the rendered tables.
    /// Returns the driver's result; never writes to stdout.
    pub fn run<T>(
        &mut self,
        name: &str,
        driver: impl FnOnce() -> T,
        render: impl FnOnce(&T) -> Vec<Table>,
    ) -> T {
        // Attribution through a scope (not a global snapshot diff) so
        // increments land on this experiment even when other work —
        // e.g. sibling experiments of a parallel batch — runs
        // concurrently, and nested parallel regions inherit the scope
        // via the mlam-par context hook.
        let scope = telemetry::CounterScope::new();
        let started = Instant::now();
        let value = {
            let _guard = scope.enter();
            driver()
        };
        let seconds = started.elapsed().as_secs_f64();
        let counters = scope.take();
        self.manifest.experiments.push(ExperimentRecord {
            name: name.to_string(),
            seconds,
            counters: counters.clone(),
        });
        if let Some(dir) = &self.run_dir {
            let record = ExperimentJson {
                name: name.to_string(),
                seed: self.manifest.seed,
                quick: self.manifest.quick,
                seconds,
                counters,
                tables: render(&value).iter().map(TableJson::from_table).collect(),
            };
            write_json(&dir.file(&format!("{name}.json")), &record);
        }
        value
    }

    /// Runs a batch of experiments, fanned out across `MLAM_THREADS`
    /// workers (inline when `MLAM_THREADS=1`), then records, writes
    /// and prints every result **in spec order** — stdout, the
    /// manifest and the `--json` files are identical at any thread
    /// count.
    ///
    /// Each experiment gets its own RNG seeded from
    /// `split_seed(session seed, index)` and its own counter scope, so
    /// neither randomness nor attribution couples experiments to their
    /// schedule. A panicking driver does not abort the batch: the
    /// experiment is still recorded (wall-clock and counters), no
    /// result file is written for it, and the failure is returned so
    /// the caller can exit non-zero.
    pub fn run_batch(&mut self, specs: Vec<ExperimentSpec>) -> Vec<ExperimentFailure> {
        telemetry::install_parallel_propagation();
        let root = self.seed();
        let tasks: Vec<Box<dyn FnOnce() -> BatchOutcome + Send>> = specs
            .into_iter()
            .enumerate()
            .map(|(index, spec)| {
                Box::new(move || run_spec(spec, root, index))
                    as Box<dyn FnOnce() -> BatchOutcome + Send>
            })
            .collect();
        let mut failures = Vec::new();
        for outcome in mlam_par::par_run(tasks) {
            self.manifest.experiments.push(ExperimentRecord {
                name: outcome.name.to_string(),
                seconds: outcome.seconds,
                counters: outcome.counters.clone(),
            });
            match outcome.result {
                Ok(tables) => {
                    if let Some(dir) = &self.run_dir {
                        let record = ExperimentJson {
                            name: outcome.name.to_string(),
                            seed: self.manifest.seed,
                            quick: self.manifest.quick,
                            seconds: outcome.seconds,
                            counters: outcome.counters,
                            tables: tables.iter().map(TableJson::from_table).collect(),
                        };
                        write_json(&dir.file(&format!("{}.json", outcome.name)), &record);
                    }
                    for table in &tables {
                        println!("{table}");
                    }
                }
                Err(message) => failures.push(ExperimentFailure {
                    name: outcome.name.to_string(),
                    message,
                }),
            }
        }
        failures
    }

    /// Finalizes the manifest (total wall-clock, final metrics) and,
    /// under `--json`, writes `manifest.json` and `metrics.jsonl`.
    /// Returns the manifest for in-process inspection.
    pub fn finish(mut self) -> RunManifest {
        self.manifest.total_seconds = self.started.elapsed().as_secs_f64();
        self.manifest.final_metrics = telemetry::snapshot();
        if let Some(dir) = &self.run_dir {
            write_json(&dir.file("manifest.json"), &self.manifest);
            let path = dir.file("metrics.jsonl");
            let file = dir
                .create_file("metrics.jsonl")
                .unwrap_or_else(|e| panic!("{e}"));
            telemetry::write_metrics_jsonl(file, &self.manifest.final_metrics)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
        self.manifest
    }
}

/// A boxed experiment driver: takes the experiment's own
/// deterministically derived RNG, returns the tables to print and
/// serialize.
type DriverFn = Box<dyn FnOnce(&mut StdRng) -> Vec<Table> + Send>;

/// One experiment of a [`Session::run_batch`] fan-out: a name plus a
/// driver closure that receives the experiment's own deterministically
/// derived RNG and returns the tables to print and serialize.
pub struct ExperimentSpec {
    name: &'static str,
    run: DriverFn,
}

impl ExperimentSpec {
    /// Wraps a driver closure under the experiment's manifest name.
    pub fn new(
        name: &'static str,
        run: impl FnOnce(&mut StdRng) -> Vec<Table> + Send + 'static,
    ) -> ExperimentSpec {
        ExperimentSpec {
            name,
            run: Box::new(run),
        }
    }

    /// The manifest/JSON name of this experiment.
    pub fn name(&self) -> &str {
        self.name
    }
}

/// A failed experiment of a batch: its name and the panic message.
#[derive(Clone, Debug)]
pub struct ExperimentFailure {
    pub name: String,
    pub message: String,
}

struct BatchOutcome {
    name: &'static str,
    seconds: f64,
    counters: BTreeMap<String, u64>,
    result: Result<Vec<Table>, String>,
}

/// Executes one spec on whichever worker the pool picked: independent
/// RNG from `(root, index)`, own counter scope, panics contained.
fn run_spec(spec: ExperimentSpec, root: u64, index: usize) -> BatchOutcome {
    let name = spec.name;
    let scope = telemetry::CounterScope::new();
    let started = Instant::now();
    let result = {
        let _guard = scope.enter();
        let run = spec.run;
        std::panic::catch_unwind(AssertUnwindSafe(move || {
            let mut rng = StdRng::seed_from_u64(mlam_par::split_seed(root, index as u64));
            run(&mut rng)
        }))
    };
    BatchOutcome {
        name,
        seconds: started.elapsed().as_secs_f64(),
        counters: scope.take(),
        result: result.map_err(|payload| panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "experiment driver panicked".to_string()
    }
}

fn write_json<T: serde::Serialize>(path: &Path, value: &T) {
    let json = serde_json::to_string_pretty(value)
        .unwrap_or_else(|e| panic!("cannot serialize {}: {e}", path.display()));
    std::fs::write(path, json + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Runs every experiment — fanned out across `MLAM_THREADS` workers —
/// printing each table to stdout in the fixed order `repro_all` always
/// has, while the session records timing, counters and (under
/// `--json`) structured results.
///
/// Every experiment seeds its own RNG from `split_seed(session seed,
/// experiment index)`, so outputs are bit-identical at any thread
/// count. Returns the experiments whose drivers panicked (empty on a
/// clean run); callers that exit should propagate a non-zero status
/// when the list is non-empty.
pub fn run_all(session: &mut Session) -> Vec<ExperimentFailure> {
    use mlam::experiments::ablations::{run_ablations, AblationParams};
    use mlam::experiments::ac0::{run_ac0, Ac0Params};
    use mlam::experiments::corollary2::{run_corollary2, Corollary2Params};
    use mlam::experiments::exact_vs_approx::{run_exact_vs_approx, ExactVsApproxParams};
    use mlam::experiments::interpose::{run_interpose, InterposeParams};
    use mlam::experiments::lockdown::{run_lockdown, LockdownParams};
    use mlam::experiments::locking::{run_locking, LockingParams};
    use mlam::experiments::rocknroll::{run_rocknroll, RocknRollParams};
    use mlam::experiments::sequential::{run_sequential, SequentialParams};
    use mlam::experiments::spectral::{run_spectral, SpectralParams};
    use mlam::experiments::{
        run_table1, run_table2, run_table3, Table1Params, Table2Params, Table3Params,
    };

    let _span = telemetry::span("bench.run_all")
        .attr("quick", session.quick())
        .attr("threads", mlam_par::threads());
    let quick = session.quick();

    let t1 = if quick {
        Table1Params::quick()
    } else {
        Table1Params::paper()
    };
    let t2 = if quick {
        Table2Params::quick()
    } else {
        Table2Params::paper()
    };
    let t3 = if quick {
        Table3Params::quick()
    } else {
        Table3Params::paper()
    };
    let c2 = if quick {
        Corollary2Params::quick()
    } else {
        Corollary2Params::paper()
    };
    let lk = if quick {
        LockingParams::quick()
    } else {
        LockingParams::paper()
    };
    let sq = if quick {
        SequentialParams::quick()
    } else {
        SequentialParams::paper()
    };
    let ea = if quick {
        ExactVsApproxParams::quick()
    } else {
        ExactVsApproxParams::paper()
    };
    let a0 = if quick {
        Ac0Params::quick()
    } else {
        Ac0Params::paper()
    };
    let sp = if quick {
        SpectralParams::quick()
    } else {
        SpectralParams::paper()
    };
    let ip = if quick {
        InterposeParams::quick()
    } else {
        InterposeParams::paper()
    };
    let rr = if quick {
        RocknRollParams::quick()
    } else {
        RocknRollParams::paper()
    };
    let ld = if quick {
        LockdownParams::quick()
    } else {
        LockdownParams::paper()
    };
    let ab = if quick {
        AblationParams::quick()
    } else {
        AblationParams::paper()
    };

    let specs = vec![
        ExperimentSpec::new("table1", move |rng| {
            let r = run_table1(&t1, rng);
            vec![r.to_table(), r.empirical_table()]
        }),
        ExperimentSpec::new("table2", move |rng| vec![run_table2(&t2, rng).to_table()]),
        ExperimentSpec::new("table3", move |rng| vec![run_table3(&t3, rng).to_table()]),
        ExperimentSpec::new("corollary2", move |rng| {
            vec![run_corollary2(&c2, rng).to_table()]
        }),
        ExperimentSpec::new("locking", move |rng| vec![run_locking(&lk, rng).to_table()]),
        ExperimentSpec::new("sequential", move |rng| {
            vec![run_sequential(&sq, rng).to_table()]
        }),
        ExperimentSpec::new("exact_vs_approx", move |rng| {
            vec![run_exact_vs_approx(&ea, rng).to_table()]
        }),
        ExperimentSpec::new("ac0", move |rng| vec![run_ac0(&a0, rng).to_table()]),
        ExperimentSpec::new("spectral", move |rng| {
            vec![run_spectral(&sp, rng).to_table()]
        }),
        ExperimentSpec::new("interpose", move |rng| {
            vec![run_interpose(&ip, rng).to_table()]
        }),
        ExperimentSpec::new("rocknroll", move |rng| {
            vec![run_rocknroll(&rr, rng).to_table()]
        }),
        ExperimentSpec::new("lockdown", move |rng| {
            vec![run_lockdown(&ld, rng).to_table()]
        }),
        ExperimentSpec::new("ablations", move |rng| run_ablations(&ab, rng).to_tables()),
    ];
    session.run_batch(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parses_quick_and_json() {
        let opts = parse_cli(["bin", "--quick", "--json", "out/dir", "--force"].map(String::from));
        assert!(opts.quick);
        assert!(opts.force);
        assert_eq!(opts.json_dir.as_deref(), Some(Path::new("out/dir")));
        let none = parse_cli(["bin", "--other"].map(String::from));
        assert_eq!(none, CliOptions::default());
    }

    #[test]
    fn session_refuses_to_clobber_a_finished_run() {
        let dir = std::env::temp_dir().join(format!("mlam_session_clobber_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), "{}\n").unwrap();
        let options = CliOptions {
            quick: true,
            json_dir: Some(dir.clone()),
            force: false,
        };
        let result = std::panic::catch_unwind(|| Session::start("test-tool", &options));
        assert!(result.is_err(), "Session::start must refuse to clobber");
        let forced = CliOptions {
            force: true,
            ..options
        };
        let session = Session::start("test-tool", &forced);
        session.finish();
        assert!(dir.join("metrics.jsonl").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "--json requires a directory")]
    fn cli_rejects_dangling_json_flag() {
        parse_cli(["bin", "--json"].map(String::from));
    }

    #[test]
    fn session_records_experiments_without_json() {
        let mut session = Session::start("test-tool", &CliOptions::default());
        let value = session.run(
            "demo",
            || {
                mlam::telemetry::counter!("bench.test.session_counter", 3);
                41 + 1
            },
            |_| Vec::new(),
        );
        assert_eq!(value, 42);
        let manifest = session.finish();
        assert_eq!(manifest.tool, "test-tool");
        assert_eq!(manifest.experiments.len(), 1);
        let exp = &manifest.experiments[0];
        assert_eq!(exp.name, "demo");
        assert!(exp.seconds >= 0.0);
        assert_eq!(exp.counters["bench.test.session_counter"], 3);
        assert!(manifest.total_seconds >= exp.seconds);
        assert!(!manifest.crate_versions.is_empty());
    }
}
