//! Regenerates the RocknRoll correlated-chain sweep (Sections III-A,
//! V-B): many-chain XOR APUFs that are learnable because — and only
//! because — their chains are correlated.
//!
//! Usage: `cargo run --release -p mlam-bench --bin rocknroll [--quick]`

use mlam::experiments::rocknroll::{run_rocknroll, RocknRollParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        RocknRollParams::quick()
    } else {
        RocknRollParams::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_rocknroll(&params, &mut rng);
    println!("{}", result.to_table());
    println!(
        "comparable with the distribution-free hardness claim of [9]? {}",
        result.comparable_with_hardness_claim
    );
}
