//! Regenerates the RocknRoll correlated-chain sweep (Sections III-A,
//! V-B): many-chain XOR APUFs that are learnable because — and only
//! because — their chains are correlated.
//!
//! Usage: `cargo run --release -p mlam-bench --bin rocknroll [--quick] [--json <dir>]`

use mlam::experiments::rocknroll::{run_rocknroll, RocknRollParams};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        RocknRollParams::quick()
    } else {
        RocknRollParams::paper()
    };
    let mut session = Session::start("rocknroll", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "rocknroll",
        || run_rocknroll(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    println!(
        "comparable with the distribution-free hardness claim of [9]? {}",
        result.comparable_with_hardness_claim
    );
    session.finish();
}
