//! Regenerates the Corollary 2 demonstration (exact learning with
//! membership queries, poly(n) query growth).
//!
//! Usage: `cargo run --release -p mlam-bench --bin corollary2 [--quick]`

use mlam::experiments::corollary2::{run_corollary2, Corollary2Params};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        Corollary2Params::quick()
    } else {
        Corollary2Params::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_corollary2(&params, &mut rng);
    println!("{}", result.to_table());
}
