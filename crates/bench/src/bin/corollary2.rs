//! Regenerates the Corollary 2 demonstration (exact learning with
//! membership queries, poly(n) query growth).
//!
//! Usage: `cargo run --release -p mlam-bench --bin corollary2 [--quick] [--json <dir>]`

use mlam::experiments::corollary2::{run_corollary2, Corollary2Params};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        Corollary2Params::quick()
    } else {
        Corollary2Params::paper()
    };
    let mut session = Session::start("corollary2", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "corollary2",
        || run_corollary2(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    session.finish();
}
