//! Regenerates the Interpose PUF representation experiment.
//!
//! Usage: `cargo run --release -p mlam-bench --bin interpose [--quick]`

use mlam::experiments::interpose::{run_interpose, InterposeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        InterposeParams::quick()
    } else {
        InterposeParams::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_interpose(&params, &mut rng);
    println!("{}", result.to_table());
    println!("CMA-ES fitness evaluations: {}", result.evaluations);
}
