//! Regenerates the Interpose PUF representation experiment.
//!
//! Usage: `cargo run --release -p mlam-bench --bin interpose [--quick] [--json <dir>]`

use mlam::experiments::interpose::{run_interpose, InterposeParams};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        InterposeParams::quick()
    } else {
        InterposeParams::paper()
    };
    let mut session = Session::start("interpose", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "interpose",
        || run_interpose(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    println!("CMA-ES fitness evaluations: {}", result.evaluations);
    session.finish();
}
