//! Regenerates the exact-vs-approximate sweep on SARLock point-function
//! locking (Section IV-A).
//!
//! Usage: `cargo run --release -p mlam-bench --bin exact_vs_approx [--quick] [--json <dir>]`

use mlam::experiments::exact_vs_approx::{run_exact_vs_approx, ExactVsApproxParams};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        ExactVsApproxParams::quick()
    } else {
        ExactVsApproxParams::paper()
    };
    let mut session = Session::start("exact_vs_approx", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "exact_vs_approx",
        || run_exact_vs_approx(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    if let Some(p) = &result.detected_pitfall {
        println!("detected pitfall: {p}");
    }
    session.finish();
}
