//! Regenerates the exact-vs-approximate sweep on SARLock point-function
//! locking (Section IV-A).
//!
//! Usage: `cargo run --release -p mlam-bench --bin exact_vs_approx [--quick]`

use mlam::experiments::exact_vs_approx::{run_exact_vs_approx, ExactVsApproxParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        ExactVsApproxParams::quick()
    } else {
        ExactVsApproxParams::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_exact_vs_approx(&params, &mut rng);
    println!("{}", result.to_table());
    if let Some(p) = &result.detected_pitfall {
        println!("detected pitfall: {p}");
    }
}
