//! Regenerates Table I (analytic bounds + empirical cross-check).
//!
//! Usage: `cargo run --release -p mlam-bench --bin table1 [--quick] [--json <dir>]`

use mlam::experiments::{run_table1, Table1Params};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        Table1Params::quick()
    } else {
        Table1Params::paper()
    };
    let mut session = Session::start("table1", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "table1",
        || run_table1(&params, &mut rng),
        |r| {
            let mut tables = vec![r.to_table()];
            if !r.empirical.is_empty() {
                tables.push(r.empirical_table());
            }
            tables
        },
    );
    println!("{}", result.to_table());
    if !result.empirical.is_empty() {
        println!("{}", result.empirical_table());
    }
    println!(
        "shape check: VC(uniform) < Perceptron(arbitrary) for k>=2: {}",
        result
            .bounds
            .iter()
            .filter(|b| b.k >= 2)
            .all(|b| b.general_bound < b.perceptron_bound)
    );
    session.finish();
}
