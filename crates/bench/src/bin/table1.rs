//! Regenerates Table I (analytic bounds + empirical cross-check).
//!
//! Usage: `cargo run --release -p mlam-bench --bin table1 [--quick]
//! [--json <dir>] [--force] [--monitor <addr>] [--progress]`
//!
//! `--monitor <addr>` serves `/metrics`, `/progress`, `/curves` and
//! `/healthz` for the duration of the run; `--progress` prints
//! progress/ETA lines to stderr. Under `--json` or `--monitor` the
//! learner emits accuracy-vs-queries checkpoints (`curves.jsonl`,
//! live on `/curves`). None of it perturbs results — stdout and every
//! deterministic artifact are byte-identical either way. See
//! OBSERVABILITY.md.

use mlam::experiments::{run_table1, Table1Params};
use mlam_bench::{parse_cli, Session};

// Heap gauges on /metrics need the tracking allocator installed at
// link time; accounting stays off unless MLAM_TRACK_ALLOC=1 opts in.
#[global_allocator]
static ALLOC: mlam_monitor::alloc::TrackingAlloc = mlam_monitor::alloc::TrackingAlloc;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        Table1Params::quick()
    } else {
        Table1Params::paper()
    };
    let mut session = Session::start("table1", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "table1",
        || run_table1(&params, &mut rng),
        |r| {
            let mut tables = vec![r.to_table()];
            if !r.empirical.is_empty() {
                tables.push(r.empirical_table());
            }
            tables
        },
    );
    println!("{}", result.to_table());
    if !result.empirical.is_empty() {
        println!("{}", result.empirical_table());
    }
    println!(
        "shape check: VC(uniform) < Perceptron(arbitrary) for k>=2: {}",
        result
            .bounds
            .iter()
            .filter(|b| b.k >= 2)
            .all(|b| b.general_bound < b.perceptron_bound)
    );
    session.finish();
}
