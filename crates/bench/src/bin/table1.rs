//! Regenerates Table I (analytic bounds + empirical cross-check).
//!
//! Usage: `cargo run --release -p mlam-bench --bin table1 [--quick]`

use mlam::experiments::{run_table1, Table1Params};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        Table1Params::quick()
    } else {
        Table1Params::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_table1(&params, &mut rng);
    println!("{}", result.to_table());
    if !result.empirical.is_empty() {
        println!("{}", result.empirical_table());
    }
    println!(
        "shape check: VC(uniform) < Perceptron(arbitrary) for k>=2: {}",
        result
            .bounds
            .iter()
            .filter(|b| b.k >= 2)
            .all(|b| b.general_bound < b.perceptron_bound)
    );
}
