//! Regenerates the lockdown-defense sweep (reference \[10\]): attack
//! accuracy as a function of the interface-enforced CRP budget.
//!
//! Usage: `cargo run --release -p mlam-bench --bin lockdown [--quick]`

use mlam::experiments::lockdown::{run_lockdown, LockdownParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        LockdownParams::quick()
    } else {
        LockdownParams::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_lockdown(&params, &mut rng);
    println!("{}", result.to_table());
}
