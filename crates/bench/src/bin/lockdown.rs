//! Regenerates the lockdown-defense sweep (reference \[10\]): attack
//! accuracy as a function of the interface-enforced CRP budget.
//!
//! Usage: `cargo run --release -p mlam-bench --bin lockdown [--quick] [--json <dir>]`

use mlam::experiments::lockdown::{run_lockdown, LockdownParams};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        LockdownParams::quick()
    } else {
        LockdownParams::paper()
    };
    let mut session = Session::start("lockdown", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "lockdown",
        || run_lockdown(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    session.finish();
}
