//! Regenerates Table III (halfspace tester on BR PUF CRPs).
//!
//! Usage: `cargo run --release -p mlam-bench --bin table3 [--quick]`

use mlam::experiments::{run_table3, Table3Params};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        Table3Params::quick()
    } else {
        Table3Params::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_table3(&params, &mut rng);
    println!("{}", result.to_table());
}
