//! Regenerates Table III (halfspace tester on BR PUF CRPs).
//!
//! Usage: `cargo run --release -p mlam-bench --bin table3 [--quick]
//! [--json <dir>] [--force] [--monitor <addr>] [--progress]`
//!
//! `--monitor <addr>` serves `/metrics`, `/progress`, `/curves` and
//! `/healthz` for the duration of the run; `--progress` prints
//! progress/ETA lines to stderr. Under `--json` or `--monitor` the
//! tester emits accuracy-vs-queries checkpoints (`curves.jsonl`,
//! live on `/curves`). None of it perturbs results. See
//! OBSERVABILITY.md.

use mlam::experiments::{run_table3, Table3Params};
use mlam_bench::{parse_cli, Session};

// Heap gauges on /metrics need the tracking allocator installed at
// link time; accounting stays off unless MLAM_TRACK_ALLOC=1 opts in.
#[global_allocator]
static ALLOC: mlam_monitor::alloc::TrackingAlloc = mlam_monitor::alloc::TrackingAlloc;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        Table3Params::quick()
    } else {
        Table3Params::paper()
    };
    let mut session = Session::start("table3", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "table3",
        || run_table3(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    session.finish();
}
