//! Regenerates Table III (halfspace tester on BR PUF CRPs).
//!
//! Usage: `cargo run --release -p mlam-bench --bin table3 [--quick] [--json <dir>]`

use mlam::experiments::{run_table3, Table3Params};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        Table3Params::quick()
    } else {
        Table3Params::paper()
    };
    let mut session = Session::start("table3", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "table3",
        || run_table3(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    session.finish();
}
