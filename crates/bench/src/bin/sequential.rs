//! Regenerates the sequential-locking (L* on HARPOON-obfuscated FSM)
//! sweep.
//!
//! Usage: `cargo run --release -p mlam-bench --bin sequential [--quick] [--json <dir>]`

use mlam::experiments::sequential::{run_sequential, SequentialParams};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        SequentialParams::quick()
    } else {
        SequentialParams::paper()
    };
    let mut session = Session::start("sequential", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "sequential",
        || run_sequential(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    session.finish();
}
