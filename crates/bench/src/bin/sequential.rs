//! Regenerates the sequential-locking (L* on HARPOON-obfuscated FSM)
//! sweep.
//!
//! Usage: `cargo run --release -p mlam-bench --bin sequential [--quick]`

use mlam::experiments::sequential::{run_sequential, SequentialParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        SequentialParams::quick()
    } else {
        SequentialParams::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_sequential(&params, &mut rng);
    println!("{}", result.to_table());
}
