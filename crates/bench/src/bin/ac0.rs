//! Regenerates the AC0 uniform-learnability demonstration (Section III).
//!
//! Usage: `cargo run --release -p mlam-bench --bin ac0 [--quick]`

use mlam::experiments::ac0::{run_ac0, Ac0Params};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick { Ac0Params::quick() } else { Ac0Params::paper() };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    println!("{}", run_ac0(&params, &mut rng).to_table());
}
