//! Regenerates the AC0 uniform-learnability demonstration (Section III).
//!
//! Usage: `cargo run --release -p mlam-bench --bin ac0 [--quick] [--json <dir>]`

use mlam::experiments::ac0::{run_ac0, Ac0Params};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        Ac0Params::quick()
    } else {
        Ac0Params::paper()
    };
    let mut session = Session::start("ac0", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run("ac0", || run_ac0(&params, &mut rng), |r| vec![r.to_table()]);
    println!("{}", result.to_table());
    session.finish();
}
