//! Regenerates Table II (Chow-parameter LTF accuracy plateau).
//!
//! Usage: `cargo run --release -p mlam-bench --bin table2 [--quick]`

use mlam::experiments::{run_table2, Table2Params};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        Table2Params::quick()
    } else {
        Table2Params::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_table2(&params, &mut rng);
    println!("{}", result.to_table());
    println!(
        "plateau gains (last budget - first budget, per n): {:?}",
        result
            .plateau_gains()
            .iter()
            .map(|g| format!("{:+.2} pp", g * 100.0))
            .collect::<Vec<_>>()
    );
}
