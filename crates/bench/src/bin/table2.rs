//! Regenerates Table II (Chow-parameter LTF accuracy plateau).
//!
//! Usage: `cargo run --release -p mlam-bench --bin table2 [--quick]
//! [--json <dir>] [--force] [--monitor <addr>] [--progress]`
//!
//! `--monitor <addr>` serves `/metrics`, `/progress`, `/curves` and
//! `/healthz` for the duration of the run; `--progress` prints
//! progress/ETA lines to stderr. Under `--json` or `--monitor` the
//! learner emits accuracy-vs-queries checkpoints (`curves.jsonl`,
//! live on `/curves`). None of it perturbs results. See
//! OBSERVABILITY.md.

use mlam::experiments::{run_table2, Table2Params};
use mlam_bench::{parse_cli, Session};

// Heap gauges on /metrics need the tracking allocator installed at
// link time; accounting stays off unless MLAM_TRACK_ALLOC=1 opts in.
#[global_allocator]
static ALLOC: mlam_monitor::alloc::TrackingAlloc = mlam_monitor::alloc::TrackingAlloc;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        Table2Params::quick()
    } else {
        Table2Params::paper()
    };
    let mut session = Session::start("table2", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "table2",
        || run_table2(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    println!(
        "plateau gains (last budget - first budget, per n): {:?}",
        result
            .plateau_gains()
            .iter()
            .map(|g| format!("{:+.2} pp", g * 100.0))
            .collect::<Vec<_>>()
    );
    session.finish();
}
