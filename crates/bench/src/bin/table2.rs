//! Regenerates Table II (Chow-parameter LTF accuracy plateau).
//!
//! Usage: `cargo run --release -p mlam-bench --bin table2 [--quick] [--json <dir>]`

use mlam::experiments::{run_table2, Table2Params};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        Table2Params::quick()
    } else {
        Table2Params::paper()
    };
    let mut session = Session::start("table2", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "table2",
        || run_table2(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    println!(
        "plateau gains (last budget - first budget, per n): {:?}",
        result
            .plateau_gains()
            .iter()
            .map(|g| format!("{:+.2} pp", g * 100.0))
            .collect::<Vec<_>>()
    );
    session.finish();
}
