//! Regenerates the logic-locking attack comparison (SAT vs AppSAT vs
//! random-example PAC attack).
//!
//! Usage: `cargo run --release -p mlam-bench --bin locking [--quick] [--json <dir>]`

use mlam::experiments::locking::{run_locking, LockingParams};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        LockingParams::quick()
    } else {
        LockingParams::paper()
    };
    let mut session = Session::start("locking", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "locking",
        || run_locking(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    session.finish();
}
