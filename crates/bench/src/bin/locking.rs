//! Regenerates the logic-locking attack comparison (SAT vs AppSAT vs
//! random-example PAC attack).
//!
//! Usage: `cargo run --release -p mlam-bench --bin locking [--quick]`

use mlam::experiments::locking::{run_locking, LockingParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        LockingParams::quick()
    } else {
        LockingParams::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_locking(&params, &mut rng);
    println!("{}", result.to_table());
}
