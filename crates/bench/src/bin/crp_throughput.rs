//! CRP-throughput microbench: bit-sliced vs scalar evaluation of a
//! 64-stage 4-XOR Arbiter PUF (the `BENCH_4.json` benchmark).
//!
//! Usage: `cargo run --release -p mlam-bench --bin crp_throughput [--quick] [--json <dir>]`
//!
//! Two experiments:
//!
//! - `collect` gathers CRPs under the **ambient** eval path (bit-sliced
//!   unless `MLAM_EVAL_PATH=scalar`) and folds the responses into
//!   behavior counters (`bench.crp.response_ones`,
//!   `bench.crp.response_checksum`). Running the binary twice — once
//!   plain, once with `MLAM_EVAL_PATH=scalar` — and diffing with
//!   `mlam-trace compare --ignore-counter puf.batch.` proves the two
//!   paths produce byte-identical responses; only the `puf.batch.*`
//!   path-attribution counters may differ.
//! - `throughput` times both paths explicitly at `MLAM_THREADS` 1 and
//!   4 on a fixed challenge set and reports challenges/second, after
//!   asserting the two paths return identical response vectors.

use mlam::boolean::BitVec;
use mlam::puf::challenge::random_challenges;
use mlam::puf::{crp, PufModel, XorArbiterPuf};
use mlam::report::{eng, Table};
use mlam::telemetry::counter;
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const STAGES: usize = 64;
const CHAINS: usize = 4;

struct Params {
    /// CRPs gathered by the `collect` experiment.
    collect_count: usize,
    /// Challenges per timed phase of the `throughput` experiment.
    throughput_count: usize,
    /// Timed repetitions per phase (median reported).
    trials: usize,
}

impl Params {
    fn quick() -> Self {
        Params {
            collect_count: 4_096,
            throughput_count: 8_192,
            trials: 3,
        }
    }

    fn paper() -> Self {
        Params {
            collect_count: 20_000,
            throughput_count: 262_144,
            trials: 5,
        }
    }
}

/// Restores (or removes) an environment variable on drop, so the timed
/// phases can force `MLAM_EVAL_PATH`/`MLAM_THREADS` without leaking the
/// override into the rest of the run.
struct EnvGuard {
    key: &'static str,
    prior: Option<String>,
}

impl EnvGuard {
    fn set(key: &'static str, value: Option<&str>) -> Self {
        let prior = std::env::var(key).ok();
        match value {
            Some(v) => std::env::set_var(key, v),
            None => std::env::remove_var(key),
        }
        EnvGuard { key, prior }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        match &self.prior {
            Some(v) => std::env::set_var(self.key, v),
            None => std::env::remove_var(self.key),
        }
    }
}

struct CollectSummary {
    crps: usize,
    ones: usize,
    checksum: u64,
}

impl CollectSummary {
    fn to_table(&self) -> Table {
        let mut table = Table::new(
            "CRP collection (ambient eval path)",
            &["crps", "response_ones", "checksum"],
        );
        table.row_display(&[
            &self.crps as &dyn std::fmt::Display,
            &self.ones,
            &format_args!("{:#018x}", self.checksum),
        ]);
        table
    }
}

/// Collects CRPs on the ambient path and folds the response stream into
/// order-sensitive counters that `mlam-trace compare` can diff.
fn run_collect(puf: &XorArbiterPuf, count: usize, rng: &mut StdRng) -> CollectSummary {
    let set = crp::collect_uniform(puf, count, rng);
    let ones = set.crps().iter().filter(|c| c.response).count();
    // Position-weighted wrapping checksum: any response flip or
    // reordering changes it, so counter identity between a scalar and a
    // bit-sliced run certifies the full response vector.
    let mut checksum = 0u64;
    for (i, c) in set.crps().iter().enumerate() {
        if c.response {
            checksum = checksum.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }
    counter!("bench.crp.response_ones", ones);
    counter!("bench.crp.response_checksum", checksum);
    CollectSummary {
        crps: set.len(),
        ones,
        checksum,
    }
}

struct Phase {
    path: &'static str,
    threads: usize,
    median_seconds: f64,
    rate: f64,
}

struct ThroughputSummary {
    challenges: usize,
    phases: Vec<Phase>,
}

impl ThroughputSummary {
    fn rate_of(&self, path: &str, threads: usize) -> f64 {
        self.phases
            .iter()
            .find(|p| p.path == path && p.threads == threads)
            .map(|p| p.rate)
            .unwrap_or(f64::NAN)
    }

    fn to_table(&self) -> Table {
        let mut table = Table::new(
            "CRP throughput — 64-stage 4-XOR Arbiter",
            &["path", "threads", "challenges", "median_s", "challenges/s"],
        );
        for p in &self.phases {
            table.row(&[
                p.path.to_string(),
                p.threads.to_string(),
                self.challenges.to_string(),
                format!("{:.4}", p.median_seconds),
                eng(p.rate),
            ]);
        }
        table
    }
}

fn median_eval_seconds(puf: &XorArbiterPuf, challenges: &[BitVec], trials: usize) -> f64 {
    let mut times: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            let responses = puf.eval_batch(challenges);
            let seconds = start.elapsed().as_secs_f64();
            std::hint::black_box(responses);
            seconds
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Times both eval paths at 1 and 4 threads on one fixed challenge set.
///
/// `MLAM_EVAL_PATH` and `MLAM_THREADS` are forced per phase (the
/// runtime re-reads both on every call) and restored afterwards, so the
/// phase grid is identical no matter what environment the binary runs
/// under — the counters this experiment emits never depend on the
/// ambient A/B configuration.
fn run_throughput(puf: &XorArbiterPuf, challenges: &[BitVec], trials: usize) -> ThroughputSummary {
    // Equivalence first: the two paths must agree bit-for-bit.
    let scalar = {
        let _path = EnvGuard::set("MLAM_EVAL_PATH", Some("scalar"));
        puf.eval_batch(challenges)
    };
    let bitsliced = {
        let _path = EnvGuard::set("MLAM_EVAL_PATH", None);
        puf.eval_batch(challenges)
    };
    assert_eq!(scalar, bitsliced, "scalar and bit-sliced paths disagree");

    let mut phases = Vec::new();
    for (path, forced) in [("scalar", Some("scalar")), ("bitsliced", None)] {
        let _path = EnvGuard::set("MLAM_EVAL_PATH", forced);
        for threads in [1usize, 4] {
            let _threads = EnvGuard::set("MLAM_THREADS", Some(&threads.to_string()));
            let median_seconds = median_eval_seconds(puf, challenges, trials);
            phases.push(Phase {
                path,
                threads,
                median_seconds,
                rate: challenges.len() as f64 / median_seconds,
            });
        }
    }
    ThroughputSummary {
        challenges: challenges.len(),
        phases,
    }
}

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        Params::quick()
    } else {
        Params::paper()
    };
    let mut session = Session::start("crp_throughput", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let puf = XorArbiterPuf::sample(STAGES, CHAINS, 0.0, &mut rng);

    let collect = session.run(
        "collect",
        || run_collect(&puf, params.collect_count, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", collect.to_table());

    let challenges = random_challenges(STAGES, params.throughput_count, &mut rng);
    let throughput = session.run(
        "throughput",
        || run_throughput(&puf, &challenges, params.trials),
        |r| vec![r.to_table()],
    );
    println!("{}", throughput.to_table());
    for threads in [1usize, 4] {
        let speedup =
            throughput.rate_of("bitsliced", threads) / throughput.rate_of("scalar", threads);
        println!("bit-sliced speedup @ {threads} thread(s): {speedup:.1}x");
    }

    session.finish();
}
