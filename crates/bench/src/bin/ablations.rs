//! Regenerates the four design-choice ablations of DESIGN.md.
//!
//! Usage: `cargo run --release -p mlam-bench --bin ablations [--quick] [--json <dir>]`

use mlam::experiments::ablations::{run_ablations, AblationParams};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        AblationParams::quick()
    } else {
        AblationParams::paper()
    };
    let mut session = Session::start("ablations", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "ablations",
        || run_ablations(&params, &mut rng),
        |r| r.to_tables(),
    );
    for table in result.to_tables() {
        println!("{table}");
    }
    session.finish();
}
