//! Regenerates the four design-choice ablations of DESIGN.md.
//!
//! Usage: `cargo run --release -p mlam-bench --bin ablations [--quick]`

use mlam::experiments::ablations::{run_ablations, AblationParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        AblationParams::quick()
    } else {
        AblationParams::paper()
    };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    let result = run_ablations(&params, &mut rng);
    for table in result.to_tables() {
        println!("{table}");
    }
}
