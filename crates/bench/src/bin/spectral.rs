//! Regenerates the spectral access-model comparison (LMN vs KM on one
//! BR PUF; Section IV with representation held fixed).
//!
//! Usage: `cargo run --release -p mlam-bench --bin spectral [--quick] [--json <dir>]`

use mlam::experiments::spectral::{run_spectral, SpectralParams};
use mlam_bench::{parse_cli, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let options = parse_cli(std::env::args());
    let params = if options.quick {
        SpectralParams::quick()
    } else {
        SpectralParams::paper()
    };
    let mut session = Session::start("spectral", &options);
    let mut rng = StdRng::seed_from_u64(session.seed());
    let result = session.run(
        "spectral",
        || run_spectral(&params, &mut rng),
        |r| vec![r.to_table()],
    );
    println!("{}", result.to_table());
    session.finish();
}
