//! Regenerates the spectral access-model comparison (LMN vs KM on one
//! BR PUF; Section IV with representation held fixed).
//!
//! Usage: `cargo run --release -p mlam-bench --bin spectral [--quick]`

use mlam::experiments::spectral::{run_spectral, SpectralParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick { SpectralParams::quick() } else { SpectralParams::paper() };
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);
    println!("{}", run_spectral(&params, &mut rng).to_table());
}
