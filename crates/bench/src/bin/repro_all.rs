//! Runs every experiment in sequence and prints all tables — the
//! one-shot reproduction entry point referenced by EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p mlam-bench --bin repro_all [--quick]`

use mlam::experiments::ablations::{run_ablations, AblationParams};
use mlam::experiments::ac0::{run_ac0, Ac0Params};
use mlam::experiments::spectral::{run_spectral, SpectralParams};
use mlam::experiments::corollary2::{run_corollary2, Corollary2Params};
use mlam::experiments::exact_vs_approx::{run_exact_vs_approx, ExactVsApproxParams};
use mlam::experiments::interpose::{run_interpose, InterposeParams};
use mlam::experiments::lockdown::{run_lockdown, LockdownParams};
use mlam::experiments::locking::{run_locking, LockingParams};
use mlam::experiments::rocknroll::{run_rocknroll, RocknRollParams};
use mlam::experiments::sequential::{run_sequential, SequentialParams};
use mlam::experiments::{
    run_table1, run_table2, run_table3, Table1Params, Table2Params, Table3Params,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut rng = StdRng::seed_from_u64(0xDA7E_2020);

    let t1 = if quick { Table1Params::quick() } else { Table1Params::paper() };
    let r1 = run_table1(&t1, &mut rng);
    println!("{}", r1.to_table());
    println!("{}", r1.empirical_table());

    let t2 = if quick { Table2Params::quick() } else { Table2Params::paper() };
    println!("{}", run_table2(&t2, &mut rng).to_table());

    let t3 = if quick { Table3Params::quick() } else { Table3Params::paper() };
    println!("{}", run_table3(&t3, &mut rng).to_table());

    let c2 = if quick { Corollary2Params::quick() } else { Corollary2Params::paper() };
    println!("{}", run_corollary2(&c2, &mut rng).to_table());

    let lk = if quick { LockingParams::quick() } else { LockingParams::paper() };
    println!("{}", run_locking(&lk, &mut rng).to_table());

    let sq = if quick { SequentialParams::quick() } else { SequentialParams::paper() };
    println!("{}", run_sequential(&sq, &mut rng).to_table());

    let ea = if quick { ExactVsApproxParams::quick() } else { ExactVsApproxParams::paper() };
    println!("{}", run_exact_vs_approx(&ea, &mut rng).to_table());

    let a0 = if quick { Ac0Params::quick() } else { Ac0Params::paper() };
    println!("{}", run_ac0(&a0, &mut rng).to_table());

    let sp = if quick { SpectralParams::quick() } else { SpectralParams::paper() };
    println!("{}", run_spectral(&sp, &mut rng).to_table());

    let ip = if quick { InterposeParams::quick() } else { InterposeParams::paper() };
    println!("{}", run_interpose(&ip, &mut rng).to_table());

    let rr = if quick { RocknRollParams::quick() } else { RocknRollParams::paper() };
    println!("{}", run_rocknroll(&rr, &mut rng).to_table());

    let ld = if quick { LockdownParams::quick() } else { LockdownParams::paper() };
    println!("{}", run_lockdown(&ld, &mut rng).to_table());

    let ab = if quick { AblationParams::quick() } else { AblationParams::paper() };
    for table in run_ablations(&ab, &mut rng).to_tables() {
        println!("{table}");
    }
}
