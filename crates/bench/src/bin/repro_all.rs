//! Runs every experiment in sequence and prints all tables — the
//! one-shot reproduction entry point referenced by EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p mlam-bench --bin repro_all
//! [--quick] [--json <dir>] [--force]`
//!
//! With `--json <dir>`, also writes `manifest.json`, `metrics.jsonl`,
//! `events.jsonl` and one `<experiment>.json` per experiment; stdout
//! is unchanged. The directory is created recursively; a directory
//! that already holds a `manifest.json` is refused unless `--force`
//! is given.

use mlam_bench::{parse_cli, run_all, Session};

fn main() {
    let options = parse_cli(std::env::args());
    let mut session = Session::start("repro_all", &options);
    run_all(&mut session);
    session.finish();
}
