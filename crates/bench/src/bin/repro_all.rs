//! Runs every experiment and prints all tables — the one-shot
//! reproduction entry point referenced by EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p mlam-bench --bin repro_all
//! [--quick] [--json <dir>] [--force] [--resume <dir>]
//! [--monitor <addr>] [--progress]`
//!
//! Experiments are fanned out across `MLAM_THREADS` worker threads
//! (default: available parallelism; `1` runs inline). Results are
//! bit-identical at any thread count: each experiment derives its own
//! RNG from the fixed root seed and its index, and tables are printed
//! in the fixed experiment order.
//!
//! With `--json <dir>`, also writes `manifest.json`, `metrics.jsonl`,
//! `events.jsonl` and one `<experiment>.json` per experiment; stdout
//! is unchanged. The directory is created recursively; a directory
//! that already holds a `manifest.json` is refused unless `--force`
//! is given.
//!
//! Exits non-zero when any experiment driver fails. The remaining
//! experiments still run; the failed ones are recorded as partial
//! results marked `degraded: true` in the manifest and their
//! checkpoint file.
//!
//! With `--resume <dir>`, continues an interrupted `--json <dir>` run:
//! experiments with complete checkpoints for the same seed and
//! `--quick` flag are skipped (their tables are not reprinted; a note
//! goes to stderr), everything else — missing, corrupt, or degraded —
//! re-runs from its original per-experiment seed, so the final run
//! directory is bit-identical to an uninterrupted run. See HARNESS.md.
//!
//! With `--monitor <addr>` (e.g. `127.0.0.1:9100`), serves live
//! observability for the duration of the run: `/metrics` (Prometheus
//! text exposition), `/progress` (JSON completed/total + ETA) and
//! `/healthz`. `--progress` prints progress/ETA lines to stderr as
//! experiments finish. Neither perturbs results: stdout and every
//! deterministic output (counters, tables, manifests — everything but
//! wall-clock timing fields) are byte-identical with monitoring on or
//! off. See OBSERVABILITY.md.

use mlam_bench::{parse_cli, run_all, Session};

// Heap gauges on /metrics need the tracking allocator installed at
// link time; accounting stays off (one relaxed load per allocation)
// unless MLAM_TRACK_ALLOC=1 opts in.
#[global_allocator]
static ALLOC: mlam_monitor::alloc::TrackingAlloc = mlam_monitor::alloc::TrackingAlloc;

fn main() {
    let options = parse_cli(std::env::args());
    let mut session = Session::start("repro_all", &options);
    let failures = run_all(&mut session);
    session.finish();
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("experiment {} failed: {}", failure.name, failure.message);
        }
        std::process::exit(1);
    }
}
