//! The hard determinism contract, end to end: `repro_all --quick`
//! must produce identical results at `MLAM_THREADS=1` and
//! `MLAM_THREADS=4` — byte-identical per-experiment JSON (modulo the
//! wall-clock `seconds` field), identical per-experiment counter
//! deltas, and zero drift under `mlam-trace compare`.

use mlam::telemetry::RunManifest;
use mlam_bench::ExperimentJson;
use std::path::Path;
use std::process::Command;

/// Runs the real `repro_all` binary with a pinned thread count.
fn run_repro(dir: &Path, threads: &str) {
    let status = Command::new(env!("CARGO_BIN_EXE_repro_all"))
        .args(["--quick", "--json"])
        .arg(dir)
        .env("MLAM_THREADS", threads)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn repro_all");
    assert!(
        status.success(),
        "repro_all failed at MLAM_THREADS={threads}"
    );
}

/// Drops every line mentioning the wall-clock field; everything else
/// must match byte for byte.
fn strip_seconds(text: &str) -> String {
    text.lines()
        .filter(|line| !line.contains("\"seconds\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn quick_run_is_identical_at_one_and_four_threads() {
    let base = std::env::temp_dir().join(format!("mlam_par_det_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dir_1 = base.join("t1");
    let dir_4 = base.join("t4");
    run_repro(&dir_1, "1");
    run_repro(&dir_4, "4");

    let manifest_1: RunManifest = serde_json::from_str(
        &std::fs::read_to_string(dir_1.join("manifest.json")).expect("t1 manifest"),
    )
    .expect("parse t1 manifest");
    let manifest_4: RunManifest = serde_json::from_str(
        &std::fs::read_to_string(dir_4.join("manifest.json")).expect("t4 manifest"),
    )
    .expect("parse t4 manifest");

    assert_eq!(manifest_1.threads, 1);
    assert_eq!(manifest_4.threads, 4);
    assert_eq!(manifest_1.seed, manifest_4.seed);
    assert_eq!(manifest_1.experiments.len(), manifest_4.experiments.len());
    for (a, b) in manifest_1.experiments.iter().zip(&manifest_4.experiments) {
        assert_eq!(
            a.name, b.name,
            "experiment order must not depend on threads"
        );
        assert_eq!(
            a.counters, b.counters,
            "experiment {} drifts across thread counts",
            a.name
        );
    }

    // Per-experiment result files: byte-identical modulo `seconds`.
    for record in &manifest_1.experiments {
        let name = &record.name;
        let text_1 =
            std::fs::read_to_string(dir_1.join(format!("{name}.json"))).expect("t1 result");
        let text_4 =
            std::fs::read_to_string(dir_4.join(format!("{name}.json"))).expect("t4 result");
        assert_eq!(
            strip_seconds(&text_1),
            strip_seconds(&text_4),
            "{name}.json differs between MLAM_THREADS=1 and 4"
        );
        // And the structured view agrees once wall-clock is zeroed.
        let mut parsed_1: ExperimentJson = serde_json::from_str(&text_1).expect("parse t1");
        let mut parsed_4: ExperimentJson = serde_json::from_str(&text_4).expect("parse t4");
        parsed_1.seconds = 0.0;
        parsed_4.seconds = 0.0;
        assert_eq!(parsed_1, parsed_4, "{name} structured results differ");
    }

    // The regression gate agrees: zero counter drift between the runs.
    let options = mlam_trace::compare::CompareOptions {
        threshold: 2.0,
        min_wall_s: 1.0,
        ..Default::default()
    };
    let report = mlam_trace::compare::compare(&manifest_1, &manifest_4, &options);
    assert!(
        !report.has_counter_drift(),
        "thread counts must not drift counters:\n{}",
        report.render()
    );

    let _ = std::fs::remove_dir_all(&base);
}
