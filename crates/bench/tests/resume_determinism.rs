//! Kill-and-resume contract of `repro_all --resume <dir>`: a run
//! directory truncated mid-run (final manifest never written, some
//! checkpoints missing, one killed mid-write) resumes to results
//! bit-identical to an uninterrupted run — even at a different
//! `MLAM_THREADS` setting, since every experiment re-runs from its
//! original `split_seed(seed, index)` stream.

use mlam::telemetry::RunManifest;
use mlam_bench::{run_all, CliOptions, ExperimentJson, Session};
use std::path::Path;

/// Runs the full `--quick --json <dir>` batch at a forced thread count.
fn run_full(dir: &Path, threads: &str) -> RunManifest {
    std::env::set_var("MLAM_THREADS", threads);
    let options = CliOptions {
        quick: true,
        json_dir: Some(dir.to_path_buf()),
        force: false,
        resume: None,
        ..CliOptions::default()
    };
    let mut session = Session::start("repro_all", &options);
    let failures = run_all(&mut session);
    assert!(failures.is_empty(), "experiment failures: {failures:?}");
    session.finish()
}

/// Resumes an interrupted run directory at a forced thread count.
fn run_resume(dir: &Path, threads: &str) -> RunManifest {
    std::env::set_var("MLAM_THREADS", threads);
    let options = CliOptions {
        quick: true,
        json_dir: None,
        force: false,
        resume: Some(dir.to_path_buf()),
        ..CliOptions::default()
    };
    let mut session = Session::start("repro_all", &options);
    let failures = run_all(&mut session);
    assert!(failures.is_empty(), "experiment failures: {failures:?}");
    session.finish()
}

fn read_experiment(dir: &Path, name: &str) -> ExperimentJson {
    let path = dir.join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad JSON in {}: {e}", path.display()))
}

#[test]
fn truncated_run_resumes_bit_identically() {
    let base = std::env::temp_dir().join(format!("mlam_resume_det_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let reference = base.join("reference");
    let interrupted = base.join("interrupted");

    let reference_manifest = run_full(&reference, "1");
    let _ = run_full(&interrupted, "1");

    // Simulate a mid-run kill: the final manifest and metrics were
    // never written, three experiments never checkpointed, and one
    // checkpoint was truncated mid-write.
    std::fs::remove_file(interrupted.join("manifest.json")).unwrap();
    std::fs::remove_file(interrupted.join("metrics.jsonl")).unwrap();
    for never_ran in ["table1", "spectral", "interpose"] {
        std::fs::remove_file(interrupted.join(format!("{never_ran}.json"))).unwrap();
    }
    let killed = interrupted.join("lockdown.json");
    let text = std::fs::read_to_string(&killed).unwrap();
    std::fs::write(&killed, &text[..text.len() / 2]).unwrap();

    // Resume at a different thread count: split-seeded streams make
    // the re-runs independent of scheduling.
    let resumed_manifest = run_resume(&interrupted, "4");
    std::env::remove_var("MLAM_THREADS");

    // The manifest's experiment records match the uninterrupted run
    // exactly, modulo wall-clock.
    assert_eq!(
        reference_manifest.experiments.len(),
        resumed_manifest.experiments.len()
    );
    for (reference_exp, resumed_exp) in reference_manifest
        .experiments
        .iter()
        .zip(&resumed_manifest.experiments)
    {
        assert_eq!(reference_exp.name, resumed_exp.name);
        assert!(!resumed_exp.degraded);
        assert_eq!(
            reference_exp.counters, resumed_exp.counters,
            "experiment {} drifted across kill-and-resume",
            reference_exp.name
        );
    }

    // The on-disk per-experiment records are bit-identical modulo
    // wall-clock: same seed, same parameter set, same counters, same
    // rendered tables.
    for exp in &reference_manifest.experiments {
        let reference_json = read_experiment(&reference, &exp.name);
        let resumed_json = read_experiment(&interrupted, &exp.name);
        assert_eq!(reference_json.name, resumed_json.name);
        assert_eq!(reference_json.seed, resumed_json.seed);
        assert_eq!(reference_json.quick, resumed_json.quick);
        assert!(!resumed_json.degraded);
        assert_eq!(reference_json.counters, resumed_json.counters);
        assert_eq!(
            reference_json.tables, resumed_json.tables,
            "tables of {} drifted across kill-and-resume",
            exp.name
        );
    }

    // The resumed directory is a complete run again: manifest.json
    // round-trips and mlam-trace compare sees zero counter drift
    // against the reference (generous wall threshold — timing is the
    // one thing resume does not reproduce).
    let text = std::fs::read_to_string(interrupted.join("manifest.json")).unwrap();
    let parsed: RunManifest = serde_json::from_str(&text).unwrap();
    assert_eq!(parsed, resumed_manifest);
    let options = mlam_trace::compare::CompareOptions {
        threshold: 10.0,
        min_wall_s: 10.0,
        ..Default::default()
    };
    let report = mlam_trace::compare::compare(&reference_manifest, &resumed_manifest, &options);
    assert!(
        !report.has_counter_drift(),
        "kill-and-resume must not drift:\n{}",
        report.render()
    );

    let _ = std::fs::remove_dir_all(&base);
}
