//! End-to-end test of the `repro_all --quick --json <dir>` contract:
//! the manifest, per-experiment JSON files and metrics JSONL must all
//! exist, deserialize through serde, and agree with the in-process
//! manifest — and two runs from the same seed must report identical
//! per-experiment query counters.

use mlam::telemetry::{Event, MetricLine, RunManifest};
use mlam_bench::{run_all, CliOptions, ExperimentJson, Session};
use std::path::Path;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "corollary2",
    "locking",
    "sequential",
    "exact_vs_approx",
    "ac0",
    "spectral",
    "interpose",
    "rocknroll",
    "lockdown",
    "ablations",
];

fn run_once(dir: &Path) -> RunManifest {
    let options = CliOptions {
        quick: true,
        json_dir: Some(dir.to_path_buf()),
        force: false,
        resume: None,
        ..CliOptions::default()
    };
    let mut session = Session::start("repro_all", &options);
    let failures = run_all(&mut session);
    assert!(failures.is_empty(), "experiment failures: {failures:?}");
    session.finish()
}

#[test]
fn quick_json_run_is_complete_and_deterministic() {
    let base = std::env::temp_dir().join(format!("mlam_repro_json_{}", std::process::id()));
    let dir_a = base.join("a");
    let dir_b = base.join("b");
    // Sequential same-seed runs: the global counters accumulate, but
    // the per-experiment snapshot deltas must match exactly.
    let manifest_a = run_once(&dir_a);
    let manifest_b = run_once(&dir_b);

    assert_eq!(manifest_a.seed, mlam_bench::REPRO_SEED);
    assert!(manifest_a.quick);
    assert!(manifest_a.total_seconds > 0.0);
    assert!(!manifest_a.crate_versions.is_empty());

    // The manifest lists every experiment, in order, with wall-clock
    // and at least one counted query column somewhere.
    let names: Vec<&str> = manifest_a
        .experiments
        .iter()
        .map(|e| e.name.as_str())
        .collect();
    assert_eq!(names, EXPERIMENTS);
    assert!(manifest_a.experiments.iter().all(|e| e.seconds >= 0.0));
    let totals = manifest_a.counter_totals();
    assert!(
        totals.keys().any(|k| k.starts_with("oracle.")),
        "no oracle counters in {totals:?}"
    );
    assert!(
        totals.keys().any(|k| k.starts_with("sat.")),
        "no sat counters in {totals:?}"
    );

    // manifest.json round-trips through serde to exactly the manifest
    // the session returned.
    let text = std::fs::read_to_string(dir_a.join("manifest.json")).unwrap();
    let parsed: RunManifest = serde_json::from_str(&text).unwrap();
    assert_eq!(parsed, manifest_a);

    // One structured result file per experiment, consistent with the
    // manifest record.
    for (i, name) in EXPERIMENTS.iter().enumerate() {
        let path = dir_a.join(format!("{name}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
        let exp: ExperimentJson = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("bad JSON in {}: {e}", path.display()));
        assert_eq!(exp.name, *name);
        assert_eq!(exp.seed, manifest_a.seed);
        assert!(exp.quick);
        assert_eq!(exp.counters, manifest_a.experiments[i].counters);
        assert!(!exp.tables.is_empty(), "{name} rendered no tables");
        for table in &exp.tables {
            assert!(!table.header.is_empty());
        }
    }

    // metrics.jsonl: every line is a MetricLine.
    let metrics = std::fs::read_to_string(dir_a.join("metrics.jsonl")).unwrap();
    let mut lines = 0usize;
    for line in metrics.lines() {
        let _: MetricLine =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad metrics line {line}: {e}"));
        lines += 1;
    }
    assert!(lines > 0, "metrics.jsonl is empty");

    // events.jsonl: every line is an Event, and the named driver spans
    // all appear.
    let events = std::fs::read_to_string(dir_a.join("events.jsonl")).unwrap();
    let parsed_events: Vec<Event> = events
        .lines()
        .map(|line| {
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad event line {line}: {e}"))
        })
        .collect();
    for name in EXPERIMENTS {
        let span = format!("experiment.{name}");
        // The ablations driver's span is experiment.ablations, etc.
        assert!(
            parsed_events.iter().any(|e| e.name == span),
            "no span events for {span}"
        );
    }

    // The span tree reconstructs from ids: every experiment.<name>
    // span hangs off the bench.run_all root span of its own run.
    let run_all_ids: Vec<u64> = parsed_events
        .iter()
        .filter(|e| e.name == "bench.run_all")
        .map(|e| e.id)
        .collect();
    assert!(!run_all_ids.is_empty(), "bench.run_all span missing");
    for event in parsed_events
        .iter()
        .filter(|e| e.name.starts_with("experiment."))
    {
        assert_ne!(event.id, 0);
        let parent = event.parent_id.expect("experiment spans have a parent");
        assert!(
            run_all_ids.contains(&parent),
            "{} should nest under bench.run_all, parent_id={parent}",
            event.name
        );
    }

    // Chrome-trace export of the real run stays structurally valid:
    // every B has a matching E per track.
    let trace = mlam_trace::chrome::export(&parsed_events);
    let mut open: std::collections::HashMap<u64, Vec<&str>> = std::collections::HashMap::new();
    for chrome_event in &trace.traceEvents {
        let stack = open.entry(chrome_event.tid).or_default();
        match chrome_event.ph.as_str() {
            "B" => stack.push(&chrome_event.name),
            "E" => assert_eq!(stack.pop(), Some(chrome_event.name.as_str())),
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(open.values().all(|s| s.is_empty()), "unclosed B events");

    // Determinism: same seed, same parameter set -> identical counter
    // deltas for every experiment (wall-clock of course differs).
    assert_eq!(manifest_a.experiments.len(), manifest_b.experiments.len());
    for (a, b) in manifest_a.experiments.iter().zip(&manifest_b.experiments) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            a.counters, b.counters,
            "experiment {} is not seed-deterministic",
            a.name
        );
    }

    // mlam-trace compare agrees: two same-seed --quick runs have zero
    // counter drift. (Wall-clock uses a generous threshold here so
    // scheduler jitter between the back-to-back runs cannot flake the
    // test; the strict-threshold exit codes are covered by the
    // mlam-trace compare_cli test on synthetic manifests.)
    let options = mlam_trace::compare::CompareOptions {
        threshold: 2.0,
        min_wall_s: 1.0,
        ..Default::default()
    };
    let report = mlam_trace::compare::compare(&manifest_a, &manifest_b, &options);
    assert!(
        !report.has_counter_drift(),
        "same-seed runs must not drift:\n{}",
        report.render()
    );
    assert!(!report.has_wall_regression(), "{}", report.render());

    // A synthetically slowed run trips the wall-clock gate.
    let mut slowed = manifest_b.clone();
    for exp in &mut slowed.experiments {
        exp.seconds = exp.seconds * 10.0 + 10.0;
    }
    slowed.total_seconds = slowed.total_seconds * 10.0 + 10.0;
    let report = mlam_trace::compare::compare(&manifest_a, &slowed, &options);
    assert!(report.has_wall_regression(), "{}", report.render());
    assert!(!report.has_counter_drift());

    let _ = std::fs::remove_dir_all(&base);
}
