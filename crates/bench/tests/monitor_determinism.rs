//! The determinism firewall, end to end: `repro_all --quick` with
//! `--monitor` + `--progress` must produce **byte-identical stdout**
//! and **bit-identical deterministic `metrics.jsonl` content** versus
//! a run without monitoring, at one and four threads. Only the
//! `span.*.micros` wall-clock histograms are excluded — no two
//! processes reproduce those sums even with monitoring off — and for
//! them the set of recorded span names must still match exactly. This
//! is the property that makes live observability safe to leave on: it
//! cannot perturb the reproduction contract CI diffs against
//! `baselines/quick/`.

use std::path::Path;
use std::process::Command;

/// Runs `repro_all --quick --json <dir>` and returns captured stdout.
fn run_repro(dir: &Path, threads: &str, monitored: bool) -> Vec<u8> {
    let mut command = Command::new(env!("CARGO_BIN_EXE_repro_all"));
    command
        .args(["--quick", "--json"])
        .arg(dir)
        .env("MLAM_THREADS", threads);
    if monitored {
        // Ephemeral port: parallel CI jobs must not collide, and the
        // endpoint's presence (not its address) is what's under test.
        command.args(["--monitor", "127.0.0.1:0", "--progress"]);
    }
    let output = command.output().expect("spawn repro_all");
    assert!(
        output.status.success(),
        "repro_all failed (threads={threads} monitored={monitored}):\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    if monitored {
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("monitor listening on"),
            "--monitor must announce its endpoint on stderr"
        );
        assert!(
            stderr.contains("progress 13/13"),
            "--progress must report the final completion on stderr:\n{stderr}"
        );
    }
    output.stdout
}

/// Splits `metrics.jsonl` into (deterministic lines, timing-histogram
/// names). The `span.*.micros` histograms carry wall-clock sums that
/// differ between any two processes; every other line — all counters
/// and the value-shaped histograms — is part of the determinism
/// contract and must match byte for byte.
fn split_metrics(bytes: &[u8]) -> (Vec<String>, Vec<String>) {
    let text = String::from_utf8(bytes.to_vec()).expect("metrics.jsonl is UTF-8");
    let mut exact = Vec::new();
    let mut timing = Vec::new();
    for line in text.lines() {
        let name = line
            .split("\"name\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("metrics.jsonl line names a metric");
        if name.ends_with(".micros") {
            timing.push(name.to_string());
        } else {
            exact.push(line.to_string());
        }
    }
    (exact, timing)
}

#[test]
fn monitored_run_is_byte_identical_to_plain_run() {
    let base = std::env::temp_dir().join(format!("mlam_monitor_det_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    // curves.jsonl is part of the same contract, across *all four*
    // runs at once: thread count and monitoring must both be invisible
    // to the recorded learning curves.
    let mut reference_curves: Option<Vec<u8>> = None;
    for threads in ["1", "4"] {
        let plain_dir = base.join(format!("plain_t{threads}"));
        let monitored_dir = base.join(format!("monitored_t{threads}"));
        let plain_stdout = run_repro(&plain_dir, threads, false);
        let monitored_stdout = run_repro(&monitored_dir, threads, true);
        assert_eq!(
            plain_stdout, monitored_stdout,
            "stdout must be byte-identical monitor-on vs off at MLAM_THREADS={threads}"
        );
        let plain_metrics =
            std::fs::read(plain_dir.join("metrics.jsonl")).expect("plain metrics.jsonl");
        let monitored_metrics =
            std::fs::read(monitored_dir.join("metrics.jsonl")).expect("monitored metrics.jsonl");
        let (plain_exact, plain_timing) = split_metrics(&plain_metrics);
        let (monitored_exact, monitored_timing) = split_metrics(&monitored_metrics);
        assert_eq!(
            plain_exact, monitored_exact,
            "deterministic metrics.jsonl lines must be bit-identical monitor-on \
             vs off at MLAM_THREADS={threads}"
        );
        assert_eq!(
            plain_timing, monitored_timing,
            "the set of span timing histograms must not change with monitoring \
             at MLAM_THREADS={threads}"
        );
        for dir in [&plain_dir, &monitored_dir] {
            let curves = std::fs::read(dir.join("curves.jsonl"))
                .unwrap_or_else(|e| panic!("curves.jsonl in {}: {e}", dir.display()));
            assert!(!curves.is_empty(), "curves.jsonl must not be empty");
            match &reference_curves {
                Some(reference) => assert_eq!(
                    &curves,
                    reference,
                    "curves.jsonl must be byte-identical across thread counts and \
                     monitor on/off (differs in {} at MLAM_THREADS={threads})",
                    dir.display()
                ),
                None => reference_curves = Some(curves),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
