//! Criterion bench behind Table II: one Chow-reconstruction +
//! Perceptron cell on a calibrated BR PUF.

use criterion::{criterion_group, criterion_main, Criterion};
use mlam::learn::chow::{table_ii_procedure, ChowConfig};
use mlam::learn::dataset::LabeledSet;
use mlam::puf::{BistableRingPuf, BrPufConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_table2_cell(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    for n in [16usize, 32] {
        let puf = BistableRingPuf::sample(n, BrPufConfig::calibrated_accuracy(n), &mut rng);
        let train = LabeledSet::sample(&puf, 2500, &mut rng);
        let test = LabeledSet::sample(&puf, 2000, &mut rng);
        c.bench_function(&format!("table2/cell_n{n}_2500crps"), |b| {
            b.iter(|| {
                let cell = table_ii_procedure(&train, &test, ChowConfig::default(), 30);
                black_box(cell.test_accuracy)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2_cell
}
criterion_main!(benches);
