//! Criterion bench behind Table I: time to compute the full bound grid
//! and to run the empirical Perceptron cross-check at one point.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mlam::bounds::TableOne;
use mlam::learn::dataset::LabeledSet;
use mlam::learn::features::ArbiterPhiFeatures;
use mlam::learn::perceptron::Perceptron;
use mlam::puf::XorArbiterPuf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_bound_grid(c: &mut Criterion) {
    c.bench_function("table1/bound_grid_4x7", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in [16usize, 32, 64, 128] {
                for k in 1..=7usize {
                    let t = TableOne::compute(n, k, 0.05, 0.01);
                    acc += t.general_bound;
                }
            }
            black_box(acc)
        })
    });
}

fn bench_empirical_point(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let puf = XorArbiterPuf::sample(32, 1, 0.0, &mut rng);
    let train = LabeledSet::sample(&puf, 2000, &mut rng);
    c.bench_function("table1/perceptron_phi_n32_k1_2000crps", |b| {
        b.iter_batched(
            || train.clone(),
            |tr| {
                black_box(
                    Perceptron::new(40)
                        .train_with(ArbiterPhiFeatures::new(32), &tr)
                        .mistakes,
                )
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bound_grid, bench_empirical_point
}
criterion_main!(benches);
