//! Criterion bench: BDD-based formal key validation vs. exhaustive
//! simulation on locked circuits.

use criterion::{criterion_group, criterion_main, Criterion};
use mlam::locking::combinational::lock_xor;
use mlam::netlist::bdd::equivalent_bdd;
use mlam::netlist::generate::ripple_adder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_formal_vs_exhaustive(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let oracle = ripple_adder(6); // 12 inputs
    let locked = lock_xor(&oracle, 8, &mut rng);
    let key = locked.correct_key().clone();

    c.bench_function("equivalence/exhaustive_12in", |b| {
        b.iter(|| black_box(locked.equivalent_under_key(&oracle, &key)))
    });
    c.bench_function("equivalence/bdd_12in", |b| {
        b.iter(|| black_box(locked.equivalent_under_key_formal(&oracle, &key)))
    });
    // BDD-only regime: 24 inputs.
    let wide = ripple_adder(12);
    let wide_locked = lock_xor(&wide, 8, &mut rng);
    let wide_key = wide_locked.correct_key().clone();
    c.bench_function("equivalence/bdd_24in", |b| {
        b.iter(|| black_box(wide_locked.equivalent_under_key_formal(&wide, &wide_key)))
    });
    c.bench_function("equivalence/bdd_build_adder12", |b| {
        b.iter(|| {
            let mut mgr = mlam::netlist::bdd::BddManager::new(24);
            let o = mgr.build_netlist(&wide);
            black_box(o.len())
        })
    });
    let _ = equivalent_bdd(&wide, &wide);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_formal_vs_exhaustive
}
criterion_main!(benches);
