//! Criterion bench behind the sequential sweep: L* cost vs. FSM size.

use criterion::{criterion_group, criterion_main, Criterion};
use mlam::locking::sequential::{lstar_attack, Fsm, ObfuscatedFsm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_lstar(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    for states in [4usize, 8, 16] {
        let fsm = Fsm::random(states, 2, &mut rng);
        let seq: Vec<usize> = (0..4).map(|_| rng.gen_range(0..2)).collect();
        let obf = ObfuscatedFsm::new(fsm, seq);
        c.bench_function(&format!("lstar/states{states}"), |b| {
            b.iter(|| black_box(lstar_attack(&obf).membership_queries))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lstar
}
criterion_main!(benches);
