//! Criterion bench behind ablation 4: per-learner training cost on the
//! same arbiter-PUF CRP set.

use criterion::{criterion_group, criterion_main, Criterion};
use mlam::learn::dataset::LabeledSet;
use mlam::learn::features::ArbiterPhiFeatures;
use mlam::learn::lmn::{lmn_learn, LmnConfig};
use mlam::learn::logistic::{LogisticConfig, LogisticRegression};
use mlam::learn::perceptron::Perceptron;
use mlam::puf::ArbiterPuf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_learners(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let puf = ArbiterPuf::sample(32, 0.0, &mut rng);
    let train = LabeledSet::sample(&puf, 3000, &mut rng);

    c.bench_function("learners/perceptron_phi", |b| {
        b.iter(|| {
            black_box(
                Perceptron::new(30)
                    .train_with(ArbiterPhiFeatures::new(32), &train)
                    .training_accuracy,
            )
        })
    });
    c.bench_function("learners/logistic_phi", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = LogisticConfig {
            epochs: 20,
            ..Default::default()
        };
        b.iter(|| {
            black_box(
                LogisticRegression::new(cfg)
                    .train_phi(&train, &mut rng)
                    .training_accuracy,
            )
        })
    });
    c.bench_function("learners/lmn_d1", |b| {
        b.iter(|| black_box(lmn_learn(&train, LmnConfig::new(1)).training_accuracy))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_learners
}
criterion_main!(benches);
