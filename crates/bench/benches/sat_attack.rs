//! Criterion bench behind the locking comparison: SAT-attack runtime
//! as the key widens.

use criterion::{criterion_group, criterion_main, Criterion};
use mlam::locking::combinational::lock_xor;
use mlam::locking::sat_attack::{sat_attack, SatAttackConfig};
use mlam::netlist::generate::random_circuit;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sat_attack(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let oracle = random_circuit(10, 60, 2, &mut rng);
    for key_bits in [4usize, 8, 16] {
        let locked = lock_xor(&oracle, key_bits, &mut rng);
        c.bench_function(&format!("sat_attack/keybits{key_bits}"), |b| {
            b.iter(|| {
                let r = sat_attack(&locked, &oracle, SatAttackConfig::default());
                black_box(r.iterations)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sat_attack
}
criterion_main!(benches);
