//! Criterion bench behind the Corollary 1 discussion: LMN cost as the
//! degree (i.e. the k²/ε² requirement) grows.

use criterion::{criterion_group, criterion_main, Criterion};
use mlam::learn::dataset::LabeledSet;
use mlam::learn::lmn::{lmn_learn, LmnConfig};
use mlam::puf::XorArbiterPuf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_lmn_degrees(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let puf = XorArbiterPuf::sample(20, 2, 0.0, &mut rng);
    let train = LabeledSet::sample(&puf, 4000, &mut rng);
    for degree in [1usize, 2, 3] {
        c.bench_function(&format!("lmn/n20_k2_degree{degree}"), |b| {
            b.iter(|| black_box(lmn_learn(&train, LmnConfig::new(degree)).training_accuracy))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lmn_degrees
}
criterion_main!(benches);
