//! Criterion bench behind Table III: the halfspace tester at each of
//! the paper's sample sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use mlam::boolean::testing::HalfspaceTester;
use mlam::puf::crp::collect_uniform;
use mlam::puf::{BistableRingPuf, BrPufConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_tester(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    for (n, crps) in [(16usize, 100usize), (32, 1339), (64, 8000)] {
        let puf = BistableRingPuf::sample(n, BrPufConfig::calibrated(n), &mut rng);
        let data = collect_uniform(&puf, crps, &mut rng).to_labeled();
        let tester = HalfspaceTester::new(0.1, 0.95);
        c.bench_function(&format!("table3/tester_n{n}_{crps}crps"), |b| {
            b.iter(|| black_box(tester.run(n, &data, &mut rng).distance_estimate))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tester
}
criterion_main!(benches);
