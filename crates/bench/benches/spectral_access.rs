//! Criterion bench: LMN (random examples) vs KM (membership queries)
//! cost on the same BR PUF.

use criterion::{criterion_group, criterion_main, Criterion};
use mlam::learn::dataset::LabeledSet;
use mlam::learn::km::{km_learn, KmConfig};
use mlam::learn::lmn::{lmn_learn, LmnConfig};
use mlam::learn::oracle::FunctionOracle;
use mlam::puf::{BistableRingPuf, BrPufConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_spectral(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let cfg = BrPufConfig {
        pair_strength: 2.0,
        triple_strength: 0.0,
        noise_sigma: 0.0,
    };
    let puf = BistableRingPuf::sample(12, cfg, &mut rng);
    let train = LabeledSet::sample(&puf, 6000, &mut rng);

    c.bench_function("spectral/lmn_d2_n12", |b| {
        b.iter(|| black_box(lmn_learn(&train, LmnConfig::new(2)).training_accuracy))
    });
    c.bench_function("spectral/km_theta015_n12", |b| {
        b.iter(|| {
            let oracle = FunctionOracle::uniform(&puf);
            black_box(
                km_learn(&oracle, KmConfig::new(0.15), &mut rng)
                    .hypothesis
                    .len(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spectral
}
criterion_main!(benches);
