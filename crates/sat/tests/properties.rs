//! Property-based tests of the CDCL solver against brute force.

use mlam_sat::{Lit, SatResult, Solver};
use proptest::prelude::*;

/// Strategy: a random CNF over `n` variables with `m` clauses of 1–4
/// literals each.
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<i32>>)> {
    (2usize..=9).prop_flat_map(|n| {
        let clause = prop::collection::vec(
            (1..=n as i32, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v }),
            1..=4,
        );
        let clauses = prop::collection::vec(clause, 1..=n * 4);
        (Just(n), clauses)
    })
}

fn brute_force_sat(num_vars: usize, clauses: &[Vec<i32>]) -> bool {
    'outer: for mask in 0u64..(1 << num_vars) {
        for clause in clauses {
            let sat = clause.iter().any(|&l| {
                let v = (l.unsigned_abs() - 1) as usize;
                let val = mask >> v & 1 == 1;
                if l > 0 {
                    val
                } else {
                    !val
                }
            });
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn solve(num_vars: usize, clauses: &[Vec<i32>]) -> SatResult {
    let mut s = Solver::new();
    let vars = s.new_vars(num_vars);
    for clause in clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
            .collect();
        s.add_clause(&lits);
    }
    s.solve()
}

proptest! {
    /// CDCL agrees with brute force on satisfiability, and every model
    /// it returns actually satisfies the formula.
    #[test]
    fn cdcl_matches_brute_force((n, clauses) in cnf_strategy()) {
        let expected = brute_force_sat(n, &clauses);
        match solve(n, &clauses) {
            SatResult::Sat(model) => {
                prop_assert!(expected, "solver said SAT, brute force says UNSAT");
                for clause in &clauses {
                    let ok = clause.iter().any(|&l| {
                        let val = model.values()[(l.unsigned_abs() - 1) as usize];
                        if l > 0 { val } else { !val }
                    });
                    prop_assert!(ok, "model violates {clause:?}");
                }
            }
            SatResult::Unsat => prop_assert!(!expected, "solver said UNSAT, brute force says SAT"),
        }
    }

    /// Solving under assumptions never corrupts the instance: the
    /// unassumed instance's satisfiability is unchanged afterwards.
    #[test]
    fn assumptions_are_transient((n, clauses) in cnf_strategy(), a in 1usize..=4, neg in any::<bool>()) {
        let expected = brute_force_sat(n, &clauses);
        let mut s = Solver::new();
        let vars = s.new_vars(n);
        for clause in &clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect();
            s.add_clause(&lits);
        }
        let assumption = Lit::new(vars[(a - 1).min(n - 1)], neg);
        let _ = s.solve_with_assumptions(&[assumption]);
        prop_assert_eq!(s.solve().is_sat(), expected);
    }

    /// An assumption-satisfying model respects the assumption.
    #[test]
    fn assumption_holds_in_model((n, clauses) in cnf_strategy(), idx in 0usize..9, neg in any::<bool>()) {
        let mut s = Solver::new();
        let vars = s.new_vars(n);
        for clause in &clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect();
            s.add_clause(&lits);
        }
        let v = vars[idx % n];
        let assumption = Lit::new(v, neg);
        if let SatResult::Sat(model) = s.solve_with_assumptions(&[assumption]) {
            prop_assert_eq!(model.value(v), !neg);
        }
    }
}
