//! Property-based tests of the CDCL solver against brute force.

use mlam_sat::{Lit, SatResult, Solver};
use proptest::prelude::*;

/// Strategy: a random CNF over `n` variables with `m` clauses of 1–4
/// literals each.
fn cnf_strategy() -> impl Strategy<Value = (usize, Vec<Vec<i32>>)> {
    (2usize..=9).prop_flat_map(|n| {
        let clause = prop::collection::vec(
            (1..=n as i32, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v }),
            1..=4,
        );
        let clauses = prop::collection::vec(clause, 1..=n * 4);
        (Just(n), clauses)
    })
}

fn brute_force_sat(num_vars: usize, clauses: &[Vec<i32>]) -> bool {
    'outer: for mask in 0u64..(1 << num_vars) {
        for clause in clauses {
            let sat = clause.iter().any(|&l| {
                let v = (l.unsigned_abs() - 1) as usize;
                let val = mask >> v & 1 == 1;
                if l > 0 {
                    val
                } else {
                    !val
                }
            });
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn solve(num_vars: usize, clauses: &[Vec<i32>]) -> SatResult {
    let mut s = Solver::new();
    let vars = s.new_vars(num_vars);
    for clause in clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
            .collect();
        s.add_clause(&lits);
    }
    s.solve()
}

proptest! {
    /// CDCL agrees with brute force on satisfiability, and every model
    /// it returns actually satisfies the formula.
    #[test]
    fn cdcl_matches_brute_force((n, clauses) in cnf_strategy()) {
        let expected = brute_force_sat(n, &clauses);
        match solve(n, &clauses) {
            SatResult::Sat(model) => {
                prop_assert!(expected, "solver said SAT, brute force says UNSAT");
                for clause in &clauses {
                    let ok = clause.iter().any(|&l| {
                        let val = model.values()[(l.unsigned_abs() - 1) as usize];
                        if l > 0 { val } else { !val }
                    });
                    prop_assert!(ok, "model violates {clause:?}");
                }
            }
            SatResult::Unsat => prop_assert!(!expected, "solver said UNSAT, brute force says SAT"),
        }
    }

    /// Solving under assumptions never corrupts the instance: the
    /// unassumed instance's satisfiability is unchanged afterwards.
    #[test]
    fn assumptions_are_transient((n, clauses) in cnf_strategy(), a in 1usize..=4, neg in any::<bool>()) {
        let expected = brute_force_sat(n, &clauses);
        let mut s = Solver::new();
        let vars = s.new_vars(n);
        for clause in &clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect();
            s.add_clause(&lits);
        }
        let assumption = Lit::new(vars[(a - 1).min(n - 1)], neg);
        let _ = s.solve_with_assumptions(&[assumption]);
        prop_assert_eq!(s.solve().is_sat(), expected);
    }

    /// An assumption-satisfying model respects the assumption.
    #[test]
    fn assumption_holds_in_model((n, clauses) in cnf_strategy(), idx in 0usize..9, neg in any::<bool>()) {
        let mut s = Solver::new();
        let vars = s.new_vars(n);
        for clause in &clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect();
            s.add_clause(&lits);
        }
        let v = vars[idx % n];
        let assumption = Lit::new(v, neg);
        if let SatResult::Sat(model) = s.solve_with_assumptions(&[assumption]) {
            prop_assert_eq!(model.value(v), !neg);
        }
    }
}

/// Reference check: brute-force satisfiability of `clauses` plus a set
/// of forced assumption literals.
fn brute_force_sat_assuming(num_vars: usize, clauses: &[Vec<i32>], assumptions: &[i32]) -> bool {
    let mut all: Vec<Vec<i32>> = clauses.to_vec();
    all.extend(assumptions.iter().map(|&a| vec![a]));
    brute_force_sat(num_vars, &all)
}

proptest! {
    /// Incremental solving agrees with one-shot solving: adding the
    /// clause set in two batches with a solve call in between (leaving
    /// learnt clauses, activities and phases behind) reaches the same
    /// verdict as a fresh solver given everything at once, and any
    /// model is valid.
    #[test]
    fn incremental_agrees_with_one_shot((n, clauses) in cnf_strategy(), split in 0usize..=100) {
        let expected = brute_force_sat(n, &clauses);
        let mut s = Solver::new();
        let vars = s.new_vars(n);
        let cut = clauses.len() * split / 100;
        let to_lits = |clause: &Vec<i32>| -> Vec<Lit> {
            clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect()
        };
        for clause in &clauses[..cut] {
            s.add_clause(&to_lits(clause));
        }
        // Warm the solver on the prefix; its verdict is not the final
        // one but the learnt state must not corrupt what follows.
        let _ = s.solve();
        for clause in &clauses[cut..] {
            s.add_clause(&to_lits(clause));
        }
        match s.solve() {
            SatResult::Sat(model) => {
                prop_assert!(expected, "incremental said SAT, brute force UNSAT");
                for clause in &clauses {
                    let ok = clause.iter().any(|&l| {
                        let val = model.value(vars[(l.unsigned_abs() - 1) as usize]);
                        if l > 0 { val } else { !val }
                    });
                    prop_assert!(ok, "model violates {clause:?}");
                }
            }
            SatResult::Unsat => prop_assert!(!expected, "incremental said UNSAT, brute force SAT"),
        }
    }

    /// `solve_assuming` over random assumption subsets agrees with
    /// brute force on the clause set extended by the assumption units,
    /// on a solver warmed by unrelated earlier calls — what the DIP
    /// loop does with key constraints.
    #[test]
    fn assumption_subsets_agree_with_brute_force(
        (n, clauses) in cnf_strategy(),
        raw in prop::collection::vec((0usize..9, any::<bool>()), 0..=3),
    ) {
        let mut s = Solver::new();
        let vars = s.new_vars(n);
        for clause in &clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect();
            s.add_clause(&lits);
        }
        // Warm-up solves so later assumption calls run on a solver
        // carrying learnt clauses and saved phases.
        let _ = s.solve();
        let _ = s.solve_assuming(&[Lit::pos(vars[0])]);
        // Deduplicate by variable so the assumption set is consistent
        // with itself (contradictory pairs are separately covered by
        // unit tests).
        let mut assumptions: Vec<Lit> = Vec::new();
        let mut ints: Vec<i32> = Vec::new();
        for (idx, neg) in raw {
            let v = idx % n;
            if ints.iter().any(|&a| a.unsigned_abs() as usize == v + 1) {
                continue;
            }
            assumptions.push(Lit::new(vars[v], neg));
            ints.push(if neg { -((v + 1) as i32) } else { (v + 1) as i32 });
        }
        let expected = brute_force_sat_assuming(n, &clauses, &ints);
        match s.solve_assuming(&assumptions) {
            SatResult::Sat(model) => {
                prop_assert!(expected, "solver said SAT under {ints:?}, brute force UNSAT");
                for &a in &assumptions {
                    prop_assert!(model.lit_value(a), "assumption {a} violated by model");
                }
            }
            SatResult::Unsat => prop_assert!(!expected, "solver said UNSAT under {ints:?}, brute force SAT"),
        }
        // And the unassumed instance is untouched.
        prop_assert_eq!(s.solve().is_sat(), brute_force_sat(n, &clauses));
    }
}

#[test]
fn scratch_duplicate_assumptions_level_overflow() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    let c = s.new_var();
    s.add_clause(&[Lit::pos(b), Lit::pos(c)]);
    s.add_clause(&[Lit::pos(b), Lit::neg(c)]);
    s.add_clause(&[Lit::neg(b), Lit::pos(c)]);
    s.add_clause(&[Lit::neg(b), Lit::neg(c)]);
    let r = s.solve_assuming(&[Lit::pos(a), Lit::pos(a), Lit::pos(a), Lit::pos(a)]);
    println!("result sat: {:?}", r.is_sat());
}
