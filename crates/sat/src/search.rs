//! The CDCL search loop: decisions, conflict handling, Luby restarts,
//! assumption placement, and the incremental
//! [`Solver::solve_assuming`] entry point.

use crate::clause::NO_REASON;
use crate::solver::Solver;
use crate::types::{Lit, Model, SatResult};

impl Solver {
    /// Solves the instance without assumptions.
    ///
    /// Equivalent to [`solve_assuming`](Solver::solve_assuming) with an
    /// empty slice; everything learnt is retained for later calls.
    pub fn solve(&mut self) -> SatResult {
        self.solve_assuming(&[])
    }

    /// Solves under the given assumption literals, incrementally.
    ///
    /// The assumptions hold for this call only — [`SatResult::Unsat`]
    /// then means "unsatisfiable *under these assumptions*", and the
    /// solver remains usable. What survives across calls:
    ///
    /// - all clauses ever added (and all learnt clauses, up to
    ///   LBD-based reduction — anything dropped was logically implied,
    ///   so verdicts can never change);
    /// - variable activities and saved phases, which is what makes the
    ///   DIP loop's consecutive, similar queries fast;
    /// - the statistics counters.
    ///
    /// Assumptions are placed as the first decisions, in slice order,
    /// so the call is deterministic: same solver history + same
    /// assumptions ⇒ same result, bit for bit.
    ///
    /// # Example
    ///
    /// ```
    /// use mlam_sat::{Lit, SatResult, Solver};
    ///
    /// let mut s = Solver::new();
    /// let (a, b) = (s.new_var(), s.new_var());
    /// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    /// // Under ¬a the clause forces b…
    /// match s.solve_assuming(&[Lit::neg(a)]) {
    ///     SatResult::Sat(m) => assert!(m.value(b)),
    ///     SatResult::Unsat => unreachable!(),
    /// }
    /// // …and the assumption does not outlive the call.
    /// assert!(s.solve_assuming(&[Lit::pos(a)]).is_sat());
    /// ```
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SatResult {
        let before = self.stats;
        if !assumptions.is_empty() {
            self.stats.assumption_solves += 1;
        }
        let result = self.search(assumptions);
        // Publish the per-call deltas so attack-level telemetry sees
        // solver work even when solver instances are short-lived.
        let delta = self.stats.since(&before);
        mlam_telemetry::counter!("sat.solve_calls", 1);
        mlam_telemetry::counter!("sat.conflicts", delta.conflicts);
        mlam_telemetry::counter!("sat.decisions", delta.decisions);
        mlam_telemetry::counter!("sat.propagations", delta.propagations);
        mlam_telemetry::counter!("sat.restarts", delta.restarts);
        mlam_telemetry::counter!("sat.learnts", delta.learnts);
        mlam_telemetry::counter!("sat.lbd_reductions", delta.lbd_reductions);
        mlam_telemetry::counter!("sat.assumption_solves", delta.assumption_solves);
        mlam_telemetry::histogram!("sat.conflicts_per_call", delta.conflicts);
        result
    }

    /// Alias of [`solve_assuming`](Solver::solve_assuming), kept for
    /// the pre-incremental API spelling.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_assuming(assumptions)
    }

    fn search(&mut self, assumptions: &[Lit]) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_unit = 0usize;
        let mut restart_limit = luby(restart_unit) * 64;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                // Conflicts below or at the assumption levels mean the
                // assumptions are inconsistent: analyze normally, but if
                // the backjump target is within the assumption prefix we
                // must re-establish assumptions; simplest correct rule:
                // if all conflict levels are within assumptions, UNSAT.
                let learnt = self.analyze(confl);
                self.stats.learnts += 1;
                let assumption_levels = self.assumption_levels(assumptions);
                if self.decision_level() <= assumption_levels {
                    self.cancel_until(0);
                    return SatResult::Unsat;
                }
                if learnt.lits.len() == 1 {
                    // A unit learnt is implied by the clause database
                    // alone (assumption decisions enter the clause as
                    // ordinary literals), so it belongs at level 0 —
                    // enqueueing it reasonless inside the assumption
                    // prefix would break the "non-decision has a
                    // reason" invariant of later conflict analyses.
                    // The decision loop re-places the assumptions.
                    self.cancel_until(0);
                    if !self.enqueue(learnt.lits[0], NO_REASON) {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let target = learnt.backjump.max(assumption_levels);
                    self.cancel_until(target);
                    let asserting = learnt.lits[0];
                    let cref = self.attach_clause(learnt.lits, true, learnt.lbd);
                    let ok = self.enqueue(asserting, cref);
                    debug_assert!(ok, "asserting literal must enqueue");
                }
                self.vsids.decay();
                self.db.decay();

                if self.stats.conflicts - self.db.conflicts_at_reduce >= self.db.reduce_limit {
                    self.db.conflicts_at_reduce = self.stats.conflicts;
                    self.db.reduce_limit += 500;
                    self.reduce_db();
                }
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_unit += 1;
                    restart_limit = luby(restart_unit) * 64;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
            } else {
                // Place assumptions first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        Some(true) => {
                            // Already satisfied: open a level anyway to
                            // keep the level/assumption indexing aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.stats.decisions += 1;
                            let ok = self.enqueue(a, NO_REASON);
                            debug_assert!(ok);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        // All variables assigned: SAT.
                        let model = Model {
                            values: self.assign.iter().map(|&v| v == 1).collect(),
                        };
                        self.cancel_until(0);
                        return SatResult::Sat(model);
                    }
                    Some(lit) => {
                        self.trail_lim.push(self.trail.len());
                        self.stats.decisions += 1;
                        let ok = self.enqueue(lit, NO_REASON);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }

    /// Pops the most active unassigned variable off the VSIDS heap and
    /// pairs it with its saved phase. `None` means every variable is
    /// assigned — the search found a model.
    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.vsids.pop_max() {
            if self.assign[v.index()] == crate::solver::UNASSIGNED {
                return Some(Lit::new(v, !self.vsids.saved_phase(v)));
            }
            // Lazy deletion: assigned entries are discarded here and
            // re-inserted by `cancel_until` when unassigned.
        }
        None
    }

    /// Number of decision levels occupied by assumptions.
    fn assumption_levels(&self, assumptions: &[Lit]) -> u32 {
        (assumptions.len() as u32).min(self.decision_level())
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,…
pub(crate) fn luby(i: usize) -> u64 {
    // Find the subsequence containing index i.
    let mut k = 1u32;
    loop {
        if i + 2 == (1usize << k) {
            return 1u64 << (k - 1);
        }
        if i + 2 < (1usize << k) {
            return luby(i + 1 - (1usize << (k - 1)));
        }
        k += 1;
    }
}
