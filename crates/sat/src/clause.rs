//! The clause database: storage for original and learnt clauses,
//! clause activity, LBD ("glue") bookkeeping, and the LBD-driven
//! learnt-clause reduction policy.
//!
//! Clauses live in one arena ([`ClauseDb`]) addressed by [`ClauseRef`]
//! indices. Reduction compacts the arena, so clause references are
//! only stable *between* reductions — the solver remaps its watch
//! lists and reason pointers whenever [`Solver::reduce_db`] runs.

use crate::solver::Solver;
use crate::types::Lit;

/// Index of a clause in the arena.
pub(crate) type ClauseRef = usize;

/// Sentinel: "no reason clause" (decision or assumption).
pub(crate) const NO_REASON: ClauseRef = usize::MAX;

/// One clause with its learnt-clause metadata.
#[derive(Clone, Debug)]
pub(crate) struct Clause {
    /// The literals. Positions 0 and 1 are the watched literals.
    pub lits: Vec<Lit>,
    /// Whether the clause was learnt (original clauses are never
    /// dropped by reduction).
    pub learnt: bool,
    /// Literal-block distance at learning time: the number of distinct
    /// decision levels in the clause. Small LBD ("glue") clauses are
    /// the ones worth keeping forever.
    pub lbd: u32,
    /// Bump-and-decay activity, the tie-breaker within an LBD class.
    pub activity: f64,
}

/// The clause arena plus the activity/decay state shared by all learnt
/// clauses.
#[derive(Clone, Debug)]
pub(crate) struct ClauseDb {
    pub(crate) clauses: Vec<Clause>,
    /// Clause-activity increment (decayed geometrically).
    cla_inc: f64,
    /// Conflicts required before the next reduction.
    pub(crate) reduce_limit: u64,
    /// Conflict count at the last reduction.
    pub(crate) conflicts_at_reduce: u64,
}

/// Learnt clauses at or below this LBD are glue clauses: kept forever,
/// like binary clauses.
pub(crate) const GLUE_LBD: u32 = 2;

impl Default for ClauseDb {
    fn default() -> Self {
        ClauseDb {
            clauses: Vec::new(),
            cla_inc: 1.0,
            reduce_limit: 2000,
            conflicts_at_reduce: 0,
        }
    }
}

impl ClauseDb {
    /// Number of clauses currently stored (original + learnt).
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Appends a clause and returns its reference.
    pub fn push(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        let cref = self.clauses.len();
        self.clauses.push(Clause {
            lits,
            learnt,
            lbd,
            activity: 0.0,
        });
        cref
    }

    /// Bumps a clause's activity, rescaling all learnt activities when
    /// the values grow too large.
    pub fn bump(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            let inc = self.cla_inc;
            for cl in &mut self.clauses {
                if cl.learnt {
                    cl.activity /= inc;
                }
            }
            self.cla_inc = 1.0;
        }
    }

    /// Decays all clause activities by inflating the increment.
    pub fn decay(&mut self) {
        self.cla_inc /= 0.999;
    }
}

impl std::ops::Index<ClauseRef> for ClauseDb {
    type Output = Clause;
    fn index(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref]
    }
}

impl std::ops::IndexMut<ClauseRef> for ClauseDb {
    fn index_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref]
    }
}

impl Solver {
    /// Reduces the learnt-clause database.
    ///
    /// Keep rules, in order:
    /// - original clauses are never touched;
    /// - binary and glue (LBD ≤ [`GLUE_LBD`]) learnt clauses are kept;
    /// - *locked* clauses (the reason of a current assignment) are
    ///   kept;
    /// - of the rest, the better half survives, ordered by (LBD
    ///   ascending, activity descending) — glue first, then recency of
    ///   use.
    ///
    /// The arena is compacted afterwards; watch lists and reason
    /// pointers are rebuilt against the remapped references.
    pub(crate) fn reduce_db(&mut self) {
        let mut candidates: Vec<ClauseRef> = (0..self.db.len())
            .filter(|&i| {
                let c = &self.db[i];
                c.learnt && c.lits.len() > 2 && c.lbd > GLUE_LBD && !self.is_locked(i)
            })
            .collect();
        if candidates.len() < 100 {
            return;
        }
        // Deterministic order: LBD ascending, then activity descending,
        // then arena index (insertion order) as the final tie-break.
        candidates.sort_by(|&a, &b| {
            let (ca, cb) = (&self.db[a], &self.db[b]);
            ca.lbd
                .cmp(&cb.lbd)
                .then(cb.activity.total_cmp(&ca.activity))
                .then(a.cmp(&b))
        });
        let mut to_drop = vec![false; self.db.len()];
        for &cref in &candidates[candidates.len() / 2..] {
            to_drop[cref] = true;
        }

        // Compact the arena with a stable remapping.
        let mut remap: Vec<ClauseRef> = vec![NO_REASON; self.db.len()];
        let mut kept = Vec::with_capacity(self.db.len());
        for (i, c) in self.db.clauses.drain(..).enumerate() {
            if to_drop[i] {
                continue;
            }
            remap[i] = kept.len();
            kept.push(c);
        }
        self.db.clauses = kept;
        self.rebuild_watches();
        for r in &mut self.reason {
            if *r != NO_REASON {
                *r = remap[*r];
                // A locked clause is never dropped, so remap is valid.
                debug_assert_ne!(*r, NO_REASON);
            }
        }
        self.stats.learnt_clauses = self.db.clauses.iter().filter(|c| c.learnt).count();
        self.stats.lbd_reductions += 1;
    }

    /// Whether the clause is the reason of a currently-assigned
    /// variable (its first literal is the one it propagated).
    fn is_locked(&self, cref: ClauseRef) -> bool {
        self.db[cref]
            .lits
            .first()
            .map(|l| self.reason[l.var().index()] == cref)
            .unwrap_or(false)
    }
}
