//! Two-watched-literal unit propagation.
//!
//! Invariants maintained here and relied on everywhere else:
//!
//! - every clause of length ≥ 2 has exactly two watchers, on its
//!   literal positions 0 and 1;
//! - a watched literal is only allowed to become false if the clause's
//!   other watch is true, or the clause is unit/conflicting — i.e.
//!   watches always sit on non-false literals while the clause is
//!   undetermined;
//! - when a clause propagates, the propagated literal is moved to
//!   position 0 (conflict analysis and the locked-clause check in
//!   `reduce_db` both key on `lits[0]`).
//!
//! Each watcher carries a *blocker* literal (some other literal of the
//! clause, usually the other watch): if the blocker is already true the
//! clause is satisfied and the watcher is skipped without touching the
//! clause memory at all — the classic MiniSat cache-miss saver, which
//! matters on attack miters where watch lists grow with every DIP.

use crate::clause::{ClauseRef, NO_REASON};
use crate::solver::{Solver, UNASSIGNED};
use crate::types::Lit;

/// One entry in a watch list.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Watcher {
    /// The watching clause.
    pub cref: ClauseRef,
    /// A literal of the clause whose truth satisfies the clause;
    /// checked before the clause itself is loaded.
    pub blocker: Lit,
}

impl Solver {
    /// Stores a clause and installs its two watchers. `lbd` is the
    /// literal-block distance for learnt clauses (0 for originals).
    pub(crate) fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let (w0, w1) = (lits[0], lits[1]);
        let cref = self.db.push(lits, learnt, lbd);
        self.watches[w0.code()].push(Watcher { cref, blocker: w1 });
        self.watches[w1.code()].push(Watcher { cref, blocker: w0 });
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    /// Rebuilds every watch list from the clause arena (used after
    /// database reduction compacts clause references).
    pub(crate) fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        for (cref, c) in self.db.clauses.iter().enumerate() {
            let (w0, w1) = (c.lits[0], c.lits[1]);
            self.watches[w0.code()].push(Watcher { cref, blocker: w1 });
            self.watches[w1.code()].push(Watcher { cref, blocker: w0 });
        }
    }

    /// Enqueues a literal as true. Returns false on conflict with the
    /// current assignment.
    pub(crate) fn enqueue(&mut self, l: Lit, reason: ClauseRef) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var();
                let value = !l.is_negated();
                self.assign[v.index()] = u8::from(value);
                self.level[v.index()] = self.decision_level();
                self.reason[v.index()] = reason;
                self.vsids.save_phase(v, value);
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation to fixpoint; returns the conflicting clause if
    /// any.
    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        while self.queue_head < self.trail.len() {
            let p = self.trail[self.queue_head];
            self.queue_head += 1;
            self.stats.propagations += 1;
            let false_lit = p.negate();
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                // Blocker short-circuit: satisfied clause, watcher stays.
                if self.lit_value(watch_list[i].blocker) == Some(true) {
                    i += 1;
                    continue;
                }
                let cref = watch_list[i].cref;
                // Make sure the false literal is at position 1.
                let (w0, w1) = {
                    let c = &mut self.db[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, false_lit);
                // If the other watch is true, the clause is satisfied;
                // remember it as the blocker for next time.
                if self.lit_value(w0) == Some(true) {
                    watch_list[i].blocker = w0;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let len = self.db[cref].lits.len();
                for k in 2..len {
                    let lk = self.db[cref].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        self.db[cref].lits.swap(1, k);
                        self.watches[lk.code()].push(Watcher { cref, blocker: w0 });
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting on w0.
                watch_list[i].blocker = w0;
                if !self.enqueue(w0, cref) {
                    // Conflict: restore watch list and return.
                    self.watches[false_lit.code()] = watch_list;
                    self.queue_head = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            self.watches[false_lit.code()] = watch_list;
        }
        None
    }

    /// Undoes assignments above `level`, re-enqueueing the freed
    /// variables for decision.
    pub(crate) fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty trail");
                let v = l.var();
                self.assign[v.index()] = UNASSIGNED;
                self.reason[v.index()] = NO_REASON;
                self.vsids.insert(v);
            }
        }
        self.queue_head = self.trail.len();
    }
}
