//! First-UIP conflict analysis, conflict-clause minimization, and LBD
//! computation.

use crate::clause::{ClauseRef, NO_REASON};
use crate::solver::Solver;
use crate::types::Lit;

/// What one conflict analysis produced.
pub(crate) struct Learnt {
    /// The learnt clause, asserting literal first. A literal of the
    /// backjump level sits at position 1 (watch invariant after
    /// backjumping).
    pub lits: Vec<Lit>,
    /// The level to backjump to.
    pub backjump: u32,
    /// Literal-block distance of the learnt clause.
    pub lbd: u32,
}

impl Solver {
    /// First-UIP conflict analysis.
    ///
    /// Walks the implication graph backwards from the conflicting
    /// clause, resolving on current-level literals until a single one
    /// (the first unique implication point) remains; bumps the VSIDS
    /// activity of every variable involved; then shrinks the clause
    /// with [`minimize`](Solver::minimize) and computes its LBD.
    pub(crate) fn analyze(&mut self, confl: ClauseRef) -> Learnt {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();
        let mut confl = confl;
        let current_level = self.decision_level();

        loop {
            if self.db[confl].learnt {
                self.db.bump(confl);
            }
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.db[confl].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.vsids.bump(v);
                    if self.level[v.index()] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let q = self.trail[trail_idx];
            let v = q.var().index();
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(q);
                break;
            }
            confl = self.reason[v];
            debug_assert_ne!(confl, NO_REASON, "non-decision must have a reason");
            // The reason clause's first literal is q itself; skip it via
            // `start` above.
            debug_assert_eq!(self.db[confl].lits[0], q);
            p = Some(q);
        }
        learnt[0] = p.expect("UIP found").negate();

        // Shrink while the non-UIP literals' seen flags are still set
        // (minimize keys on them).
        self.minimize(&mut learnt);

        // Clear the seen flags of the surviving literals. (Flags of
        // minimized-away literals are cleared inside `minimize`.)
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }

        let backjump = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        // Move a literal of the backjump level to position 1 (watch
        // invariant after backjumping).
        if learnt.len() > 1 {
            let pos = learnt[1..]
                .iter()
                .position(|l| self.level[l.var().index()] == backjump)
                .expect("literal at backjump level")
                + 1;
            learnt.swap(1, pos);
        }
        let lbd = self.clause_lbd(&learnt);
        Learnt {
            lits: learnt,
            backjump,
            lbd,
        }
    }

    /// Local ("basic") conflict-clause minimization: a non-UIP literal
    /// is redundant if its reason clause is subsumed by the learnt
    /// clause itself — every antecedent literal is either already in
    /// the clause (its seen flag is set) or fixed at level 0. Such a
    /// literal is implied by the rest of the clause and can be dropped
    /// without weakening it.
    fn minimize(&mut self, learnt: &mut Vec<Lit>) {
        let before = learnt.len();
        let mut kept = 1usize;
        for i in 1..learnt.len() {
            let q = learnt[i];
            let r = self.reason[q.var().index()];
            let redundant = r != NO_REASON
                && self.db[r].lits[1..]
                    .iter()
                    .all(|&a| self.seen[a.var().index()] || self.level[a.var().index()] == 0);
            if redundant {
                self.seen[q.var().index()] = false;
            } else {
                learnt[kept] = q;
                kept += 1;
            }
        }
        learnt.truncate(kept);
        self.stats.minimized_literals += (before - kept) as u64;
    }

    /// Literal-block distance: the number of distinct decision levels
    /// among the clause's literals (level 0 excluded — root-fixed
    /// literals carry no glue information).
    pub(crate) fn clause_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.stamp += 1;
        let mut lbd = 0u32;
        for l in lits {
            let lvl = self.level[l.var().index()] as usize;
            // Levels run 1..=num_vars; stamp slot `lvl - 1`.
            if lvl > 0 && self.level_stamp[lvl - 1] != self.stamp {
                self.level_stamp[lvl - 1] = self.stamp;
                lbd += 1;
            }
        }
        lbd
    }
}
