//! The VSIDS decision heuristic: an indexed binary max-heap over
//! exponentially-decayed variable activities, plus saved phases.
//!
//! The heap replaces the seed solver's `O(n)` scan over all variables
//! per decision with `O(log n)` pops; on attack-sized miters (tens of
//! thousands of variables after a few dozen DIPs) the scan was a
//! dominant cost. Determinism: ties on activity break toward the
//! smaller variable index, and the heap itself is only mutated by the
//! (single-threaded) search loop, so decision sequences are a pure
//! function of the clause set and the call sequence.

use crate::types::Var;

/// Sentinel for "not currently in the heap".
const ABSENT: u32 = u32::MAX;

/// Activity-ordered variable queue with saved phases.
#[derive(Clone, Debug)]
pub(crate) struct Vsids {
    /// Binary max-heap of variable indices.
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or [`ABSENT`].
    position: Vec<u32>,
    /// Bump-and-decay activity per variable.
    activity: Vec<f64>,
    /// Activity increment (inflated on decay, rescaled on overflow).
    inc: f64,
    /// Saved phase per variable: the polarity it last held.
    phase: Vec<bool>,
}

impl Default for Vsids {
    fn default() -> Self {
        Vsids {
            heap: Vec::new(),
            position: Vec::new(),
            activity: Vec::new(),
            inc: 1.0,
            phase: Vec::new(),
        }
    }
}

impl Vsids {
    /// Registers a fresh variable (initial activity 0, phase `false`)
    /// and enqueues it for decision.
    pub fn new_var(&mut self) {
        let v = self.activity.len() as u32;
        self.activity.push(0.0);
        self.phase.push(false);
        self.position.push(ABSENT);
        self.insert(Var(v));
    }

    /// The saved phase of `v`.
    pub fn saved_phase(&self, v: Var) -> bool {
        self.phase[v.index()]
    }

    /// Records the polarity `v` was just assigned.
    pub fn save_phase(&mut self, v: Var, value: bool) {
        self.phase[v.index()] = value;
    }

    /// Bumps `v`'s activity, rescaling everything when values overflow
    /// the comfortable float range.
    pub fn bump(&mut self, v: Var) {
        let i = v.index();
        self.activity[i] += self.inc;
        if self.activity[i] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.inc *= 1e-100;
        }
        if self.position[i] != ABSENT {
            self.sift_up(self.position[i] as usize);
        }
    }

    /// Decays all activities by inflating the increment.
    pub fn decay(&mut self) {
        self.inc /= 0.95;
    }

    /// Re-enqueues `v` (no-op if already queued). Called when
    /// backtracking unassigns variables.
    pub fn insert(&mut self, v: Var) {
        if self.position[v.index()] != ABSENT {
            return;
        }
        self.position[v.index()] = self.heap.len() as u32;
        self.heap.push(v.0);
        self.sift_up(self.heap.len() - 1);
    }

    /// Pops the queued variable with maximal activity (smallest index
    /// on ties). The caller skips already-assigned variables — lazy
    /// deletion keeps assignment out of the heap's concern.
    pub fn pop_max(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty heap");
        self.position[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0);
        }
        Some(Var(top))
    }

    /// Heap ordering: higher activity first, smaller index on ties.
    #[inline]
    fn before(&self, a: u32, b: u32) -> bool {
        let (aa, ab) = (self.activity[a as usize], self.activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.before(self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.before(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.before(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i] as usize] = i as u32;
        self.position[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_activity_then_index() {
        let mut v = Vsids::default();
        for _ in 0..5 {
            v.new_var();
        }
        v.bump(Var(3));
        v.bump(Var(3));
        v.bump(Var(1));
        assert_eq!(v.pop_max(), Some(Var(3)));
        assert_eq!(v.pop_max(), Some(Var(1)));
        // Remaining activities tie at 0.0: index order.
        assert_eq!(v.pop_max(), Some(Var(0)));
        assert_eq!(v.pop_max(), Some(Var(2)));
        assert_eq!(v.pop_max(), Some(Var(4)));
        assert_eq!(v.pop_max(), None);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut v = Vsids::default();
        for _ in 0..3 {
            v.new_var();
        }
        v.insert(Var(0));
        v.insert(Var(0));
        assert_eq!(v.pop_max(), Some(Var(0)));
        assert_eq!(v.pop_max(), Some(Var(1)));
        assert_eq!(v.pop_max(), Some(Var(2)));
        assert_eq!(v.pop_max(), None);
        v.insert(Var(1));
        assert_eq!(v.pop_max(), Some(Var(1)));
    }

    #[test]
    fn decay_then_bump_outranks_old_activity() {
        let mut v = Vsids::default();
        for _ in 0..2 {
            v.new_var();
        }
        v.bump(Var(0));
        for _ in 0..200 {
            v.decay();
        }
        v.bump(Var(1)); // one fresh bump beats an old one after decay
        assert_eq!(v.pop_max(), Some(Var(1)));
    }
}
