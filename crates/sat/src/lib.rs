//! An incremental conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The SAT attack on logic locking (Subramanyan et al., referenced via
//! the paper's discussion of \[4\], \[5\]) needs an incremental SAT solver;
//! none being available offline, this crate implements one from
//! scratch. The architecture tour lives in `SOLVER.md` at the repo
//! root; the module map:
//!
//! - [`propagate`](crate::Solver::solve) *(module `propagate`)*:
//!   two-watched-literal unit propagation with blocker literals;
//! - *`analyze`*: first-UIP conflict analysis, local conflict-clause
//!   minimization, LBD computation;
//! - *`vsids`*: heap-based VSIDS decision heuristic with exponential
//!   decay and phase saving;
//! - *`clause`*: the clause database with LBD-based learnt-clause
//!   reduction;
//! - *`search`*: the CDCL loop, Luby restarts, non-chronological
//!   backjumping, and assumption-based incremental solving
//!   ([`Solver::solve_assuming`]) — the primitive the oracle-guided
//!   attack loop relies on: learnt clauses, activities and phases all
//!   survive across calls, only the assumptions are transient.
//!
//! # Example
//!
//! ```
//! use mlam_sat::{Lit, SatResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause(&[Lit::neg(a)]);
//! match solver.solve() {
//!     SatResult::Sat(model) => {
//!         assert!(!model.value(a));
//!         assert!(model.value(b));
//!     }
//!     SatResult::Unsat => unreachable!(),
//! }
//! // The solver is reusable: add more clauses, or probe with
//! // assumptions that constrain one call only.
//! assert!(!solver.solve_assuming(&[Lit::neg(b)]).is_sat());
//! assert!(solver.solve().is_sat());
//! ```

#![warn(missing_docs)]

mod analyze;
mod clause;
pub mod dimacs;
mod propagate;
mod search;
mod solver;
#[cfg(test)]
mod tests;
mod types;
mod vsids;

pub use solver::Solver;
pub use types::{Lit, Model, SatResult, SolverStats, Var};
