//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The SAT attack on logic locking (Subramanyan et al., referenced via
//! the paper's discussion of \[4\], \[5\]) needs an incremental SAT solver;
//! none being available offline, this crate implements one from
//! scratch:
//!
//! - two-watched-literal propagation,
//! - first-UIP conflict analysis with clause learning,
//! - VSIDS-style activity with exponential decay,
//! - non-chronological backjumping,
//! - Luby restarts and phase saving,
//! - assumption-based incremental solving
//!   ([`Solver::solve_with_assumptions`]), the primitive the
//!   oracle-guided attack loop relies on.
//!
//! # Example
//!
//! ```
//! use mlam_sat::{Lit, SatResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause(&[Lit::neg(a)]);
//! match solver.solve() {
//!     SatResult::Sat(model) => {
//!         assert!(!model.value(a));
//!         assert!(model.value(b));
//!     }
//!     SatResult::Unsat => unreachable!(),
//! }
//! ```

pub mod dimacs;
mod solver;

pub use solver::{Lit, Model, SatResult, Solver, SolverStats, Var};
