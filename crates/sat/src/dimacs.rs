//! DIMACS CNF import/export.

use crate::solver::Solver;
use crate::types::{Lit, Var};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error produced when parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl ParseDimacsError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseDimacsError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// A parsed DIMACS instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DimacsInstance {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses as signed 1-based integers.
    pub clauses: Vec<Vec<i32>>,
}

impl DimacsInstance {
    /// Loads the instance into a fresh [`Solver`], returning the solver
    /// and the variable table (`vars[i]` = DIMACS variable `i+1`).
    pub fn into_solver(&self) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars = s.new_vars(self.num_vars);
        for clause in &self.clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect();
            s.add_clause(&lits);
        }
        (s, vars)
    }
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns an error on a malformed header, literals out of range,
/// clauses not terminated by `0`, or garbage tokens.
pub fn parse_dimacs(text: &str) -> Result<DimacsInstance, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut declared_clauses = 0usize;
    let mut clauses = Vec::new();
    let mut current: Vec<i32> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if num_vars.is_some() {
                return Err(ParseDimacsError::new(lineno, "duplicate header"));
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(ParseDimacsError::new(lineno, "expected 'p cnf V C'"));
            }
            num_vars = Some(
                parts[1]
                    .parse()
                    .map_err(|_| ParseDimacsError::new(lineno, "bad variable count"))?,
            );
            declared_clauses = parts[2]
                .parse()
                .map_err(|_| ParseDimacsError::new(lineno, "bad clause count"))?;
            continue;
        }
        let nv = num_vars.ok_or_else(|| ParseDimacsError::new(lineno, "clause before header"))?;
        for tok in line.split_whitespace() {
            let l: i32 = tok
                .parse()
                .map_err(|_| ParseDimacsError::new(lineno, format!("bad token '{tok}'")))?;
            if l == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if l.unsigned_abs() as usize > nv {
                    return Err(ParseDimacsError::new(
                        lineno,
                        format!("literal {l} out of range (declared {nv} vars)"),
                    ));
                }
                current.push(l);
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError::new(0, "unterminated final clause"));
    }
    let num_vars = num_vars.ok_or_else(|| ParseDimacsError::new(0, "missing header"))?;
    if clauses.len() != declared_clauses {
        // Tolerated by most solvers; we accept but could warn. Accept.
    }
    Ok(DimacsInstance { num_vars, clauses })
}

/// Serializes clauses to DIMACS CNF text.
pub fn to_dimacs(num_vars: usize, clauses: &[Vec<i32>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", num_vars, clauses.len());
    for clause in clauses {
        for &l in clause {
            let _ = write!(out, "{l} ");
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SatResult;

    #[test]
    fn parse_and_solve() {
        let text = "c sample\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let inst = parse_dimacs(text).expect("parse");
        assert_eq!(inst.num_vars, 3);
        assert_eq!(inst.clauses.len(), 2);
        let (mut solver, vars) = inst.into_solver();
        match solver.solve() {
            SatResult::Sat(m) => {
                let v2 = m.value(vars[1]);
                let v3 = m.value(vars[2]);
                assert!(v2 || v3);
            }
            SatResult::Unsat => panic!("SAT instance"),
        }
    }

    #[test]
    fn round_trip() {
        let clauses = vec![vec![1, 2, -3], vec![-1], vec![3]];
        let text = to_dimacs(3, &clauses);
        let inst = parse_dimacs(&text).expect("parse");
        assert_eq!(inst.clauses, clauses);
        assert_eq!(inst.num_vars, 3);
    }

    #[test]
    fn multiline_clause() {
        let text = "p cnf 2 1\n1\n2 0\n";
        let inst = parse_dimacs(text).expect("parse");
        assert_eq!(inst.clauses, vec![vec![1, 2]]);
    }

    #[test]
    fn errors() {
        assert!(parse_dimacs("1 2 0\n").is_err()); // clause before header
        assert!(parse_dimacs("p cnf 1 1\n5 0\n").is_err()); // out of range
        assert!(parse_dimacs("p cnf 1 1\n1\n").is_err()); // unterminated
        assert!(parse_dimacs("p dnf 1 1\n").is_err()); // bad format tag
        assert!(parse_dimacs("").is_err()); // missing header
    }
}
