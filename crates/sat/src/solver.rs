//! The CDCL solver core.

use std::fmt;

/// A propositional variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Zero-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | sign` with `sign = 1` meaning negated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Builds a literal from a variable and a sign
    /// (`negated = true` gives `¬v`).
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit(v.0 << 1 | u32::from(negated))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// A satisfying assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable was not part of the solved instance.
    pub fn value(&self, v: Var) -> bool {
        self.values[v.index()]
    }

    /// Whether a literal is true under the model.
    pub fn lit_value(&self, l: Lit) -> bool {
        self.value(l.var()) != l.is_negated()
    }

    /// All variable values, indexed by variable.
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

/// The result of a solve call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable (under the given assumptions, if any).
    Unsat,
}

impl SatResult {
    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }

    /// Whether the result is SAT.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Aggregate statistics of a solver instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently kept.
    pub learnt_clauses: usize,
}

impl SolverStats {
    /// The work done since an earlier snapshot of the same solver.
    ///
    /// The monotone counters subtract (saturating, so snapshots from a
    /// different solver cannot underflow); `learnt_clauses` is a gauge
    /// and keeps its current value.
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses,
        }
    }

    /// Adds another solver's statistics into this one (for reporting
    /// totals across several solver instances). `learnt_clauses` sums
    /// the clauses currently kept by each instance.
    pub fn accumulate(&mut self, other: &SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
    }
}

const UNASSIGNED: u8 = 2;

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

type ClauseRef = usize;

/// The CDCL solver. See the [crate docs](crate) for the algorithm list.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists: for literal code `c`, the clauses watching that
    /// literal (i.e. containing it among the first two positions).
    watches: Vec<Vec<ClauseRef>>,
    /// Assignment per variable: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Reason clause per variable (antecedent), usize::MAX = decision.
    reason: Vec<ClauseRef>,
    /// Saved phase per variable.
    phase: Vec<bool>,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    queue_head: usize,
    /// Permanently unsatisfiable (empty clause added).
    unsat: bool,
    stats: SolverStats,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
}

const NO_REASON: ClauseRef = usize::MAX;

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ..Default::default()
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.phase.push(false);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Adds a clause. Duplicate literals are removed; tautologies are
    /// ignored; the empty clause makes the instance permanently UNSAT.
    ///
    /// Must be called at decision level 0 (i.e. not from within a solve
    /// callback).
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        assert!(self.trail_lim.is_empty(), "add_clause at level 0 only");
        for l in lits {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} references an unallocated variable"
            );
        }
        if self.unsat {
            return;
        }
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort();
        lits.dedup();
        // Tautology or satisfied-at-root check; drop root-false literals.
        let mut filtered = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == l.negate() {
                return; // tautology (sorted order places v, ¬v adjacent)
            }
            match self.lit_value(l) {
                Some(true) => return, // already satisfied at root
                Some(false) => {}     // drop
                None => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(filtered[0], NO_REASON) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                self.attach_clause(filtered, false);
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        self.watches[lits[0].code()].push(cref);
        self.watches[lits[1].code()].push(cref);
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
        });
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> Option<bool> {
        match self.assign[l.var().index()] {
            UNASSIGNED => None,
            v => Some((v == 1) != l.is_negated()),
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Enqueues a literal as true. Returns false on conflict with the
    /// current assignment.
    fn enqueue(&mut self, l: Lit, reason: ClauseRef) -> bool {
        match self.lit_value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var().index();
                self.assign[v] = u8::from(!l.is_negated());
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = !l.is_negated();
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.queue_head < self.trail.len() {
            let p = self.trail[self.queue_head];
            self.queue_head += 1;
            self.stats.propagations += 1;
            let false_lit = p.negate();
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let cref = watch_list[i];
                // Make sure the false literal is at position 1.
                let (w0, w1) = {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, false_lit);
                // If the other watch is true, the clause is satisfied.
                if self.lit_value(w0) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[lk.code()].push(cref);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting on w0.
                if !self.enqueue(w0, cref) {
                    // Conflict: restore watch list and return.
                    self.watches[false_lit.code()] = watch_list;
                    self.queue_head = self.trail.len();
                    return Some(cref);
                }
                i += 1;
            }
            self.watches[false_lit.code()] = watch_list;
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            let inc = self.cla_inc;
            for cl in &mut self.clauses {
                if cl.learnt {
                    cl.activity /= inc;
                }
            }
            self.cla_inc = 1.0;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut trail_idx = self.trail.len();
        let mut confl = confl;
        let current_level = self.decision_level();

        loop {
            self.bump_clause(confl);
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[confl].lits[start..].to_vec();
            for q in lits {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next seen literal on the trail.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let q = self.trail[trail_idx];
            let v = q.var().index();
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(q);
                break;
            }
            confl = self.reason[v];
            debug_assert_ne!(confl, NO_REASON, "non-decision must have a reason");
            // The reason clause's first literal is q itself; skip it via
            // `start` above.
            debug_assert_eq!(self.clauses[confl].lits[0], q);
            p = Some(q);
        }
        learnt[0] = p.expect("UIP found").negate();

        // Clear remaining seen flags for the learnt literals.
        let backjump = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        // Move a literal of the backjump level to position 1 (watch
        // invariant after backjumping).
        if learnt.len() > 1 {
            let pos = learnt[1..]
                .iter()
                .position(|l| self.level[l.var().index()] == backjump)
                .expect("literal at backjump level")
                + 1;
            learnt.swap(1, pos);
        }
        (learnt, backjump)
    }

    /// Undoes assignments above `level`.
    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty trail");
                let v = l.var().index();
                self.assign[v] = UNASSIGNED;
                self.reason[v] = NO_REASON;
            }
        }
        self.queue_head = self.trail.len().min(self.queue_head);
        self.queue_head = self.trail.len();
    }

    /// Picks the unassigned variable with maximal activity.
    fn pick_branch(&self) -> Option<Var> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == UNASSIGNED {
                let a = self.activity[v];
                match best {
                    Some((_, ba)) if ba >= a => {}
                    _ => best = Some((v, a)),
                }
            }
        }
        best.map(|(v, _)| Var(v as u32))
    }

    /// Reduces the learnt-clause database, keeping the most active half.
    fn reduce_db(&mut self) {
        let mut learnt: Vec<(ClauseRef, f64)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && c.lits.len() > 2)
            .map(|(i, c)| (i, c.activity))
            .collect();
        if learnt.len() < 100 {
            return;
        }
        learnt.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("activity not NaN"));
        let drop_count = learnt.len() / 2;
        let mut to_drop: Vec<bool> = vec![false; self.clauses.len()];
        for &(cref, _) in learnt.iter().take(drop_count) {
            // Keep clauses that are reasons for current assignments.
            let locked = self.clauses[cref]
                .lits
                .first()
                .map(|l| self.reason[l.var().index()] == cref)
                .unwrap_or(false);
            if !locked {
                to_drop[cref] = true;
            }
        }
        // Rebuild the clause arena and watches with stable remapping.
        let mut remap: Vec<ClauseRef> = vec![NO_REASON; self.clauses.len()];
        let mut new_clauses = Vec::with_capacity(self.clauses.len());
        for (i, c) in self.clauses.drain(..).enumerate() {
            if to_drop[i] {
                continue;
            }
            remap[i] = new_clauses.len();
            new_clauses.push(c);
        }
        self.clauses = new_clauses;
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].code()].push(i);
            self.watches[c.lits[1].code()].push(i);
        }
        for r in &mut self.reason {
            if *r != NO_REASON {
                *r = remap[*r];
                // A locked clause is never dropped, so remap is valid.
                debug_assert_ne!(*r, NO_REASON);
            }
        }
        self.stats.learnt_clauses = self.clauses.iter().filter(|c| c.learnt).count();
    }

    /// Solves the instance without assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. The solver state is
    /// reusable afterwards: assumptions do not become permanent.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        let before = self.stats;
        let result = self.solve_with_assumptions_inner(assumptions);
        // Publish the per-call deltas so attack-level telemetry sees
        // solver work even when solver instances are short-lived.
        let delta = self.stats.since(&before);
        mlam_telemetry::counter!("sat.solve_calls", 1);
        mlam_telemetry::counter!("sat.conflicts", delta.conflicts);
        mlam_telemetry::counter!("sat.decisions", delta.decisions);
        mlam_telemetry::counter!("sat.propagations", delta.propagations);
        mlam_telemetry::counter!("sat.restarts", delta.restarts);
        mlam_telemetry::histogram!("sat.conflicts_per_call", delta.conflicts);
        result
    }

    fn solve_with_assumptions_inner(&mut self, assumptions: &[Lit]) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_unit = 0usize;
        let mut restart_limit = luby(restart_unit) * 64;
        let mut reduce_limit = 2000u64;
        let mut total_conflicts_at_reduce = self.stats.conflicts;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                // Conflicts below or at the assumption levels mean the
                // assumptions are inconsistent: analyze normally, but if
                // the backjump target is within the assumption prefix we
                // must re-establish assumptions; simplest correct rule:
                // if all conflict levels are within assumptions, UNSAT.
                let (learnt, backjump) = self.analyze(confl);
                let assumption_levels = self.assumption_levels(assumptions);
                if self.decision_level() <= assumption_levels {
                    self.cancel_until(0);
                    return SatResult::Unsat;
                }
                if learnt.len() == 1 {
                    // A unit learnt is implied by the clause database
                    // alone (assumption decisions enter the clause as
                    // ordinary literals), so it belongs at level 0 —
                    // enqueueing it reasonless inside the assumption
                    // prefix would break the "non-decision has a
                    // reason" invariant of later conflict analyses.
                    // The decision loop re-places the assumptions.
                    self.cancel_until(0);
                    if !self.enqueue(learnt[0], NO_REASON) {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let target = backjump.max(assumption_levels);
                    self.cancel_until(target);
                    let cref = self.attach_clause(learnt.clone(), true);
                    let ok = self.enqueue(learnt[0], cref);
                    debug_assert!(ok, "asserting literal must enqueue");
                }
                self.decay_activities();

                if self.stats.conflicts - total_conflicts_at_reduce >= reduce_limit {
                    total_conflicts_at_reduce = self.stats.conflicts;
                    reduce_limit += 500;
                    self.reduce_db();
                }
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_unit += 1;
                    restart_limit = luby(restart_unit) * 64;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
            } else {
                // Place assumptions first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        Some(true) => {
                            // Already satisfied: open a level anyway to
                            // keep the level/assumption indexing aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.stats.decisions += 1;
                            let ok = self.enqueue(a, NO_REASON);
                            debug_assert!(ok);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => {
                        // All variables assigned: SAT.
                        let model = Model {
                            values: self.assign.iter().map(|&v| v == 1).collect(),
                        };
                        self.cancel_until(0);
                        return SatResult::Sat(model);
                    }
                    Some(v) => {
                        self.trail_lim.push(self.trail.len());
                        self.stats.decisions += 1;
                        let lit = Lit::new(v, !self.phase[v.index()]);
                        let ok = self.enqueue(lit, NO_REASON);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }

    /// Number of decision levels occupied by assumptions.
    fn assumption_levels(&self, assumptions: &[Lit]) -> u32 {
        (assumptions.len() as u32).min(self.decision_level())
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,…
fn luby(i: usize) -> u64 {
    // Find the subsequence containing index i.
    let mut k = 1u32;
    loop {
        if i + 2 == (1usize << k) {
            return 1u64 << (k - 1);
        }
        if i + 2 < (1usize << k) {
            return luby(i + 1 - (1usize << (k - 1)));
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_force_sat(num_vars: usize, clauses: &[Vec<i32>]) -> bool {
        'outer: for mask in 0u64..(1 << num_vars) {
            for clause in clauses {
                let sat = clause.iter().any(|&l| {
                    let v = (l.unsigned_abs() - 1) as usize;
                    let val = mask >> v & 1 == 1;
                    if l > 0 {
                        val
                    } else {
                        !val
                    }
                });
                if !sat {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    fn solve_ints(num_vars: usize, clauses: &[Vec<i32>]) -> SatResult {
        let mut s = Solver::new();
        let vars = s.new_vars(num_vars);
        for clause in clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect();
            s.add_clause(&lits);
        }
        let result = s.solve();
        // Any returned model must actually satisfy the clauses.
        if let SatResult::Sat(m) = &result {
            for clause in clauses {
                assert!(
                    clause.iter().any(|&l| {
                        let val = m.value(vars[(l.unsigned_abs() - 1) as usize]);
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    }),
                    "model violates clause {clause:?}"
                );
            }
        }
        result
    }

    #[test]
    fn trivial_instances() {
        assert!(solve_ints(1, &[vec![1]]).is_sat());
        assert!(solve_ints(1, &[vec![-1]]).is_sat());
        assert!(!solve_ints(1, &[vec![1], vec![-1]]).is_sat());
        assert!(solve_ints(2, &[vec![1, 2], vec![-1, 2], vec![1, -2]]).is_sat());
        assert!(!solve_ints(2, &[vec![1, 2], vec![-1, 2], vec![1, -2], vec![-1, -2]]).is_sat());
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{i,j}: pigeon i in hole j. Vars 1..=6.
        let p = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        let mut clauses = Vec::new();
        for i in 0..3 {
            clauses.push(vec![p(i, 0), p(i, 1)]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    clauses.push(vec![-p(a, j), -p(b, j)]);
                }
            }
        }
        assert!(!solve_ints(6, &clauses).is_sat());
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut sat_seen = 0;
        let mut unsat_seen = 0;
        for _ in 0..400 {
            let n = rng.gen_range(3..=10usize);
            let m = rng.gen_range(1..=(n * 5));
            let clauses: Vec<Vec<i32>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = rng.gen_range(1..=n as i32);
                            if rng.gen() {
                                v
                            } else {
                                -v
                            }
                        })
                        .collect()
                })
                .collect();
            let expected = brute_force_sat(n, &clauses);
            let got = solve_ints(n, &clauses).is_sat();
            assert_eq!(got, expected, "n={n} clauses={clauses:?}");
            if expected {
                sat_seen += 1;
            } else {
                unsat_seen += 1;
            }
        }
        assert!(
            sat_seen > 20 && unsat_seen > 20,
            "{sat_seen} / {unsat_seen}"
        );
    }

    #[test]
    fn assumptions_are_not_permanent() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        // Under assumption ¬a, b must be true.
        match s.solve_with_assumptions(&[Lit::neg(a)]) {
            SatResult::Sat(m) => {
                assert!(!m.value(a));
                assert!(m.value(b));
            }
            SatResult::Unsat => panic!("must be SAT"),
        }
        // Under assumption a, b is free; instance still SAT.
        assert!(s.solve_with_assumptions(&[Lit::pos(a)]).is_sat());
        // Contradictory assumptions -> UNSAT, but instance recovers.
        assert!(!s
            .solve_with_assumptions(&[Lit::pos(a), Lit::neg(a)])
            .is_sat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let vars = s.new_vars(4);
        s.add_clause(&[Lit::pos(vars[0]), Lit::pos(vars[1])]);
        assert!(s.solve().is_sat());
        s.add_clause(&[Lit::neg(vars[0])]);
        match s.solve() {
            SatResult::Sat(m) => assert!(m.value(vars[1])),
            SatResult::Unsat => panic!("still SAT"),
        }
        s.add_clause(&[Lit::neg(vars[1])]);
        assert!(!s.solve().is_sat());
        // Permanent UNSAT.
        assert!(!s.solve().is_sat());
    }

    #[test]
    fn assumptions_with_unsat_core_behaviour() {
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        let z = s.new_var();
        s.add_clause(&[Lit::neg(x), Lit::pos(y)]);
        s.add_clause(&[Lit::neg(y), Lit::pos(z)]);
        s.add_clause(&[Lit::neg(z)]);
        // Chain forces ¬x.
        assert!(!s.solve_with_assumptions(&[Lit::pos(x)]).is_sat());
        assert!(s.solve_with_assumptions(&[Lit::neg(x)]).is_sat());
    }

    #[test]
    fn large_random_satisfiable_instance() {
        // Plant a solution, generate clauses satisfied by it.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200;
        let planted: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let mut s = Solver::new();
        let vars = s.new_vars(n);
        for _ in 0..900 {
            let mut clause = Vec::new();
            loop {
                clause.clear();
                for _ in 0..3 {
                    let v = rng.gen_range(0..n);
                    clause.push(Lit::new(vars[v], rng.gen()));
                }
                // Keep only clauses satisfied by the planted assignment.
                if clause
                    .iter()
                    .any(|l| planted[l.var().index()] != l.is_negated())
                {
                    break;
                }
            }
            s.add_clause(&clause);
        }
        match s.solve() {
            SatResult::Sat(_) => {}
            SatResult::Unsat => panic!("planted instance must be SAT"),
        }
        assert!(s.stats().propagations > 0);
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn tautologies_and_duplicates_handled() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::pos(a), Lit::neg(a)]); // tautology: ignored
        s.add_clause(&[Lit::pos(b), Lit::pos(b)]); // duplicate: unit b
        match s.solve() {
            SatResult::Sat(m) => assert!(m.value(b)),
            SatResult::Unsat => panic!(),
        }
        assert_eq!(s.num_clauses(), 0, "both clauses simplified away");
    }

    #[test]
    fn lit_api() {
        let v = Var(3);
        assert_eq!(Lit::pos(v).var(), v);
        assert!(!Lit::pos(v).is_negated());
        assert!(Lit::neg(v).is_negated());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(Lit::new(v, true), Lit::neg(v));
        assert_eq!(format!("{}", Lit::neg(v)), "¬x3");
    }
}
