//! The solver skeleton: state owned by [`Solver`], variable/clause
//! construction, and the public inspection API.
//!
//! The algorithmic machinery lives in the sibling modules —
//! [`propagate`](crate::propagate) (two-watched-literal propagation),
//! [`analyze`](crate::analyze) (1-UIP learning + minimization),
//! [`vsids`](crate::vsids) (decision heap + phase saving),
//! [`clause`](crate::clause) (LBD-based learnt reduction) and
//! [`search`](crate::search) (the CDCL loop, restarts, and the
//! incremental [`Solver::solve_assuming`] entry point).

use crate::clause::{ClauseDb, ClauseRef, NO_REASON};
use crate::propagate::Watcher;
use crate::types::{Lit, SolverStats, Var};
use crate::vsids::Vsids;

pub(crate) const UNASSIGNED: u8 = 2;

/// The incremental CDCL solver. See the [crate docs](crate) for the
/// algorithm list and `SOLVER.md` at the repo root for the
/// architecture tour.
///
/// # Incremental contract
///
/// A `Solver` is a *persistent* object: clauses added with
/// [`add_clause`](Solver::add_clause) stay forever, and everything the
/// search learns — learnt clauses, variable activities, saved phases —
/// survives across [`solve`](Solver::solve) /
/// [`solve_assuming`](Solver::solve_assuming) calls. Assumptions are
/// the *only* transient input: they constrain exactly one call.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    /// Clause arena (original + learnt) and reduction policy.
    pub(crate) db: ClauseDb,
    /// Watch lists: for literal code `c`, the watchers of clauses
    /// currently watching that literal.
    pub(crate) watches: Vec<Vec<Watcher>>,
    /// Assignment per variable: 0 = false, 1 = true, 2 = unassigned.
    pub(crate) assign: Vec<u8>,
    /// Decision level per variable.
    pub(crate) level: Vec<u32>,
    /// Reason clause per variable (antecedent), [`NO_REASON`] for
    /// decisions and assumptions.
    pub(crate) reason: Vec<ClauseRef>,
    /// Decision heuristic: activity heap + saved phases.
    pub(crate) vsids: Vsids,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) queue_head: usize,
    /// Permanently unsatisfiable (empty clause added).
    pub(crate) unsat: bool,
    pub(crate) stats: SolverStats,
    /// Scratch for conflict analysis.
    pub(crate) seen: Vec<bool>,
    /// Scratch for LBD computation: stamp per decision level.
    pub(crate) level_stamp: Vec<u64>,
    pub(crate) stamp: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.db.len()
    }

    /// Solver statistics (monotone over the solver's lifetime; diff
    /// snapshots with [`SolverStats::since`] for per-call costs).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.seen.push(false);
        self.level_stamp.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.vsids.new_var();
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Adds a clause, permanently. Duplicate literals are removed;
    /// tautologies are ignored; literals false at the root level are
    /// dropped and clauses true at the root are discarded (so clauses
    /// added after unit constraints arrive pre-simplified — the DIP
    /// loop's pinned circuit copies rely on this); the empty clause
    /// makes the instance permanently UNSAT.
    ///
    /// Must be called at decision level 0 (i.e. not from within a solve
    /// callback).
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    ///
    /// # Example
    ///
    /// ```
    /// use mlam_sat::{Lit, Solver};
    ///
    /// let mut s = Solver::new();
    /// let (a, b) = (s.new_var(), s.new_var());
    /// s.add_clause(&[Lit::neg(a)]); // unit: ¬a holds at the root
    /// s.add_clause(&[Lit::pos(a), Lit::pos(b)]); // simplifies to unit b
    /// assert_eq!(s.num_clauses(), 0, "both clauses became root units");
    /// assert!(s.solve().is_sat());
    /// ```
    pub fn add_clause(&mut self, lits: &[Lit]) {
        assert!(self.trail_lim.is_empty(), "add_clause at level 0 only");
        for l in lits {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} references an unallocated variable"
            );
        }
        if self.unsat {
            return;
        }
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort();
        lits.dedup();
        // Tautology or satisfied-at-root check; drop root-false literals.
        let mut filtered = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == l.negate() {
                return; // tautology (sorted order places v, ¬v adjacent)
            }
            match self.lit_value(l) {
                Some(true) => return, // already satisfied at root
                Some(false) => {}     // drop
                None => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(filtered[0], NO_REASON) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                self.attach_clause(filtered, false, 0);
            }
        }
    }

    /// The current value of a literal, if its variable is assigned.
    #[inline]
    pub(crate) fn lit_value(&self, l: Lit) -> Option<bool> {
        match self.assign[l.var().index()] {
            UNASSIGNED => None,
            v => Some((v == 1) != l.is_negated()),
        }
    }

    #[inline]
    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }
}
