//! Unit tests of the solver core (the brute-force cross-checks; the
//! property-based suite lives in `tests/properties.rs`).

use crate::search::luby;
use crate::types::{Lit, SatResult, Var};
use crate::Solver;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn brute_force_sat(num_vars: usize, clauses: &[Vec<i32>]) -> bool {
    'outer: for mask in 0u64..(1 << num_vars) {
        for clause in clauses {
            let sat = clause.iter().any(|&l| {
                let v = (l.unsigned_abs() - 1) as usize;
                let val = mask >> v & 1 == 1;
                if l > 0 {
                    val
                } else {
                    !val
                }
            });
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn solve_ints(num_vars: usize, clauses: &[Vec<i32>]) -> SatResult {
    let mut s = Solver::new();
    let vars = s.new_vars(num_vars);
    for clause in clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
            .collect();
        s.add_clause(&lits);
    }
    let result = s.solve();
    // Any returned model must actually satisfy the clauses.
    if let SatResult::Sat(m) = &result {
        for clause in clauses {
            assert!(
                clause.iter().any(|&l| {
                    let val = m.value(vars[(l.unsigned_abs() - 1) as usize]);
                    if l > 0 {
                        val
                    } else {
                        !val
                    }
                }),
                "model violates clause {clause:?}"
            );
        }
    }
    result
}

#[test]
fn trivial_instances() {
    assert!(solve_ints(1, &[vec![1]]).is_sat());
    assert!(solve_ints(1, &[vec![-1]]).is_sat());
    assert!(!solve_ints(1, &[vec![1], vec![-1]]).is_sat());
    assert!(solve_ints(2, &[vec![1, 2], vec![-1, 2], vec![1, -2]]).is_sat());
    assert!(!solve_ints(2, &[vec![1, 2], vec![-1, 2], vec![1, -2], vec![-1, -2]]).is_sat());
}

#[test]
fn pigeonhole_3_into_2_is_unsat() {
    // p_{i,j}: pigeon i in hole j. Vars 1..=6.
    let p = |i: usize, j: usize| (i * 2 + j + 1) as i32;
    let mut clauses = Vec::new();
    for i in 0..3 {
        clauses.push(vec![p(i, 0), p(i, 1)]);
    }
    for j in 0..2 {
        for a in 0..3 {
            for b in (a + 1)..3 {
                clauses.push(vec![-p(a, j), -p(b, j)]);
            }
        }
    }
    assert!(!solve_ints(6, &clauses).is_sat());
}

#[test]
fn random_3sat_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut sat_seen = 0;
    let mut unsat_seen = 0;
    for _ in 0..400 {
        let n = rng.gen_range(3..=10usize);
        let m = rng.gen_range(1..=(n * 5));
        let clauses: Vec<Vec<i32>> = (0..m)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        let v = rng.gen_range(1..=n as i32);
                        if rng.gen() {
                            v
                        } else {
                            -v
                        }
                    })
                    .collect()
            })
            .collect();
        let expected = brute_force_sat(n, &clauses);
        let got = solve_ints(n, &clauses).is_sat();
        assert_eq!(got, expected, "n={n} clauses={clauses:?}");
        if expected {
            sat_seen += 1;
        } else {
            unsat_seen += 1;
        }
    }
    assert!(
        sat_seen > 20 && unsat_seen > 20,
        "{sat_seen} / {unsat_seen}"
    );
}

#[test]
fn assumptions_are_not_permanent() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    // Under assumption ¬a, b must be true.
    match s.solve_assuming(&[Lit::neg(a)]) {
        SatResult::Sat(m) => {
            assert!(!m.value(a));
            assert!(m.value(b));
        }
        SatResult::Unsat => panic!("must be SAT"),
    }
    // Under assumption a, b is free; instance still SAT.
    assert!(s.solve_assuming(&[Lit::pos(a)]).is_sat());
    // Contradictory assumptions -> UNSAT, but instance recovers.
    assert!(!s.solve_assuming(&[Lit::pos(a), Lit::neg(a)]).is_sat());
    assert!(s.solve().is_sat());
    // The legacy spelling routes to the same entry point.
    assert!(s.solve_with_assumptions(&[Lit::pos(a)]).is_sat());
}

#[test]
fn incremental_clause_addition() {
    let mut s = Solver::new();
    let vars = s.new_vars(4);
    s.add_clause(&[Lit::pos(vars[0]), Lit::pos(vars[1])]);
    assert!(s.solve().is_sat());
    s.add_clause(&[Lit::neg(vars[0])]);
    match s.solve() {
        SatResult::Sat(m) => assert!(m.value(vars[1])),
        SatResult::Unsat => panic!("still SAT"),
    }
    s.add_clause(&[Lit::neg(vars[1])]);
    assert!(!s.solve().is_sat());
    // Permanent UNSAT.
    assert!(!s.solve().is_sat());
}

#[test]
fn assumptions_with_unsat_core_behaviour() {
    let mut s = Solver::new();
    let x = s.new_var();
    let y = s.new_var();
    let z = s.new_var();
    s.add_clause(&[Lit::neg(x), Lit::pos(y)]);
    s.add_clause(&[Lit::neg(y), Lit::pos(z)]);
    s.add_clause(&[Lit::neg(z)]);
    // Chain forces ¬x.
    assert!(!s.solve_assuming(&[Lit::pos(x)]).is_sat());
    assert!(s.solve_assuming(&[Lit::neg(x)]).is_sat());
}

#[test]
fn large_random_satisfiable_instance() {
    // Plant a solution, generate clauses satisfied by it.
    let mut rng = StdRng::seed_from_u64(7);
    let n = 200;
    let planted: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let mut s = Solver::new();
    let vars = s.new_vars(n);
    for _ in 0..900 {
        let mut clause = Vec::new();
        loop {
            clause.clear();
            for _ in 0..3 {
                let v = rng.gen_range(0..n);
                clause.push(Lit::new(vars[v], rng.gen()));
            }
            // Keep only clauses satisfied by the planted assignment.
            if clause
                .iter()
                .any(|l| planted[l.var().index()] != l.is_negated())
            {
                break;
            }
        }
        s.add_clause(&clause);
    }
    match s.solve() {
        SatResult::Sat(_) => {}
        SatResult::Unsat => panic!("planted instance must be SAT"),
    }
    assert!(s.stats().propagations > 0);
}

#[test]
fn stats_track_incremental_work() {
    let mut s = Solver::new();
    let vars = s.new_vars(8);
    // An XOR-ish chain with enough conflicts to learn something.
    for w in vars.windows(2) {
        s.add_clause(&[Lit::pos(w[0]), Lit::pos(w[1])]);
        s.add_clause(&[Lit::neg(w[0]), Lit::neg(w[1])]);
    }
    assert!(s.solve().is_sat());
    let before = s.stats();
    assert_eq!(before.assumption_solves, 0);
    assert!(s.solve_assuming(&[Lit::pos(vars[0])]).is_sat());
    assert!(!s
        .solve_assuming(&[Lit::pos(vars[0]), Lit::pos(vars[1])])
        .is_sat());
    let delta = s.stats().since(&before);
    assert_eq!(delta.assumption_solves, 2);
    // The per-call delta of the monotone counters is non-negative and
    // `since` on identical snapshots is zero.
    assert_eq!(s.stats().since(&s.stats()).conflicts, 0);
}

#[test]
fn learnt_reduction_keeps_verdicts() {
    // Pigeonhole instances generate many learnt clauses; after forcing
    // reductions the verdict must stay UNSAT and reasons stay valid.
    let p = |i: usize, j: usize, holes: usize| (i * holes + j + 1) as i32;
    let (pigeons, holes) = (7, 6);
    let mut clauses = Vec::new();
    for i in 0..pigeons {
        clauses.push((0..holes).map(|j| p(i, j, holes)).collect::<Vec<_>>());
    }
    for j in 0..holes {
        for a in 0..pigeons {
            for b in (a + 1)..pigeons {
                clauses.push(vec![-p(a, j, holes), -p(b, j, holes)]);
            }
        }
    }
    let mut s = Solver::new();
    let vars = s.new_vars(pigeons * holes);
    for clause in &clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
            .collect();
        s.add_clause(&lits);
    }
    assert!(!s.solve().is_sat());
    let stats = s.stats();
    assert!(stats.conflicts > 0);
    assert!(stats.learnts > 0, "pigeonhole must learn clauses");
}

#[test]
fn luby_sequence_prefix() {
    let prefix: Vec<u64> = (0..15).map(luby).collect();
    assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
}

#[test]
fn tautologies_and_duplicates_handled() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[Lit::pos(a), Lit::neg(a)]); // tautology: ignored
    s.add_clause(&[Lit::pos(b), Lit::pos(b)]); // duplicate: unit b
    match s.solve() {
        SatResult::Sat(m) => assert!(m.value(b)),
        SatResult::Unsat => panic!(),
    }
    assert_eq!(s.num_clauses(), 0, "both clauses simplified away");
}

#[test]
fn units_first_shrink_later_clauses() {
    // The DIP loop pins circuit-copy inputs with units *before* adding
    // the copy's gate clauses; root simplification must then discard
    // satisfied clauses entirely.
    let mut s = Solver::new();
    let vars = s.new_vars(4);
    s.add_clause(&[Lit::pos(vars[0])]);
    s.add_clause(&[Lit::neg(vars[1])]);
    // Satisfied at root by vars[0]: dropped.
    s.add_clause(&[Lit::pos(vars[0]), Lit::pos(vars[2]), Lit::pos(vars[3])]);
    // vars[1] is root-false: the clause shrinks to a binary.
    s.add_clause(&[Lit::pos(vars[1]), Lit::pos(vars[2]), Lit::pos(vars[3])]);
    assert_eq!(s.num_clauses(), 1, "one shrunken clause survives");
    assert!(s.solve().is_sat());
}

#[test]
fn lit_api() {
    let v = Var(3);
    assert_eq!(Lit::pos(v).var(), v);
    assert!(!Lit::pos(v).is_negated());
    assert!(Lit::neg(v).is_negated());
    assert_eq!(!Lit::pos(v), Lit::neg(v));
    assert_eq!(Lit::new(v, true), Lit::neg(v));
    assert_eq!(format!("{}", Lit::neg(v)), "¬x3");
}
