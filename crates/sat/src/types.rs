//! The vocabulary types of the solver: variables, literals, models,
//! results and statistics.
//!
//! Everything here is plain data with no solver state attached, so the
//! attack layers can pass these around freely (e.g. accumulate
//! [`SolverStats`] across several solver instances, or keep a [`Model`]
//! alive after the solver has moved on).

use std::fmt;

/// A propositional variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Zero-based index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | sign` with `sign = 1` meaning negated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Builds a literal from a variable and a sign
    /// (`negated = true` gives `¬v`).
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit(v.0 << 1 | u32::from(negated))
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// The literal's index into literal-indexed maps (watch lists).
    pub(crate) fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// A satisfying assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    pub(crate) values: Vec<bool>,
}

impl Model {
    /// The value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable was not part of the solved instance.
    pub fn value(&self, v: Var) -> bool {
        self.values[v.index()]
    }

    /// Whether a literal is true under the model.
    pub fn lit_value(&self, l: Lit) -> bool {
        self.value(l.var()) != l.is_negated()
    }

    /// All variable values, indexed by variable.
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

/// The result of a solve call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a model.
    Sat(Model),
    /// Unsatisfiable (under the given assumptions, if any).
    Unsat,
}

impl SatResult {
    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }

    /// Whether the result is SAT.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Aggregate statistics of a solver instance.
///
/// All fields except `learnt_clauses` are monotone counters over the
/// solver's lifetime; `learnt_clauses` is a gauge (the learnt clauses
/// *currently kept*, i.e. after LBD-based reductions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently kept.
    pub learnt_clauses: usize,
    /// Clauses learnt over the solver's lifetime (cumulative; reduction
    /// does not subtract).
    #[serde(default)]
    pub learnts: u64,
    /// LBD-based learnt-database reductions performed.
    #[serde(default)]
    pub lbd_reductions: u64,
    /// Solve calls made with a non-empty assumption set.
    #[serde(default)]
    pub assumption_solves: u64,
    /// Literals removed from learnt clauses by conflict-clause
    /// minimization.
    #[serde(default)]
    pub minimized_literals: u64,
}

impl SolverStats {
    /// The work done since an earlier snapshot of the same solver.
    ///
    /// The monotone counters subtract (saturating, so snapshots from a
    /// different solver cannot underflow); `learnt_clauses` is a gauge
    /// and keeps its current value.
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses,
            learnts: self.learnts.saturating_sub(earlier.learnts),
            lbd_reductions: self.lbd_reductions.saturating_sub(earlier.lbd_reductions),
            assumption_solves: self
                .assumption_solves
                .saturating_sub(earlier.assumption_solves),
            minimized_literals: self
                .minimized_literals
                .saturating_sub(earlier.minimized_literals),
        }
    }

    /// Adds another solver's statistics into this one (for reporting
    /// totals across several solver instances). `learnt_clauses` sums
    /// the clauses currently kept by each instance.
    pub fn accumulate(&mut self, other: &SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.learnts += other.learnts;
        self.lbd_reductions += other.lbd_reductions;
        self.assumption_solves += other.assumption_solves;
        self.minimized_literals += other.minimized_literals;
    }
}
