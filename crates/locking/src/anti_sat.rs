//! SARLock-style point-function locking — the scheme class behind the
//! paper's exact-vs-approximate discussion (Section IV-A, after \[4\]).
//!
//! The defense: XOR the circuit output with a *point function*
//! `flip(x, key) = [x_{0..k} == key]` (masked so the correct key never
//! flips). Every wrong key corrupts the output on exactly **one** input
//! pattern, so each DIP the SAT attack extracts eliminates only one
//! wrong key: exact key recovery needs `Ω(2^k)` oracle queries.
//!
//! And yet the scheme is security theater against an *approximate*
//! adversary: any wrong key is a `(1 − 2^{−k})`-accurate model, and
//! AppSAT returns one almost immediately. That is precisely the
//! impossibility of approximation-resilient locking the paper cites
//! \[4\] — implemented and measurable here.

use crate::combinational::LockedNetlist;
use mlam_boolean::BitVec;
use mlam_netlist::{GateKind, Net, Netlist};
use rand::Rng;

/// Locks a netlist with a SARLock-style point function on its first
/// output.
///
/// The construction appends `key_bits` key inputs and gates computing
/// `flip = [x_{0..key_bits} == key] AND [key != correct_key]`, then
/// XORs `flip` into output 0. With the correct key the circuit is
/// untouched; with a wrong key exactly one input pattern (the one whose
/// low bits equal the wrong key) is corrupted.
///
/// # Panics
///
/// Panics if `key_bits == 0` or `key_bits > original.num_inputs()`.
pub fn lock_sarlock<R: Rng + ?Sized>(
    original: &Netlist,
    key_bits: usize,
    rng: &mut R,
) -> LockedNetlist {
    assert!(key_bits > 0, "need at least one key bit");
    assert!(
        key_bits <= original.num_inputs(),
        "key cannot be wider than the input"
    );
    let num_primary = original.num_inputs();
    let correct_key = BitVec::random(key_bits, rng);

    let mut b = Netlist::builder(num_primary + key_bits, original.num_outputs());
    // Rebuild the original gates (inputs map 1:1).
    let mut map: Vec<Net> = (0..num_primary).map(|i| b.input(i)).collect();
    for gate in original.gates() {
        let inputs: Vec<Net> = gate.inputs.iter().map(|n| map[n.index()]).collect();
        map.push(b.gate(gate.kind, inputs));
    }

    // match_i = XNOR(x_i, key_i); eq = AND_i match_i.
    let mut matches = Vec::with_capacity(key_bits);
    for i in 0..key_bits {
        let x = b.input(i);
        let k = b.input(num_primary + i);
        matches.push(b.gate(GateKind::Xnor, vec![x, k]));
    }
    let eq = if matches.len() == 1 {
        matches[0]
    } else {
        b.gate(GateKind::And, matches)
    };

    // wrong = [key != correct_key]: OR over bits where key differs from
    // the secret; realized as OR of per-bit XOR/XNOR against constants.
    // A constant is encoded as XNOR(k_i, k_i) = 1 / XOR(k_i, k_i) = 0.
    let mut diff_terms = Vec::with_capacity(key_bits);
    for i in 0..key_bits {
        let k = b.input(num_primary + i);
        // If the secret bit is 1, the key differs when k = 0 -> NOT k;
        // if the secret bit is 0, it differs when k = 1 -> k.
        let term = if correct_key.get(i) {
            b.gate(GateKind::Not, vec![k])
        } else {
            b.gate(GateKind::Buf, vec![k])
        };
        diff_terms.push(term);
    }
    let wrong = if diff_terms.len() == 1 {
        diff_terms[0]
    } else {
        b.gate(GateKind::Or, diff_terms)
    };

    let flip = b.gate(GateKind::And, vec![eq, wrong]);
    // XOR the flip into output 0; other outputs pass through.
    let out0 = map[original.outputs()[0].index()];
    let new_out0 = b.gate(GateKind::Xor, vec![out0, flip]);
    b.set_output(0, new_out0);
    for (oi, net) in original.outputs().iter().enumerate().skip(1) {
        b.set_output(oi, map[net.index()]);
    }
    LockedNetlist::from_parts(b.build(), num_primary, key_bits, correct_key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appsat::{appsat, AppSatConfig};
    use crate::sat_attack::{sat_attack, SatAttackConfig};
    use mlam_netlist::generate::c17;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correct_key_is_transparent() {
        let mut rng = StdRng::seed_from_u64(1);
        let orig = c17();
        let locked = lock_sarlock(&orig, 4, &mut rng);
        let key = locked.correct_key().clone();
        assert!(locked.equivalent_under_key(&orig, &key));
    }

    #[test]
    fn every_wrong_key_corrupts_exactly_one_pattern() {
        let mut rng = StdRng::seed_from_u64(2);
        let orig = c17();
        let locked = lock_sarlock(&orig, 4, &mut rng);
        let correct = locked.correct_key().clone();
        for wrong_val in 0..16u64 {
            let wrong = BitVec::from_u64(wrong_val, 4);
            if wrong == correct {
                continue;
            }
            let mut corrupted = 0usize;
            for v in 0..32u64 {
                let bits: Vec<bool> = (0..5).map(|i| v >> i & 1 == 1).collect();
                if locked.simulate(&bits, &wrong) != orig.simulate(&bits) {
                    corrupted += 1;
                }
            }
            // Exactly the 2 inputs (5 input bits, low 4 pinned) whose
            // low bits equal the wrong key.
            assert_eq!(corrupted, 2, "wrong key {wrong} corrupted {corrupted}");
        }
    }

    #[test]
    fn sat_attack_needs_exponentially_many_dips() {
        let mut rng = StdRng::seed_from_u64(3);
        let orig = c17();
        let locked = lock_sarlock(&orig, 5, &mut rng);
        let result = sat_attack(&locked, &orig, SatAttackConfig::default());
        assert!(result.key_is_functionally_correct);
        // Each DIP kills one wrong key: ~2^5 − 1 DIPs needed.
        assert!(
            result.iterations >= 24,
            "SARLock must force ≈2^k DIPs, got {}",
            result.iterations
        );
    }

    #[test]
    fn appsat_breaks_it_approximately_at_once() {
        let mut rng = StdRng::seed_from_u64(4);
        let orig = c17();
        let locked = lock_sarlock(&orig, 5, &mut rng);
        let cfg = AppSatConfig {
            dips_per_round: 1,
            queries_per_round: 24,
            error_threshold: 0.05,
            settlement_rounds: 2,
            max_rounds: 50,
        };
        let result = appsat(&locked, &orig, cfg, &mut rng);
        // ANY key is a (1 - 2^-5)-accurate model.
        assert!(
            result.estimated_accuracy > 0.9,
            "accuracy {}",
            result.estimated_accuracy
        );
        // ... and AppSAT spends far fewer oracle interactions than the
        // exact attack's ≈2^k DIPs... modulo the settlement queries; the
        // DIP count specifically stays tiny.
        assert!(
            result.dip_iterations < 24,
            "AppSAT used {} DIPs",
            result.dip_iterations
        );
    }

    #[test]
    fn exact_vs_approximate_pitfall_quantified() {
        // The Section IV-A story in one assert: the scheme is
        // exact-inference-resilient (DIPs ~ 2^k) yet approximately
        // worthless (a random key is 1 - 2^-k accurate).
        let mut rng = StdRng::seed_from_u64(5);
        let orig = c17();
        let locked = lock_sarlock(&orig, 5, &mut rng);
        let random_key = BitVec::random(5, &mut rng);
        let acc = locked.key_accuracy(&orig, &random_key, 4000, &mut rng);
        assert!(acc > 0.9, "random-key accuracy {acc}");
    }
}
