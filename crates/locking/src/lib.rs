//! Logic locking schemes and the oracle-guided attacks the paper
//! discusses (Sections II-A, IV-A and V).
//!
//! - [`combinational`]: EPIC-style XOR/XNOR key-gate insertion
//!   ([`LockedNetlist`]);
//! - [`sat_attack`]: the oracle-guided SAT attack (DIP loop) built on
//!   the `mlam-sat` CDCL solver — the "provable ML algorithm via
//!   SAT-solvers" of \[4\], \[5\];
//! - [`dip`]: the persistent incremental miter solver
//!   ([`dip::DipSolver`]) both attack loops run on — one solver per
//!   attack, key extraction by assumption;
//! - [`appsat`]: AppSAT-style *approximate* deobfuscation mixing DIPs
//!   with random queries — the online-ML-to-PAC conversion of
//!   Section V-A;
//! - [`pac_attack`]: the pure random-example attack (uniform PAC
//!   learning of the locked function by version-space sampling);
//! - [`sequential`]: HARPOON-style FSM obfuscation and its L*-based
//!   unlock-sequence recovery (Section V-B).
//!
//! # Quickstart
//!
//! ```
//! use mlam_locking::combinational::lock_xor;
//! use mlam_locking::sat_attack::{sat_attack, SatAttackConfig};
//! use mlam_netlist::generate::c17;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let original = c17();
//! let locked = lock_xor(&original, 4, &mut rng);
//! let result = sat_attack(&locked, &original, SatAttackConfig::default());
//! assert!(result.key_is_functionally_correct);
//! ```

#![warn(missing_docs)]

pub mod anti_sat;
pub mod appsat;
pub mod combinational;
pub mod dip;
pub mod pac_attack;
pub mod sat_attack;
pub mod sequential;

pub use anti_sat::lock_sarlock;
pub use combinational::{lock_xor, LockedNetlist};
pub use sequential::{Fsm, ObfuscatedFsm};
