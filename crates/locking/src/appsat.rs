//! AppSAT: approximate deobfuscation (Shamsi et al. \[5\]).
//!
//! AppSAT interleaves the exact DIP loop with batches of *random*
//! queries and stops as soon as the current key candidate's empirical
//! error rate stays below a threshold for several consecutive rounds.
//! The paper's Section V-A observes that this online-ML procedure
//! converts into a (uniform-distribution) PAC learner: the settlement
//! test is exactly an Angluin-style simulated equivalence query, and
//! the returned key is an ε-approximation rather than an exact key —
//! the distinction between approximate and exact inference that
//! Section IV-A turns on.

use crate::combinational::LockedNetlist;
use crate::sat_attack::encode_copy;
use mlam_boolean::BitVec;
use mlam_netlist::Netlist;
use mlam_sat::{Lit, SatResult, Solver, SolverStats, Var};
use rand::Rng;

/// Configuration of AppSAT.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppSatConfig {
    /// DIP iterations between random-query rounds.
    pub dips_per_round: usize,
    /// Random queries per settlement round.
    pub queries_per_round: usize,
    /// Error threshold below which a round counts as "settled".
    pub error_threshold: f64,
    /// Consecutive settled rounds required to stop.
    pub settlement_rounds: usize,
    /// Hard cap on total rounds.
    pub max_rounds: usize,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        AppSatConfig {
            dips_per_round: 4,
            queries_per_round: 32,
            error_threshold: 0.02,
            settlement_rounds: 3,
            max_rounds: 200,
        }
    }
}

/// Result of an AppSAT run.
#[derive(Clone, Debug)]
pub struct AppSatResult {
    /// The (approximate) key returned.
    pub key: BitVec,
    /// Total DIP iterations.
    pub dip_iterations: usize,
    /// Total random queries.
    pub random_queries: usize,
    /// Whether the run settled (vs. the miter going UNSAT, which means
    /// the key is exact).
    pub settled_early: bool,
    /// Empirical accuracy of the returned key on fresh random inputs.
    pub estimated_accuracy: f64,
    /// Full solver statistics accumulated over the miter and the
    /// key-consistency solver.
    pub solver_stats: SolverStats,
}

/// Runs AppSAT against `locked` with `oracle` as the activated chip.
///
/// # Panics
///
/// Panics on shape mismatches or when `max_rounds` is exhausted without
/// settlement (raise the budget for pathological instances).
pub fn appsat<R: Rng + ?Sized>(
    locked: &LockedNetlist,
    oracle: &Netlist,
    config: AppSatConfig,
    rng: &mut R,
) -> AppSatResult {
    assert_eq!(oracle.num_inputs(), locked.num_primary_inputs());
    assert_eq!(oracle.num_outputs(), locked.netlist().num_outputs());

    let mut miter = Solver::new();
    let (in1, key1, out1) = encode_copy(locked, &mut miter);
    let (in2, key2, out2) = encode_copy(locked, &mut miter);
    for (a, b) in in1.iter().zip(&in2) {
        miter.add_clause(&[Lit::pos(*a), Lit::neg(*b)]);
        miter.add_clause(&[Lit::neg(*a), Lit::pos(*b)]);
    }
    let mut diff = Vec::new();
    for (a, b) in out1.iter().zip(&out2) {
        let d = miter.new_var();
        miter.add_clause(&[Lit::neg(d), Lit::pos(*a), Lit::pos(*b)]);
        miter.add_clause(&[Lit::neg(d), Lit::neg(*a), Lit::neg(*b)]);
        miter.add_clause(&[Lit::pos(d), Lit::neg(*a), Lit::pos(*b)]);
        miter.add_clause(&[Lit::pos(d), Lit::pos(*a), Lit::neg(*b)]);
        diff.push(Lit::pos(d));
    }
    miter.add_clause(&diff);

    let mut keysolver = Solver::new();
    let (_ki, keyvars, _ko) = encode_copy(locked, &mut keysolver);

    let _span = mlam_telemetry::span("locking.appsat").attr("key_bits", locked.num_key_bits());
    let mut dip_iterations = 0usize;
    let mut random_queries = 0usize;
    let mut consecutive_settled = 0usize;
    let mut exact = false;

    'outer: for _round in 0..config.max_rounds {
        // Phase 1: a few exact DIPs.
        for _ in 0..config.dips_per_round {
            match miter.solve() {
                SatResult::Sat(model) => {
                    dip_iterations += 1;
                    mlam_telemetry::counter!("locking.appsat.dips", 1);
                    let dip: Vec<bool> = in1.iter().map(|v| model.value(*v)).collect();
                    let response = oracle.simulate(&dip);
                    crate::sat_attack::add_io_constraint(
                        locked, &mut miter, &key1, &dip, &response,
                    );
                    crate::sat_attack::add_io_constraint(
                        locked, &mut miter, &key2, &dip, &response,
                    );
                    crate::sat_attack::add_io_constraint(
                        locked,
                        &mut keysolver,
                        &keyvars,
                        &dip,
                        &response,
                    );
                    // Learning-curve checkpoint at log-spaced DIP
                    // counts, same remaining-key-space proxy as the
                    // exact SAT attack; the settled accuracy closes the
                    // curve at the end of the run.
                    if mlam_telemetry::curves::recording()
                        && mlam_telemetry::curves::should_checkpoint(
                            dip_iterations as u64,
                            (config.dips_per_round * config.max_rounds) as u64,
                        )
                    {
                        mlam_telemetry::curves::checkpoint(
                            "appsat",
                            dip_iterations as u64,
                            crate::sat_attack::key_space_proxy(
                                dip_iterations,
                                locked.num_key_bits(),
                            ),
                            None,
                        );
                    }
                }
                SatResult::Unsat => {
                    exact = true;
                    break 'outer;
                }
            }
        }

        // Phase 2: random queries + settlement test on the current key.
        let key = extract_key(&mut keysolver, &keyvars, locked.num_key_bits());
        let mut errors = 0usize;
        let mut round_queries: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        for _ in 0..config.queries_per_round {
            let x: Vec<bool> = (0..locked.num_primary_inputs())
                .map(|_| rng.gen())
                .collect();
            let response = oracle.simulate(&x);
            random_queries += 1;
            // Metered per query so mid-run curve checkpoints account
            // for settlement traffic exactly (the total is unchanged).
            mlam_telemetry::counter!("locking.appsat.random_queries", 1);
            if locked.simulate(&x, &key) != response {
                errors += 1;
                // Reinforce: wrong queries become constraints.
                round_queries.push((x, response));
            }
        }
        for (x, response) in &round_queries {
            crate::sat_attack::add_io_constraint(locked, &mut miter, &key1, x, response);
            crate::sat_attack::add_io_constraint(locked, &mut miter, &key2, x, response);
            crate::sat_attack::add_io_constraint(locked, &mut keysolver, &keyvars, x, response);
        }
        let err_rate = errors as f64 / config.queries_per_round as f64;
        if err_rate <= config.error_threshold {
            consecutive_settled += 1;
            if consecutive_settled >= config.settlement_rounds {
                break;
            }
        } else {
            consecutive_settled = 0;
        }
    }

    let key = extract_key(&mut keysolver, &keyvars, locked.num_key_bits());
    let estimated_accuracy = locked.key_accuracy(oracle, &key, 2000, rng);
    // Close the curve with the key's measured accuracy (the validation
    // sample is not metered as attack queries — it is the
    // experimenter's, not the adversary's).
    if mlam_telemetry::curves::recording() {
        mlam_telemetry::curves::checkpoint(
            "appsat",
            dip_iterations as u64,
            estimated_accuracy,
            None,
        );
    }
    let mut solver_stats = miter.stats();
    solver_stats.accumulate(&keysolver.stats());
    AppSatResult {
        key,
        dip_iterations,
        random_queries,
        settled_early: !exact,
        estimated_accuracy,
        solver_stats,
    }
}

fn extract_key(keysolver: &mut Solver, keyvars: &[Var], nk: usize) -> BitVec {
    match keysolver.solve() {
        SatResult::Sat(model) => {
            let mut k = BitVec::zeros(nk);
            for (i, v) in keyvars.iter().enumerate() {
                k.set(i, model.value(*v));
            }
            k
        }
        SatResult::Unsat => unreachable!("correct key always consistent"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinational::lock_xor;
    use mlam_netlist::generate::{c17, random_circuit, ripple_adder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reaches_high_accuracy_on_c17() {
        let mut rng = StdRng::seed_from_u64(1);
        let oracle = c17();
        let locked = lock_xor(&oracle, 4, &mut rng);
        let result = appsat(&locked, &oracle, AppSatConfig::default(), &mut rng);
        assert!(
            result.estimated_accuracy > 0.97,
            "accuracy {}",
            result.estimated_accuracy
        );
    }

    #[test]
    fn reaches_high_accuracy_on_adder() {
        let mut rng = StdRng::seed_from_u64(2);
        let oracle = ripple_adder(3);
        let locked = lock_xor(&oracle, 8, &mut rng);
        let result = appsat(&locked, &oracle, AppSatConfig::default(), &mut rng);
        assert!(
            result.estimated_accuracy > 0.95,
            "accuracy {}",
            result.estimated_accuracy
        );
        assert!(result.dip_iterations + result.random_queries > 0);
    }

    #[test]
    fn random_circuit_settles() {
        let mut rng = StdRng::seed_from_u64(3);
        let oracle = random_circuit(10, 50, 2, &mut rng);
        let locked = lock_xor(&oracle, 12, &mut rng);
        let result = appsat(&locked, &oracle, AppSatConfig::default(), &mut rng);
        assert!(
            result.estimated_accuracy > 0.9,
            "accuracy {}",
            result.estimated_accuracy
        );
    }

    #[test]
    fn tight_threshold_still_terminates_via_unsat() {
        // With a zero error threshold AppSAT only stops by settling at
        // perfect rounds or by exhausting the miter — on a small circuit
        // the latter happens quickly.
        let mut rng = StdRng::seed_from_u64(4);
        let oracle = c17();
        let locked = lock_xor(&oracle, 3, &mut rng);
        let cfg = AppSatConfig {
            error_threshold: 0.0,
            ..Default::default()
        };
        let result = appsat(&locked, &oracle, cfg, &mut rng);
        assert!(result.estimated_accuracy > 0.99);
    }
}
