//! AppSAT: approximate deobfuscation (Shamsi et al. \[5\]).
//!
//! AppSAT interleaves the exact DIP loop with batches of *random*
//! queries and stops as soon as the current key candidate's empirical
//! error rate stays below a threshold for several consecutive rounds.
//! The paper's Section V-A observes that this online-ML procedure
//! converts into a (uniform-distribution) PAC learner: the settlement
//! test is exactly an Angluin-style simulated equivalence query, and
//! the returned key is an ε-approximation rather than an exact key —
//! the distinction between approximate and exact inference that
//! Section IV-A turns on.
//!
//! Like the exact attack, AppSAT now runs on one persistent
//! [`DipSolver`]: the per-round key candidate is an assumption-mode
//! probe of the same instance that finds DIPs, so settlement rounds no
//! longer pay for a separate key-consistency solver.

use crate::combinational::LockedNetlist;
use crate::dip::DipSolver;
use mlam_boolean::BitVec;
use mlam_netlist::Netlist;
use mlam_sat::SolverStats;
use rand::Rng;

/// Configuration of AppSAT.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppSatConfig {
    /// DIP iterations between random-query rounds.
    pub dips_per_round: usize,
    /// Random queries per settlement round.
    pub queries_per_round: usize,
    /// Error threshold below which a round counts as "settled".
    pub error_threshold: f64,
    /// Consecutive settled rounds required to stop.
    pub settlement_rounds: usize,
    /// Hard cap on total rounds.
    pub max_rounds: usize,
}

impl Default for AppSatConfig {
    fn default() -> Self {
        AppSatConfig {
            dips_per_round: 4,
            queries_per_round: 32,
            error_threshold: 0.02,
            settlement_rounds: 3,
            max_rounds: 200,
        }
    }
}

/// Result of an AppSAT run.
#[derive(Clone, Debug)]
pub struct AppSatResult {
    /// The (approximate) key returned.
    pub key: BitVec,
    /// Total DIP iterations.
    pub dip_iterations: usize,
    /// Total random queries.
    pub random_queries: usize,
    /// Whether the run settled (vs. the miter going UNSAT, which means
    /// the key is exact).
    pub settled_early: bool,
    /// Empirical accuracy of the returned key on fresh random inputs.
    pub estimated_accuracy: f64,
    /// Statistics of the persistent attack solver.
    pub solver_stats: SolverStats,
}

/// Runs AppSAT against `locked` with `oracle` as the activated chip.
///
/// # Panics
///
/// Panics on shape mismatches or when `max_rounds` is exhausted without
/// settlement (raise the budget for pathological instances).
pub fn appsat<R: Rng + ?Sized>(
    locked: &LockedNetlist,
    oracle: &Netlist,
    config: AppSatConfig,
    rng: &mut R,
) -> AppSatResult {
    assert_eq!(oracle.num_inputs(), locked.num_primary_inputs());
    assert_eq!(oracle.num_outputs(), locked.netlist().num_outputs());

    let mut dip_solver = DipSolver::new(locked);

    let _span = mlam_telemetry::span("locking.appsat").attr("key_bits", locked.num_key_bits());
    let mut dip_iterations = 0usize;
    let mut random_queries = 0usize;
    let mut consecutive_settled = 0usize;
    let mut exact = false;

    'outer: for _round in 0..config.max_rounds {
        // Phase 1: a few exact DIPs.
        for _ in 0..config.dips_per_round {
            match dip_solver.find_dip() {
                Some(dip) => {
                    dip_iterations += 1;
                    mlam_telemetry::counter!("locking.appsat.dips", 1);
                    let response = oracle.simulate(&dip);
                    dip_solver.constrain(&dip, &response);
                    // Learning-curve checkpoint at log-spaced DIP
                    // counts, same remaining-key-space proxy as the
                    // exact SAT attack; the settled accuracy closes the
                    // curve at the end of the run.
                    if mlam_telemetry::curves::recording()
                        && mlam_telemetry::curves::should_checkpoint(
                            dip_iterations as u64,
                            (config.dips_per_round * config.max_rounds) as u64,
                        )
                    {
                        mlam_telemetry::curves::checkpoint(
                            "appsat",
                            dip_iterations as u64,
                            crate::sat_attack::key_space_proxy(
                                dip_iterations,
                                locked.num_key_bits(),
                            ),
                            None,
                        );
                    }
                }
                None => {
                    exact = true;
                    break 'outer;
                }
            }
        }

        // Phase 2: random queries + settlement test on the current key
        // candidate (an assumption-mode probe of the same solver).
        let key = dip_solver.extract_key();
        let mut errors = 0usize;
        let mut round_queries: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        for _ in 0..config.queries_per_round {
            let x: Vec<bool> = (0..locked.num_primary_inputs())
                .map(|_| rng.gen())
                .collect();
            let response = oracle.simulate(&x);
            random_queries += 1;
            // Metered per query so mid-run curve checkpoints account
            // for settlement traffic exactly (the total is unchanged).
            mlam_telemetry::counter!("locking.appsat.random_queries", 1);
            if locked.simulate(&x, &key) != response {
                errors += 1;
                // Reinforce: wrong queries become constraints.
                round_queries.push((x, response));
            }
        }
        for (x, response) in &round_queries {
            dip_solver.constrain(x, response);
        }
        let err_rate = errors as f64 / config.queries_per_round as f64;
        if err_rate <= config.error_threshold {
            consecutive_settled += 1;
            if consecutive_settled >= config.settlement_rounds {
                break;
            }
        } else {
            consecutive_settled = 0;
        }
    }

    let key = dip_solver.extract_key();
    let estimated_accuracy = locked.key_accuracy(oracle, &key, 2000, rng);
    // Close the curve with the key's measured accuracy (the validation
    // sample is not metered as attack queries — it is the
    // experimenter's, not the adversary's).
    if mlam_telemetry::curves::recording() {
        mlam_telemetry::curves::checkpoint(
            "appsat",
            dip_iterations as u64,
            estimated_accuracy,
            None,
        );
    }
    AppSatResult {
        key,
        dip_iterations,
        random_queries,
        settled_early: !exact,
        estimated_accuracy,
        solver_stats: dip_solver.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinational::lock_xor;
    use mlam_netlist::generate::{c17, random_circuit, ripple_adder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reaches_high_accuracy_on_c17() {
        let mut rng = StdRng::seed_from_u64(1);
        let oracle = c17();
        let locked = lock_xor(&oracle, 4, &mut rng);
        let result = appsat(&locked, &oracle, AppSatConfig::default(), &mut rng);
        assert!(
            result.estimated_accuracy > 0.97,
            "accuracy {}",
            result.estimated_accuracy
        );
    }

    #[test]
    fn reaches_high_accuracy_on_adder() {
        let mut rng = StdRng::seed_from_u64(2);
        let oracle = ripple_adder(3);
        let locked = lock_xor(&oracle, 8, &mut rng);
        let result = appsat(&locked, &oracle, AppSatConfig::default(), &mut rng);
        assert!(
            result.estimated_accuracy > 0.95,
            "accuracy {}",
            result.estimated_accuracy
        );
        assert!(result.dip_iterations + result.random_queries > 0);
    }

    #[test]
    fn random_circuit_settles() {
        let mut rng = StdRng::seed_from_u64(3);
        let oracle = random_circuit(10, 50, 2, &mut rng);
        let locked = lock_xor(&oracle, 12, &mut rng);
        let result = appsat(&locked, &oracle, AppSatConfig::default(), &mut rng);
        assert!(
            result.estimated_accuracy > 0.9,
            "accuracy {}",
            result.estimated_accuracy
        );
    }

    #[test]
    fn tight_threshold_still_terminates_via_unsat() {
        // With a zero error threshold AppSAT only stops by settling at
        // perfect rounds or by exhausting the miter — on a small circuit
        // the latter happens quickly.
        let mut rng = StdRng::seed_from_u64(4);
        let oracle = c17();
        let locked = lock_xor(&oracle, 3, &mut rng);
        let cfg = AppSatConfig {
            error_threshold: 0.0,
            ..Default::default()
        };
        let result = appsat(&locked, &oracle, cfg, &mut rng);
        assert!(result.estimated_accuracy > 0.99);
    }
}
